# Convenience targets for the XEMEM reproduction.

PYTHON ?= python

.PHONY: install test audit chaos soak lint lint-repro bench bench-compare serve-report figures examples clean diagnose perf-diff

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

audit:
	REPRO_AUDIT=1 $(PYTHON) -m pytest tests/

# The CI chaos matrix, locally: the fault-injection suite under the
# invariant auditor, across three fault schedules.
chaos:
	for seed in 0 1 2; do \
		REPRO_AUDIT=1 REPRO_CHAOS_SEED=$$seed \
			$(PYTHON) -m pytest tests/faults -q || exit 1; \
	done

# The CI soak pair, locally: ramp open-loop load through saturation,
# protected vs baseline, two seeds; exits 4 (with an incident bundle
# under soak-out/) if the protected run breaches its SLOs. Seed 0 is
# then gated against the committed baseline (p99 at the pre-saturation
# step must not regress).
soak:
	for seed in 0 1; do \
		PYTHONPATH=src $(PYTHON) -m repro soak --seed $$seed \
			--out soak-out/BENCH_serving_seed$$seed.json \
			--bundle-dir soak-out || exit $$?; \
	done
	PYTHONPATH=src $(PYTHON) -m repro.obs.bench \
		benchmarks/baselines/BENCH_serving.json \
		soak-out/BENCH_serving_seed0.json --tolerance 0.15

# Both linters: ruff (style) and the project's determinism &
# simulation-safety analyzer (docs/LINT.md). Both gate CI.
lint:
	ruff check src tests
	PYTHONPATH=src $(PYTHON) -m repro lint

lint-repro:
	PYTHONPATH=src $(PYTHON) -m repro lint

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Both speed gates (the 1 GiB fast-path win and the 16 GiB columnar
# win) merge-write one results file, so run them together before the
# comparison. The trace-capture test writes the deterministic sibling
# capture the comparator feeds to perf-diff when a gate fails.
bench-compare:
	$(PYTHON) -m pytest \
		benchmarks/test_simulator_speed.py::test_speed_fastpath_1gib_attach_speedup \
		benchmarks/test_simulator_speed.py::test_speed_columnar_16gib_pipeline_speedup \
		benchmarks/test_simulator_speed.py::test_speed_trace_capture_sibling -q
	$(PYTHON) -m repro.obs.bench benchmarks/baselines/BENCH_speed.json benchmarks/results/BENCH_speed.json --tolerance 0.15
	$(PYTHON) -m pytest benchmarks/test_obs_overhead.py -q
	$(PYTHON) -m repro.obs.bench benchmarks/baselines/BENCH_obs_overhead.json benchmarks/results/BENCH_obs_overhead.json --tolerance 0.15

# Render an incident bundle as a causal timeline:
#   make diagnose BUNDLE=incident-chaos
BUNDLE ?= incident-chaos
diagnose:
	PYTHONPATH=src $(PYTHON) -m repro diagnose $(BUNDLE)

# Attribute the virtual-time delta between two captures (trace exports
# or incident bundles):
#   make perf-diff BASELINE=a.trace.json CURRENT=b.trace.json
BASELINE ?= benchmarks/baselines/BENCH_speed.trace.json
CURRENT ?= benchmarks/results/BENCH_speed.trace.json
perf-diff:
	PYTHONPATH=src $(PYTHON) -m repro perf-diff $(BASELINE) $(CURRENT)

# The full serving-telemetry pipeline: closed-loop sessions, time-series,
# SLO verdicts, journeys, and every exporter under serve-report/.
serve-report:
	$(PYTHON) -m repro serve-report --seed 0 --out-dir serve-report

figures:
	$(PYTHON) -m repro all

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/xpmem_c_port.py
	$(PYTHON) examples/enclave_topology_tour.py
	$(PYTHON) examples/insitu_composed_workload.py
	$(PYTHON) examples/noise_and_isolation.py

clean:
	rm -rf build *.egg-info src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
