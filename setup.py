"""Shim for legacy editable installs (``pip install -e . --no-use-pep517``).

This environment has no ``wheel`` package and no network, so PEP 660
editable installs are unavailable; configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
