"""Root conftest: make ``repro`` importable even without installation.

``pip install -e .`` requires the ``wheel`` package for PEP 660 editable
installs; offline environments may lack it (``python setup.py develop`` is
the fallback, see README). To keep ``pytest`` self-sufficient either way,
prepend ``src/`` to ``sys.path`` when the package is not already installed.
"""

import pathlib
import sys

try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(pathlib.Path(__file__).parent / "src"))
