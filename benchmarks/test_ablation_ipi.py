"""Ablation B: distributed IPI routing (the paper's §5.3 future work).

The Fig. 6 dip from 1 to 2 enclaves is attributed to "all IPI-based
communication with the Linux management enclave [being restricted] to
core 0" plus contended Linux map structures, and the authors promise
"more intelligent mechanisms for interrupt handling". This ablation
re-runs Fig. 6 with per-enclave IPI target cores: the dip disappears.
"""

from conftest import run_once

from repro.bench.figures import fig6_scalability
from repro.bench.report import render_series
from repro.hw.costs import GB, MB


def run_both(reps: int = 3):
    core0 = fig6_scalability(reps=reps, sizes=(256 * MB, 1 * GB),
                             ipi_target_policy="core0")
    spread = fig6_scalability(reps=reps, sizes=(256 * MB, 1 * GB),
                              ipi_target_policy="distributed")
    return core0, spread


def test_ablation_distributed_ipi(benchmark, report_file):
    core0, spread = run_once(benchmark, run_both)

    for size in core0.sizes_bytes:
        base = core0.throughput[size]
        fixed = spread.throughput[size]
        # the shipped design dips 1->2; the distributed design does not
        assert base[1] < base[0]
        assert fixed[1] >= 0.99 * fixed[0]
        # at >=2 enclaves, distributed routing is strictly faster
        for b, f in zip(base[1:], fixed[1:]):
            assert f > b
        # and stays close to the single-enclave rate (residual dips come
        # from handlers sharing cores with busy attacher processes)
        assert min(fixed) > 0.9 * fixed[0]

    series = {}
    for size in core0.sizes_bytes:
        label = f"{size // MB}MB"
        series[f"core0 {label}"] = core0.throughput[size]
        series[f"distributed {label}"] = spread.throughput[size]
    text = render_series(
        series, "enclaves", core0.enclave_counts,
        title=(
            "Ablation B — Fig. 6 under core-0 vs distributed IPI routing "
            "(GiB/s per pair; the paper's proposed fix removes the dip)"
        ),
    )
    report_file("ablation_ipi", text)
