"""Observability overhead: tracing a run must stay cheap.

The differential tests (``tests/obs/test_nonperturbation.py``) prove
observability never changes *what* the simulation computes; this
benchmark bounds what it costs in host wall clock. A Fig. 5-scale
attach/touch/detach workload runs dark, then under full span tracing
+ metrics + time-series windows (the slowdown must stay under 25%), and
then with only the flight-recorder black box armed — a ring-capped span
tail + metrics, no engine hook — which must stay under 5%, or the
"always-on black box" premise of ``repro.obs.flightrec`` is broken.

Emits ``benchmarks/results/BENCH_obs_overhead.json`` for the
``make bench-compare`` / CI regression gate.
"""

import json
import pathlib
import time

from repro import obs
from repro.bench.configs import build_cokernel_system
from repro.hw.costs import GB, PAGE_4K
from repro.xemem import XpmemApi


def _fig5_scale_cycle_seconds(mode: str, cycles: int, touches: int,
                              npages: int) -> float:
    """Wall time for the Fig. 5 shape (one standing 1 GiB export,
    repeated attach/touch/detach) in one of three modes: ``"dark"``
    (no observability at all), ``"full"`` (tracing + metrics + tumbling
    time-series windows — the engine-hook pipeline), or ``"flightrec"``
    (the black box: ring-capped span tail + metrics + armed
    :class:`~repro.obs.flightrec.FlightRecorder`, no engine hook)."""

    def measure() -> float:
        rig = build_cokernel_system(num_cokernels=1)
        eng = rig.engine
        kitten = rig.cokernels[0].kernel
        kitten.heap_pages = npages + 16
        kp = kitten.create_process("exp")
        lp = rig.linux.kernel.create_process("att", core_id=2)
        heap = kitten.heap_region(kp)
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)

        def setup():
            segid = yield from api_k.xpmem_make(heap.start, npages * PAGE_4K)
            apid = yield from api_l.xpmem_get(segid)
            return apid

        apid = eng.run_process(setup())
        t0 = time.perf_counter()
        for _ in range(cycles):
            def run():
                att = yield from api_l.xpmem_attach(apid)
                for _ in range(touches):
                    yield from rig.linux.kernel.touch_pages(
                        lp, att.vaddr, npages, write=True
                    )
                yield from api_l.xpmem_detach(att)

            eng.run_process(run())
        return time.perf_counter() - t0

    if mode == "full":
        with obs.observing(trace=True, metrics=True, timeseries=True):
            return measure()
    if mode == "flightrec":
        with obs.observing(trace=True, metrics=True, max_trace_events=256,
                           flightrec=True):
            return measure()
    return measure()


def test_obs_overhead_under_25pct_at_fig5_scale():
    npages = GB // PAGE_4K
    cycles, touches = 3, 8
    # one unmeasured warmup, then best-of-3 per mode to shave scheduler
    # noise — the flightrec gate is tight (5%), so noise matters
    _fig5_scale_cycle_seconds("dark", cycles, touches, npages)
    dark = min(
        _fig5_scale_cycle_seconds("dark", cycles, touches, npages)
        for _ in range(3)
    )
    observed = min(
        _fig5_scale_cycle_seconds("full", cycles, touches, npages)
        for _ in range(3)
    )
    flightrec = min(
        _fig5_scale_cycle_seconds("flightrec", cycles, touches, npages)
        for _ in range(3)
    )
    overhead_pct = (observed / dark - 1.0) * 100.0
    flightrec_pct = (flightrec / dark - 1.0) * 100.0
    results = pathlib.Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    (results / "BENCH_obs_overhead.json").write_text(json.dumps({
        "benchmark": "fig5_scale_obs_overhead",
        "attach_bytes": npages * PAGE_4K,
        "npages": npages,
        "cycles": cycles,
        "touches_per_cycle": touches,
        "dark_seconds": round(dark, 6),
        "observed_seconds": round(observed, 6),
        "flightrec_seconds": round(flightrec, 6),
        # The baseline gate compares the ratios, not the absolute
        # seconds: wall-clock varies run-to-run and machine-to-machine,
        # but the observed/dark ratio is measured within one run and is
        # stable.
        "overhead_ratio": round(observed / dark, 4),
        "overhead_pct": round(overhead_pct, 2),
        "max_overhead_pct": 25.0,
        "flightrec_overhead_ratio": round(flightrec / dark, 4),
        "flightrec_overhead_pct": round(flightrec_pct, 2),
        "max_flightrec_overhead_pct": 5.0,
    }, indent=2) + "\n")
    assert overhead_pct < 25.0, (
        f"tracing+metrics cost {overhead_pct:.1f}% wall clock "
        f"(dark={dark:.3f}s, observed={observed:.3f}s)"
    )
    assert flightrec_pct < 5.0, (
        f"armed flight recorder cost {flightrec_pct:.1f}% wall clock "
        f"(dark={dark:.3f}s, flightrec={flightrec:.3f}s) — the black box "
        "must stay near-free while idle"
    )
