"""Figure 6: throughput scaling with the number of co-kernel enclaves.

Paper: per-pair throughput is ≈13 GB/s with 1 enclave, dips slightly at
2 (core-0 IPI handling + contended Linux map structures, §5.3), then
stays flat through 8 enclaves for every region size.
"""

from conftest import run_once

from repro.bench.figures import fig6_scalability
from repro.bench.report import render_series
from repro.hw.costs import MB


def test_fig6_scalability(benchmark, report_file):
    result = run_once(benchmark, fig6_scalability, reps=4)

    for size in result.sizes_bytes:
        series = result.throughput[size]
        one, two, rest = series[0], series[1], series[2:]
        # the 1->2 dip exists but is mild (paper: ~13 -> ~12)
        assert two < one
        assert two / one > 0.85
        # flat beyond 2 enclaves: every later point within 5% of the
        # 2-enclave value
        for x in rest:
            assert abs(x - two) / two < 0.05
        # absolute band
        assert 11.0 <= min(series) and max(series) <= 14.0

    text = render_series(
        {
            f"{size // MB}MB GiB/s": result.throughput[size]
            for size in result.sizes_bytes
        },
        "enclaves",
        result.enclave_counts,
        title=(
            "Figure 6 — per-pair attach throughput vs enclave count "
            "(paper: ~13 at 1, dip to ~12 at 2, then flat)"
        ),
    )
    report_file("fig6_scalability", text)
