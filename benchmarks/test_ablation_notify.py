"""Ablation E: shared-memory polling vs kernel event notification.

The paper's §6.1: "operations like event notifications must be supported
via ad hoc techniques like polling on variables in memory. We plan to
investigate techniques to support additional features in the OS/R
environments." This ablation implements that feature (kernel-level
doorbells carried over the existing cross-enclave command channels) and
re-runs the single-node in situ benchmark with both signalling modes.

Expected: small but consistent wins for notification in the synchronous
model (no polling detection latency at each of the 15 handshakes) and
near-parity in the asynchronous model, where signalling is off the
critical path.
"""

from conftest import run_once

from repro.bench.configs import build_insitu_rig
from repro.bench.report import render_table
from repro.hw.costs import MB
from repro.workloads.hpccg import HpccgProblem
from repro.workloads.insitu import InSituConfig


def run_grid(runs: int = 2):
    rows = []
    for config_name in ("linux_linux", "kitten_linux"):
        for execution in ("sync", "async"):
            cell = {}
            for mode in ("poll", "notify"):
                total = 0.0
                for seed in range(runs):
                    cfg = InSituConfig(
                        execution=execution, attach="one_time",
                        iterations=600, comm_interval=40, data_bytes=512 * MB,
                        problem=HpccgProblem(100, 100, 100), signal_mode=mode,
                    )
                    rig = build_insitu_rig(config_name, cfg, seed=seed + 1)
                    res = rig["workload"].run()
                    assert res.data_marks_verified
                    total += res.sim_time_s
                cell[mode] = total / runs
            rows.append((config_name, execution, cell["poll"], cell["notify"]))
    return rows


def test_ablation_notify_vs_poll(benchmark, report_file):
    rows = run_once(benchmark, run_grid)

    for config_name, execution, poll_s, notify_s in rows:
        # notification never loses, and wins in sync mode
        assert notify_s <= poll_s + 1e-9
        if execution == "sync":
            assert notify_s < poll_s

    text = render_table(
        ["configuration", "execution", "poll s", "notify s"],
        rows,
        title=(
            "Ablation E — stop/go via polled shared variables (§6.1, shipped) "
            "vs kernel doorbells (the paper's proposed feature)"
        ),
    )
    report_file("ablation_notify", text)
