"""Simulator performance: how fast the reproduction itself runs.

Unlike the figure benchmarks (deterministic virtual-time experiments run
once), these measure real wall time with proper repetition — the cost of
simulating the hot paths. Useful for catching performance regressions in
the page-table vectorization, the columnar (SoA) page-table store, and
the RB-tree mirror.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.bench.configs import build_cokernel_system
from repro.hw.costs import CostModel, GB, MB, PAGE_4K
from repro.kernels.pagetable import (
    PTE_ACCESSED,
    PTE_DIRTY,
    PTE_PINNED,
    PTE_WRITABLE,
    PageTable,
)
from repro.sim import fastpath, fidelity
from repro.virt.memmap import VmmMemoryMap
from repro.xemem import XpmemApi


def _merge_results(update: dict) -> None:
    """Merge ``update`` into the shared ``results/BENCH_speed.json``.

    Both speed gates land in one file (the bench comparator fails on
    missing baseline keys), so each test merge-writes its own keys
    instead of clobbering the other's.
    """
    results = pathlib.Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    path = results / "BENCH_speed.json"
    merged = json.loads(path.read_text()) if path.exists() else {}
    merged.update(update)
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")


def test_speed_pagetable_map_translate_unmap(benchmark):
    """1 GiB worth of PTEs (262 144 pages) through the vectorized paths."""
    pfns = np.arange(262_144, dtype=np.int64)

    def cycle():
        pt = PageTable()
        pt.map_range(0, pfns)
        got = pt.translate_range(0, len(pfns))
        pt.unmap_range(0, len(pfns))
        return got[-1]

    result = benchmark(cycle)
    assert result == 262_143


def test_speed_native_attach_detach_256mb(benchmark):
    """Full protocol round trip: export once, attach/detach 256 MiB."""
    rig = build_cokernel_system(num_cokernels=1, cokernel_mem=512 * MB)
    eng = rig.engine
    kitten = rig.cokernels[0].kernel
    kitten.heap_pages = 256 * MB // PAGE_4K + 16
    kp = kitten.create_process("exp")
    lp = rig.linux.kernel.create_process("att", core_id=2)
    heap = kitten.heap_region(kp)
    api_k, api_l = XpmemApi(kp), XpmemApi(lp)

    def setup():
        segid = yield from api_k.xpmem_make(heap.start, 256 * MB)
        apid = yield from api_l.xpmem_get(segid)
        return apid

    apid = eng.run_process(setup())

    def cycle():
        def run():
            att = yield from api_l.xpmem_attach(apid)
            yield from api_l.xpmem_detach(att)

        eng.run_process(run())

    benchmark(cycle)


def _fig5_scale_cycle_seconds(enabled: bool, cycles: int, touches: int,
                              npages: int) -> float:
    """Wall time for ``cycles`` attach/touch/detach rounds over a 1 GiB
    export — the Fig. 5 shape (one standing export, repeated access
    through the attached window).

    Fidelity is pinned to the detailed radix store on both sides: this
    gate isolates the *algorithmic* fast-path win, and the columnar
    store would otherwise absorb most of the slow side (the storage win
    has its own gate, ``test_speed_columnar_16gib_pipeline_speedup``).
    """
    ctx = fastpath.enabled() if enabled else fastpath.disabled()
    with ctx, fidelity.detailed():
        rig = build_cokernel_system(num_cokernels=1)
        eng = rig.engine
        kitten = rig.cokernels[0].kernel
        kitten.heap_pages = npages + 16
        kp = kitten.create_process("exp")
        lp = rig.linux.kernel.create_process("att", core_id=2)
        heap = kitten.heap_region(kp)
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)

        def setup():
            segid = yield from api_k.xpmem_make(heap.start, npages * PAGE_4K)
            apid = yield from api_l.xpmem_get(segid)
            return apid

        apid = eng.run_process(setup())
        t0 = time.perf_counter()
        for _ in range(cycles):
            def run():
                att = yield from api_l.xpmem_attach(apid)
                for _ in range(touches):
                    yield from rig.linux.kernel.touch_pages(
                        lp, att.vaddr, npages, write=True
                    )
                yield from api_l.xpmem_detach(att)

            eng.run_process(run())
        elapsed = time.perf_counter() - t0
    return elapsed


def test_speed_fastpath_1gib_attach_speedup():
    """The fast paths must be worth their complexity: >=2x wall-clock on a
    Fig. 5-scale run. Emits ``benchmarks/results/BENCH_speed.json``."""
    npages = GB // PAGE_4K
    cycles, touches = 3, 8
    # best-of-2 per mode to shave scheduler noise
    slow = min(
        _fig5_scale_cycle_seconds(False, cycles, touches, npages)
        for _ in range(2)
    )
    fast = min(
        _fig5_scale_cycle_seconds(True, cycles, touches, npages)
        for _ in range(2)
    )
    speedup = slow / fast
    _merge_results({
        "benchmark": "fig5_scale_attach_touch_detach",
        "attach_bytes": npages * PAGE_4K,
        "npages": npages,
        "cycles": cycles,
        "touches_per_cycle": touches,
        "slowpath_seconds": round(slow, 6),
        "fastpath_seconds": round(fast, 6),
        "speedup": round(speedup, 3),
        "required_speedup": 2.0,
    })
    assert speedup >= 2.0, (
        f"fast paths only {speedup:.2f}x faster (slow={slow:.3f}s, "
        f"fast={fast:.3f}s)"
    )


def _columnar_pipeline_seconds(fast_mode: bool, npages: int,
                               rounds: int) -> float:
    """Wall time for a 16 GiB standing export with ``rounds`` recurring
    attach/touch rounds — the Fig. 8 shape at Fig. 5's largest scale.

    One export-side table maps the region and one import-side table
    installs the walked PFN list; each round then pins for transfer,
    probes write permission (the ``touch_pages`` fast-fault shape),
    write-touches accessed/dirty bookkeeping, scans and clears the dirty
    column, and unpins. The detailed baseline runs the radix store with
    every fast path off; the fast side runs the columnar store with fast
    paths on.
    """
    fp_ctx = fastpath.enabled() if fast_mode else fastpath.disabled()
    mode = "fast" if fast_mode else "detailed"
    with fp_ctx, fidelity.configured(mode):
        pfns = np.arange(npages, dtype=np.int64)
        t0 = time.perf_counter()
        exporter = PageTable()
        exporter.map_range(0, pfns)
        importer = PageTable()
        importer.map_range(0, exporter.translate_range(0, npages))
        for _ in range(rounds):
            exporter.set_flags_range(0, npages, set_mask=PTE_PINNED)
            assert exporter.range_flags_all(0, npages, PTE_PINNED)
            assert importer.range_flags_all(0, npages, PTE_WRITABLE)
            importer.set_flags_range(
                0, npages, set_mask=PTE_ACCESSED | PTE_DIRTY
            )
            dirty = int(importer.flag_mask(0, npages, PTE_DIRTY).sum())
            importer.set_flags_range(0, npages, clear_mask=PTE_DIRTY)
            exporter.set_flags_range(0, npages, clear_mask=PTE_PINNED)
        importer.unmap_range(0, npages)
        freed = exporter.unmap_range(0, npages)
        elapsed = time.perf_counter() - t0
        assert dirty == npages and len(freed) == npages
    return elapsed


def test_speed_columnar_16gib_pipeline_speedup():
    """The columnar store must be worth its complexity: >=10x wall-clock
    over the detailed radix store (fast paths off) on a 16 GiB / 4M-page
    recurring-attach pipeline. Merges ``columnar_*`` keys into
    ``benchmarks/results/BENCH_speed.json``."""
    npages = 16 * GB // PAGE_4K
    rounds = 10
    # best-of-2 per mode to shave scheduler noise
    detailed = min(
        _columnar_pipeline_seconds(False, npages, rounds) for _ in range(2)
    )
    fast = min(
        _columnar_pipeline_seconds(True, npages, rounds) for _ in range(2)
    )
    speedup = detailed / fast
    _merge_results({
        "columnar_benchmark": "columnar_16gib_recurring_attach",
        "columnar_attach_bytes": npages * PAGE_4K,
        "columnar_npages": npages,
        "columnar_rounds": rounds,
        "columnar_detailed_seconds": round(detailed, 6),
        "columnar_fast_seconds": round(fast, 6),
        "columnar_speedup": round(speedup, 3),
        "columnar_required_speedup": 10.0,
    })
    assert speedup >= 10.0, (
        f"columnar store only {speedup:.2f}x faster "
        f"(detailed={detailed:.3f}s, fast={fast:.3f}s)"
    )


def test_speed_trace_capture_sibling():
    """Emit ``results/BENCH_speed.trace.json`` — the deterministic trace
    capture that rides next to ``BENCH_speed.json``.

    The bench gate (``repro.obs.bench``) resolves the sibling convention
    ``BENCH_x.json`` → ``BENCH_x.trace.json``: when the speed gate fails,
    it feeds the committed baseline capture and this fresh one through
    ``repro.obs.diff`` and prints *which subsystem and span names* moved.
    The capture is the Fig. 5 shape at small scale (fast paths on,
    detailed fidelity), recorded on the virtual clock only — byte-
    identical across runs, so any diff against the baseline is a real
    behavior change, not noise.
    """
    from repro import obs

    npages = 4 * MB // PAGE_4K
    with fastpath.enabled(), fidelity.detailed(), \
            obs.observing(trace=True, metrics=False) as ctx:
        rig = build_cokernel_system(num_cokernels=1)
        eng = rig.engine
        kitten = rig.cokernels[0].kernel
        kitten.heap_pages = npages + 16
        kp = kitten.create_process("exp")
        lp = rig.linux.kernel.create_process("att", core_id=2)
        heap = kitten.heap_region(kp)
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)

        def run():
            segid = yield from api_k.xpmem_make(heap.start, npages * PAGE_4K)
            apid = yield from api_l.xpmem_get(segid)
            att = yield from api_l.xpmem_attach(apid)
            for _ in range(2):
                yield from rig.linux.kernel.touch_pages(
                    lp, att.vaddr, npages, write=True
                )
            yield from api_l.xpmem_detach(att)
            yield from api_l.xpmem_release(apid)

        eng.run_process(run())
    assert len(ctx.tracer) > 0 and ctx.tracer.dropped == 0
    results = pathlib.Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    with open(results / "BENCH_speed.trace.json", "w") as fp:
        ctx.tracer.to_chrome(fp)


def test_speed_rb_memmap_insert_64k_entries(benchmark):
    """Per-page RB-tree mirror: 65 536 scattered-frame inserts + removal."""
    costs = CostModel()
    hpas = np.arange(0, 131_072, 2, dtype=np.int64)

    def cycle():
        mm = VmmMemoryMap(costs, backend="rbtree")
        work = mm.insert_mapping(0, hpas)
        mm.remove_mapping(0, len(hpas))
        return work

    assert benchmark(cycle) > 0
