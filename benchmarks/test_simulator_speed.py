"""Simulator performance: how fast the reproduction itself runs.

Unlike the figure benchmarks (deterministic virtual-time experiments run
once), these measure real wall time with proper repetition — the cost of
simulating the hot paths. Useful for catching performance regressions in
the page-table vectorization and the RB-tree mirror.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.bench.configs import build_cokernel_system
from repro.hw.costs import CostModel, GB, MB, PAGE_4K
from repro.kernels.pagetable import PageTable
from repro.sim import fastpath
from repro.virt.memmap import VmmMemoryMap
from repro.xemem import XpmemApi


def test_speed_pagetable_map_translate_unmap(benchmark):
    """1 GiB worth of PTEs (262 144 pages) through the vectorized paths."""
    pfns = np.arange(262_144, dtype=np.int64)

    def cycle():
        pt = PageTable()
        pt.map_range(0, pfns)
        got = pt.translate_range(0, len(pfns))
        pt.unmap_range(0, len(pfns))
        return got[-1]

    result = benchmark(cycle)
    assert result == 262_143


def test_speed_native_attach_detach_256mb(benchmark):
    """Full protocol round trip: export once, attach/detach 256 MiB."""
    rig = build_cokernel_system(num_cokernels=1, cokernel_mem=512 * MB)
    eng = rig.engine
    kitten = rig.cokernels[0].kernel
    kitten.heap_pages = 256 * MB // PAGE_4K + 16
    kp = kitten.create_process("exp")
    lp = rig.linux.kernel.create_process("att", core_id=2)
    heap = kitten.heap_region(kp)
    api_k, api_l = XpmemApi(kp), XpmemApi(lp)

    def setup():
        segid = yield from api_k.xpmem_make(heap.start, 256 * MB)
        apid = yield from api_l.xpmem_get(segid)
        return apid

    apid = eng.run_process(setup())

    def cycle():
        def run():
            att = yield from api_l.xpmem_attach(apid)
            yield from api_l.xpmem_detach(att)

        eng.run_process(run())

    benchmark(cycle)


def _fig5_scale_cycle_seconds(enabled: bool, cycles: int, touches: int,
                              npages: int) -> float:
    """Wall time for ``cycles`` attach/touch/detach rounds over a 1 GiB
    export — the Fig. 5 shape (one standing export, repeated access
    through the attached window)."""
    ctx = fastpath.enabled() if enabled else fastpath.disabled()
    with ctx:
        rig = build_cokernel_system(num_cokernels=1)
        eng = rig.engine
        kitten = rig.cokernels[0].kernel
        kitten.heap_pages = npages + 16
        kp = kitten.create_process("exp")
        lp = rig.linux.kernel.create_process("att", core_id=2)
        heap = kitten.heap_region(kp)
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)

        def setup():
            segid = yield from api_k.xpmem_make(heap.start, npages * PAGE_4K)
            apid = yield from api_l.xpmem_get(segid)
            return apid

        apid = eng.run_process(setup())
        t0 = time.perf_counter()
        for _ in range(cycles):
            def run():
                att = yield from api_l.xpmem_attach(apid)
                for _ in range(touches):
                    yield from rig.linux.kernel.touch_pages(
                        lp, att.vaddr, npages, write=True
                    )
                yield from api_l.xpmem_detach(att)

            eng.run_process(run())
        elapsed = time.perf_counter() - t0
    return elapsed


def test_speed_fastpath_1gib_attach_speedup():
    """The fast paths must be worth their complexity: >=2x wall-clock on a
    Fig. 5-scale run. Emits ``benchmarks/results/BENCH_speed.json``."""
    npages = GB // PAGE_4K
    cycles, touches = 3, 8
    # best-of-2 per mode to shave scheduler noise
    slow = min(
        _fig5_scale_cycle_seconds(False, cycles, touches, npages)
        for _ in range(2)
    )
    fast = min(
        _fig5_scale_cycle_seconds(True, cycles, touches, npages)
        for _ in range(2)
    )
    speedup = slow / fast
    results = pathlib.Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    (results / "BENCH_speed.json").write_text(json.dumps({
        "benchmark": "fig5_scale_attach_touch_detach",
        "attach_bytes": npages * PAGE_4K,
        "npages": npages,
        "cycles": cycles,
        "touches_per_cycle": touches,
        "slowpath_seconds": round(slow, 6),
        "fastpath_seconds": round(fast, 6),
        "speedup": round(speedup, 3),
        "required_speedup": 2.0,
    }, indent=2) + "\n")
    assert speedup >= 2.0, (
        f"fast paths only {speedup:.2f}x faster (slow={slow:.3f}s, "
        f"fast={fast:.3f}s)"
    )


def test_speed_rb_memmap_insert_64k_entries(benchmark):
    """Per-page RB-tree mirror: 65 536 scattered-frame inserts + removal."""
    costs = CostModel()
    hpas = np.arange(0, 131_072, 2, dtype=np.int64)

    def cycle():
        mm = VmmMemoryMap(costs, backend="rbtree")
        work = mm.insert_mapping(0, hpas)
        mm.remove_mapping(0, len(hpas))
        return work

    assert benchmark(cycle) > 0
