"""Table 2: 1 GB attach throughput across the Palacios VM boundary.

Paper rows (GB/s): Kitten→Linux 12.841; Kitten→Linux(VM) 3.991 (8.79
without the RB-tree inserts); Linux(VM)→Kitten 12.606. The asserted
shape: the VM-attach direction loses ≈3× to the native path, removing
the memory-map insert work recovers most of it, and the guest-export
direction stays near native.
"""

from conftest import run_once

from repro.bench.figures import table2_vm_throughput
from repro.bench.report import render_table


def test_table2_vm_throughput(benchmark, report_file):
    result = run_once(benchmark, table2_vm_throughput, reps=4)
    by_pair = {(r.exporting, r.attaching): r for r in result.rows}

    native = by_pair[("Kitten", "Linux")]
    vm_attach = by_pair[("Kitten", "Linux (VM)")]
    guest_export = by_pair[("Linux (VM)", "Kitten")]

    # bands around the paper's values
    assert 12.0 <= native.gib_s <= 14.0
    assert 3.3 <= vm_attach.gib_s <= 4.7
    assert 8.0 <= vm_attach.gib_s_without_rb <= 10.0
    assert 9.5 <= guest_export.gib_s <= 13.5
    # the headline ratios
    assert 2.5 <= native.gib_s / vm_attach.gib_s <= 4.0       # ~3x loss
    assert vm_attach.gib_s_without_rb > 2 * vm_attach.gib_s   # inserts dominate
    assert guest_export.gib_s > 2 * vm_attach.gib_s           # asymmetry

    rows = [
        (r.exporting, r.attaching, r.gib_s,
         "-" if r.gib_s_without_rb is None else f"{r.gib_s_without_rb:.3f}")
        for r in result.rows
    ]
    text = render_table(
        ["exporting", "attaching", "GiB/s", "w/o rb-tree inserts"],
        rows,
        title=(
            "Table 2 — VM-boundary attach throughput, 1 GB regions "
            "(paper: 12.841 / 3.991 (8.79) / 12.606)"
        ),
    )
    report_file("table2_vm_throughput", text)
