"""Figure 7: Kitten noise profile while serving XEMEM attachments.

Paper: a frequent ≈12 µs hardware baseline and periodic ≈100 µs SMIs;
4 KB attachment detours vanish into the baseline, 2 MB detours are
noticeable but below the SMI band, and 1 GB detours are two orders of
magnitude larger (≈23–24 ms).
"""

from collections import Counter

from conftest import run_once

from repro.bench.figures import fig7_noise
from repro.bench.report import render_table


def test_fig7_noise(benchmark, report_file):
    result = run_once(benchmark, fig7_noise, duration_s=10)

    assert result.baseline_us == 12.0
    assert result.smi_us == 100.0
    # 4 KB: below the detection threshold / baseline (invisible in Fig. 7)
    assert result.attach_detour_us["4KB"] < result.baseline_us
    # 2 MB: noticeable but below the SMI band
    assert result.baseline_us < result.attach_detour_us["2MB"] < result.smi_us
    # 1 GB: two orders of magnitude above everything else, 20-26 ms
    assert 20_000 <= result.attach_detour_us["1GB"] <= 26_000
    assert result.attach_detour_us["1GB"] > 100 * result.smi_us

    sources = Counter(src for _t, _d, src in result.detours)
    # the baseline fires every ~10 ms over 10 s, SMIs every ~1 s
    assert 900 <= sources["hw-baseline"] <= 1100
    assert 8 <= sources["smi"] <= 12

    rows = [
        ("hardware baseline", f"{result.baseline_us:.1f}", sources["hw-baseline"]),
        ("SMI", f"{result.smi_us:.1f}", sources["smi"]),
        ("4KB attachment walk", "below threshold", "-"),
        ("2MB attachment walk", f"{result.attach_detour_us['2MB']:.1f}",
         sources.get("xemem-walk:512p", 0)),
        ("1GB attachment walk", f"{result.attach_detour_us['1GB']:.1f}",
         sources.get("xemem-walk:262144p", 0)),
    ]
    text = render_table(
        ["detour source", "duration (us)", "events in 10s"],
        rows,
        title=(
            "Figure 7 — Kitten noise profile under attachment service "
            "(paper: baseline ~12us, SMI ~100us, 1GB ~23-24ms)"
        ),
    )
    report_file("fig7_noise", text)
