"""Figure 9: multi-node weak scaling of the composed workload.

Paper, panel (a) one-time: the multi-enclave composition (simulation in
a Palacios VM on a Kitten co-kernel host) scales almost flat with small
variance, while Linux-only declines steadily — a virtualized simulation
beating itself running natively, because isolation wins. Panel (b)
recurring: Linux-only wins at a single node (the VM pays its recurring
attach cost) but loses from two nodes on; both configurations keep their
panel-(a) scaling shapes.
"""

from conftest import run_once

from repro.bench.figures import fig9_multi_node
from repro.bench.report import render_table


def test_fig9_multi_node(benchmark, report_file):
    result = run_once(benchmark, fig9_multi_node, runs=3)

    # panel (a): one-time
    lo = result.series("linux_only", "one_time")
    me = result.series("multi_enclave", "one_time")
    # Linux-only declines steadily: strictly increasing in node count
    assert all(b.mean_s > a.mean_s for a, b in zip(lo, lo[1:]))
    # multi-enclave is nearly flat: <5% total growth from 1 to 8 nodes
    assert me[-1].mean_s / me[0].mean_s < 1.05
    # by 8 nodes the isolated (virtualized!) configuration wins clearly
    assert lo[-1].mean_s > me[-1].mean_s * 1.08
    # multi-enclave is the more consistent environment at scale
    assert me[-1].stdev_s <= lo[-1].stdev_s

    # panel (b): recurring
    lo_r = result.series("linux_only", "recurring")
    me_r = result.series("multi_enclave", "recurring")
    # Linux-only outperforms multi-enclave at a single node...
    assert lo_r[0].mean_s < me_r[0].mean_s
    # ...but loses past two nodes
    assert lo_r[-1].mean_s > me_r[-1].mean_s
    # and both keep their scaling shapes
    assert all(b.mean_s > a.mean_s for a, b in zip(lo_r, lo_r[1:]))
    assert me_r[-1].mean_s / me_r[0].mean_s < 1.06

    rows = [
        (p.attach, p.mode, p.nodes, f"{p.mean_s:.2f}", f"{p.stdev_s:.3f}")
        for p in result.points
    ]
    text = render_table(
        ["attach model", "composition", "nodes", "mean s", "stdev s"],
        rows,
        title=(
            "Figure 9 — weak-scaling in situ completion time "
            "(paper band: ~42-54 s; multi-enclave flat, Linux-only declines, "
            "recurring crossover after 1 node)"
        ),
    )
    report_file("fig9_multi_node", text)
