"""Ablation D: cost-model sensitivity of the headline throughput.

The calibration's honesty check: Fig. 5's attach throughput must respond
*proportionally* to the per-page pipeline constants (it is derived, not
hard-coded), and the fixed per-attachment overhead must stay irrelevant
at the paper's sizes. Verifies the reproduction isn't accidentally
insensitive to its own model.
"""

from conftest import run_once

from repro.bench.configs import build_cokernel_system
from repro.bench.report import render_table
from repro.hw.costs import CostModel, MB, PAGE_4K, gib_per_s
from repro.xemem import XpmemApi


def measure_attach_gibs(costs: CostModel, size=256 * MB, reps=5) -> float:
    rig = build_cokernel_system(
        num_cokernels=1, cokernel_mem=512 * MB, costs=costs
    )
    eng = rig.engine
    kitten = rig.cokernels[0].kernel
    kitten.heap_pages = size // PAGE_4K + 16
    kp = kitten.create_process("exp")
    lp = rig.linux.kernel.create_process("att", core_id=2)
    heap = kitten.heap_region(kp)

    def run():
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(heap.start, size)
        apid = yield from api_l.xpmem_get(segid)
        durations = []
        for _ in range(reps):
            t0 = eng.now
            att = yield from api_l.xpmem_attach(apid)
            durations.append(eng.now - t0)
            yield from api_l.xpmem_detach(att)
        return sum(durations) / len(durations)

    return gib_per_s(size, eng.run_process(run()))


def sweep():
    base = CostModel()
    rows = []
    for label, costs in (
        ("baseline", base),
        ("walk x2", CostModel(walk_per_page_ns=2 * base.walk_per_page_ns)),
        ("install x2", CostModel(map_install_per_page_ns=2 * base.map_install_per_page_ns)),
        ("channel x2", CostModel(channel_per_pfn_ns=2 * base.channel_per_pfn_ns)),
        ("fixed cost x100", CostModel(attach_fixed_ns=100 * base.attach_fixed_ns)),
    ):
        rows.append((label, measure_attach_gibs(costs)))
    return base, rows


def test_sensitivity_to_pipeline_constants(benchmark, report_file):
    base, rows = run_once(benchmark, sweep)
    values = dict(rows)
    baseline = values["baseline"]
    per_page = base.native_attach_per_page_ns()

    # doubling one stage slows throughput by exactly that stage's share
    for label, stage_ns in (
        ("walk x2", base.walk_per_page_ns),
        ("install x2", base.map_install_per_page_ns),
        ("channel x2", base.channel_per_pfn_ns),
    ):
        predicted = baseline * per_page / (per_page + stage_ns)
        assert abs(values[label] - predicted) / predicted < 0.02
    # a 100x fixed cost (1 ms per attachment) still moves 256 MB
    # throughput by <6% -- the Fig. 5 flatness is structural
    assert abs(values["fixed cost x100"] - baseline) / baseline < 0.06

    text = render_table(
        ["cost-model variant", "attach GiB/s (256 MB)"],
        rows,
        title="Ablation D — sensitivity of Fig. 5 throughput to the pipeline",
    )
    report_file("ablation_sensitivity", text)
