"""Figure 8: the single-node in situ benchmark (both panels).

Paper, one-time panel (a): async beats sync in every environment;
Kitten/Linux is the best configuration; every multi-enclave bar is more
consistent (smaller error bars) than Linux-only. Recurring panel (b):
sync+recurring is the worst case for the virtualized configurations AND
Linux-only degrades markedly (its lazy-attachment page faults), while
async hides most of the recurring overhead.
"""

from conftest import run_once

from repro.bench.figures import fig8_single_node
from repro.bench.report import render_table


def test_fig8_single_node(benchmark, report_file):
    result = run_once(benchmark, fig8_single_node, runs=3)

    c = result.cell
    # (a) one-time: async < sync for every environment
    for name in ("linux_linux", "kitten_linux",
                 "kitten_vm_linux_host", "kitten_vm_kitten_host"):
        assert c(name, "async", "one_time").mean_s < c(name, "sync", "one_time").mean_s

    # Kitten/Linux is the best configuration under both execution models
    for execution in ("sync", "async"):
        kl = c("kitten_linux", execution, "one_time").mean_s
        for other in ("linux_linux", "kitten_vm_linux_host", "kitten_vm_kitten_host"):
            assert kl <= c(other, execution, "one_time").mean_s

    # async: every Kitten-simulation environment beats Linux-only
    ll_async = c("linux_linux", "async", "one_time").mean_s
    for name in ("kitten_linux", "kitten_vm_linux_host", "kitten_vm_kitten_host"):
        assert c(name, "async", "one_time").mean_s < ll_async

    # multi-enclave consistency: smaller run-to-run stdev than Linux-only
    for attach in ("one_time", "recurring"):
        for execution in ("sync", "async"):
            ll_sd = c("linux_linux", execution, attach).stdev_s
            assert c("kitten_linux", execution, attach).stdev_s < ll_sd

    # (b) recurring: sync costs every environment more than one-time;
    # the VM-on-Linux-host configuration suffers the most among Kitten
    # setups; Linux-only picks up its page-fault penalty too
    for name in ("linux_linux", "kitten_vm_linux_host"):
        assert (
            c(name, "sync", "recurring").mean_s
            > c(name, "sync", "one_time").mean_s + 1.0
        )
    assert (
        c("kitten_vm_linux_host", "sync", "recurring").mean_s
        > c("kitten_linux", "sync", "recurring").mean_s
    )
    # async recovers most of the recurring overhead (paper: "largely
    # disappear"): the async recurring penalty is well under half the
    # sync recurring penalty for Linux-only
    ll_sync_pen = (
        c("linux_linux", "sync", "recurring").mean_s
        - c("linux_linux", "sync", "one_time").mean_s
    )
    ll_async_pen = (
        c("linux_linux", "async", "recurring").mean_s
        - c("linux_linux", "async", "one_time").mean_s
    )
    assert ll_async_pen < 0.6 * ll_sync_pen

    rows = [
        (cell.config, cell.execution, cell.attach,
         f"{cell.mean_s:.2f}", f"{cell.stdev_s:.3f}")
        for cell in result.cells
    ]
    text = render_table(
        ["configuration", "execution", "attach model", "mean s", "stdev s"],
        rows,
        title=(
            "Figure 8 — single-node in situ completion time "
            "(paper band: ~140-160 s; async < sync; Kitten/Linux best; "
            "Linux-only most variable)"
        ),
    )
    report_file("fig8_insitu_single_node", text)
