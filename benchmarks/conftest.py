"""Benchmark harness support.

Each benchmark runs its figure's experiment generator once (the
simulation is deterministic; pytest-benchmark's repetition would measure
the simulator, not the system), asserts the paper's qualitative
invariants, and writes a paper-vs-measured report to
``benchmarks/results/<name>.txt`` — the inputs to EXPERIMENTS.md.
"""

import pathlib
import sys

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent))
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))


@pytest.fixture
def report_file():
    """Writer: report_file(name, text) persists a result artifact."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        # also echo so `pytest -s` shows it inline
        print(f"\n=== {name} ===\n{text}")

    return write


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
