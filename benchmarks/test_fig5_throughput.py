"""Figure 5: shared-memory attach throughput vs RDMA verbs over IB.

Paper: attach sustains ≈13 GB/s and attach+read ≈12 GB/s, flat from
128 MB to 1 GB; RDMA verbs manage ≈3.4 GB/s. The invariants asserted
here are the figure's content: the two shared-memory series sit in those
bands, stay flat across sizes, and beat RDMA by roughly 4×.
"""

from conftest import run_once

from repro.bench.figures import fig5_throughput
from repro.bench.report import render_series
from repro.hw.costs import MB


def test_fig5_throughput(benchmark, report_file):
    result = run_once(benchmark, fig5_throughput, reps=10)

    # bands
    assert all(12.0 <= x <= 14.0 for x in result.attach_gib_s)
    assert all(11.0 <= x <= 13.0 for x in result.attach_read_gib_s)
    assert all(3.0 <= x <= 3.6 for x in result.rdma_gib_s)
    # attach+read sits below attach (the per-page read touch)
    for a, ar in zip(result.attach_gib_s, result.attach_read_gib_s):
        assert ar < a
    # flat across sizes: max/min within 5%
    for series in (result.attach_gib_s, result.attach_read_gib_s):
        assert max(series) / min(series) < 1.05
    # shared memory beats RDMA by roughly the paper's factor
    assert min(result.attach_gib_s) / max(result.rdma_gib_s) > 3.0

    text = render_series(
        {
            "attach GiB/s": result.attach_gib_s,
            "attach+read GiB/s": result.attach_read_gib_s,
            "RDMA GiB/s": result.rdma_gib_s,
        },
        "size MB",
        [s // MB for s in result.sizes_bytes],
        title=(
            "Figure 5 — cross-enclave throughput (paper: attach ~13, "
            "attach+read ~12, RDMA ~3.4 GB/s)"
        ),
    )
    report_file("fig5_throughput", text)
