"""Ablations A and C: fixing the Palacios memory-map insert overhead.

The paper's §5.4 closes: "In the future we intend to remove this
overhead through the use of more intelligent radix tree based data
structures." Ablation A swaps the RB tree for that radix map and re-runs
the Table 2 experiment. Ablation C is this reproduction's own variant:
keep the RB tree but coalesce contiguous host runs into single entries
before inserting — a pure software change that recovers native-like
throughput whenever the exporter's frames are contiguous (they are, for
Kitten's static heap).
"""

from conftest import run_once

from repro.bench.figures import table2_vm_throughput
from repro.bench.report import render_table


def _vm_attach_row(result):
    return next(r for r in result.rows if r.attaching == "Linux (VM)")


def run_all(reps: int = 3):
    baseline = table2_vm_throughput(reps=reps)
    radix = table2_vm_throughput(reps=reps, memmap_backend="radix")
    coalesced = table2_vm_throughput(reps=reps, memmap_coalesce=True)
    return baseline, radix, coalesced


def test_ablation_memmap_backends(benchmark, report_file):
    baseline, radix, coalesced = run_once(benchmark, run_all)

    base_row = _vm_attach_row(baseline)
    radix_row = _vm_attach_row(radix)
    coal_row = _vm_attach_row(coalesced)

    # A: the radix map removes the growth-dependent insert cost and
    # lands near the paper's "w/o rb-tree inserts" counterfactual
    assert radix_row.gib_s > 1.8 * base_row.gib_s
    assert abs(radix_row.gib_s - base_row.gib_s_without_rb) / base_row.gib_s_without_rb < 0.2
    # C: coalescing contiguous host runs all but eliminates insert work
    # (Kitten's heap is physically contiguous), beating even the radix map
    assert coal_row.gib_s > radix_row.gib_s
    assert coal_row.gib_s > 2.0 * base_row.gib_s
    # neither ablation changes the native or guest-export rows materially
    for variant in (radix, coalesced):
        native = next(r for r in variant.rows if r.attaching == "Linux")
        assert abs(native.gib_s - 13.1) < 1.0

    rows = [
        ("rbtree per-page (shipped Palacios)", f"{base_row.gib_s:.3f}",
         f"{base_row.gib_s_without_rb:.3f}"),
        ("radix map (paper's future work, ablation A)", f"{radix_row.gib_s:.3f}",
         f"{radix_row.gib_s_without_rb:.3f}"),
        ("rbtree + run coalescing (ablation C)", f"{coal_row.gib_s:.3f}",
         f"{coal_row.gib_s_without_rb:.3f}"),
    ]
    text = render_table(
        ["guest memory-map variant", "VM attach GiB/s", "w/o insert work"],
        rows,
        title=(
            "Ablation A/C — Kitten→Linux(VM) 1 GB attach under different "
            "memory-map designs (baseline paper value: 3.991 GB/s)"
        ),
    )
    report_file("ablation_memmap", text)
