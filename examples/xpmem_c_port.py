#!/usr/bin/env python3
"""Porting a real XPMEM application: the C API, verbatim.

The paper's compatibility story (§4.1) is that applications written
against SGI/Cray XPMEM run on XEMEM unmodified. This example is such an
application: a producer/consumer written in the C calling convention —
``XPMEM_PERMIT_MODE``, flags, negative errno returns, attach-by-address
— running cross-enclave without knowing enclaves exist. Compare with
``quickstart.py``, which uses the idiomatic Python surface.

Run:  python examples/xpmem_c_port.py
"""

import errno

from repro.bench.configs import build_cokernel_system
from repro.hw.costs import MB
from repro.xemem.compat import (
    XPMEM_PERMIT_MODE,
    XPMEM_RDONLY,
    XPMEM_RDWR,
    XpmemCompat,
    xpmem_version,
)


def main():
    print(f"xpmem_version() = {xpmem_version():#x}")
    rig = build_cokernel_system(num_cokernels=1)
    eng = rig.engine
    producer_proc = rig.cokernels[0].kernel.create_process("producer")
    consumer_proc = rig.linux.kernel.create_process("consumer", core_id=2)
    heap = rig.cokernels[0].kernel.heap_region(producer_proc)
    producer = XpmemCompat(producer_proc)
    consumer = XpmemCompat(consumer_proc)

    def scenario():
        # -- producer (as a C program would call it) --
        segid = yield from producer.xpmem_make(
            heap.start, 1 * MB, XPMEM_PERMIT_MODE, 0o644  # world-readable
        )
        assert segid > 0, "xpmem_make failed"
        print(f"producer: xpmem_make -> segid {segid:#x}")

        # -- consumer --
        # a read-write get is denied by the 0o644 permit...
        rc = yield from consumer.xpmem_get(
            segid, XPMEM_RDWR, XPMEM_PERMIT_MODE, 0
        )
        assert rc == -errno.EACCES
        print(f"consumer: xpmem_get(RDWR) -> -EACCES (permit is 0644)")
        # ...but read-only succeeds
        apid = yield from consumer.xpmem_get(
            segid, XPMEM_RDONLY, XPMEM_PERMIT_MODE, 0
        )
        assert apid > 0
        vaddr = yield from consumer.xpmem_attach(apid, 0, 1 * MB)
        assert vaddr > 0
        print(f"consumer: xpmem_attach -> vaddr {vaddr:#x}")

        # the producer publishes through its own mapping (in C this is
        # just a store through the exported pointer), the consumer reads
        # the same bytes through the attachment
        pfns = producer_proc.aspace.table.translate_range(heap.start, 4)
        rig.cokernels[0].kernel.mem.map_region(pfns).write(0, b"C ABI payload")
        data = consumer.deref(vaddr).read(0, 13)
        print(f"consumer: read {data!r} through the attachment")

        # teardown, C style: everything returns 0
        assert (yield from consumer.xpmem_detach(vaddr)) == 0
        assert (yield from consumer.xpmem_release(apid)) == 0
        assert (yield from producer.xpmem_remove(segid)) == 0
        print("teardown: all calls returned 0")

    eng.run_process(scenario())


if __name__ == "__main__":
    main()
