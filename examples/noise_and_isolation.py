#!/usr/bin/env python3
"""OS noise profiles and why isolation matters (paper §5.5 and §7).

Part 1 runs the Selfish Detour benchmark against a Kitten core and a
Linux core and prints their detour profiles — the near-silent LWK versus
the fullweight kernel's ticks and daemon bursts — then shows how serving
a 1 GB XEMEM attachment appears as a ~24 ms detour on the exporting
Kitten core (Fig. 7).

Part 2 runs a miniature weak-scaling experiment: the same composed
workload on 1 and 4 cluster nodes, Linux-only versus multi-enclave. The
per-iteration MPI allreduce turns any one node's noise into everyone's
time, which is exactly why the isolated composition scales flat.

Run:  python examples/noise_and_isolation.py
"""

from collections import Counter

from repro.bench.configs import build_cokernel_system
from repro.cluster import Cluster, ClusterConfig
from repro.hw.costs import GB, MB
from repro.workloads.hpccg import HpccgProblem
from repro.workloads.selfish import SelfishDetour
from repro.xemem import XpmemApi

SECOND = 1_000_000_000


def part1_noise_profiles():
    print("== part 1: Selfish Detour profiles ==")
    rig = build_cokernel_system(
        num_cokernels=1, cokernel_mem=2 * GB, with_noise=True, seed=5
    )
    eng = rig.engine
    kitten = rig.cokernels[0].kernel
    linux = rig.linux.kernel

    # serve one 1 GB attachment in the middle of the window
    kitten.heap_pages = 262144 + 16
    exporter = kitten.create_process("exporter")
    attacher = linux.create_process("attacher", core_id=2)
    heap = kitten.heap_region(exporter)

    def attach_once():
        api_x, api_a = XpmemApi(exporter), XpmemApi(attacher)
        segid = yield from api_x.xpmem_make(heap.start, 1 * GB)
        apid = yield from api_a.xpmem_get(segid)
        yield eng.sleep(2 * SECOND)
        att = yield from api_a.xpmem_attach(apid)
        yield from api_a.xpmem_detach(att)
        yield eng.sleep(2 * SECOND)

    eng.run_until_complete(eng.spawn(attach_once()))

    for kernel, core_id, label in (
        (kitten, kitten.service_core.core_id, "Kitten (serving XEMEM)"),
        (linux, linux.cores[4].core_id, "Linux (idle core)"),
    ):
        sd = SelfishDetour(kernel, core_id)
        events = sd.detours(0, 4 * SECOND)
        counts = Counter(ev.source for ev in events)
        frac = sd.stolen_fraction(0, 4 * SECOND)
        print(f"  {label:24s}: {len(events):5d} detours, "
              f"{100 * frac:5.2f}% time stolen, by source: {dict(counts)}")
        longest = max(events, key=lambda ev: ev.duration_ns)
        print(f"  {'':24s}  longest detour: {longest.duration_us:10.1f} us "
              f"({longest.source})")
    print()


def part2_weak_scaling():
    print("== part 2: miniature weak scaling (async in situ) ==")
    for mode in ("linux_only", "multi_enclave"):
        times = []
        for nodes in (1, 4):
            cfg = ClusterConfig(
                nodes=nodes, enclave_mode=mode, attach="one_time",
                iterations=60, comm_interval=20, data_bytes=64 * MB,
                problem=HpccgProblem(64, 64, 64), seed=8,
            )
            times.append(Cluster(cfg).run().completion_s)
        growth = 100 * (times[1] / times[0] - 1)
        print(f"  {mode:14s}: 1 node {times[0]:6.2f} s -> 4 nodes "
              f"{times[1]:6.2f} s  ({growth:+.1f}%)")
    print("\nThe Linux-only composition pays for co-residency on every node;"
          "\nthe allreduce makes the slowest node set the pace.")


if __name__ == "__main__":
    part1_noise_profiles()
    part2_weak_scaling()
