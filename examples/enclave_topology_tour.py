#!/usr/bin/env python3
"""A tour of a deep enclave topology (the paper's Figures 1 and 2).

Builds a hierarchy like the paper's example: the Linux management enclave
(name server), two Kitten co-kernels, and a Palacios VM nested on one of
the co-kernels — so the VM is *two hops* from the name server. Runs the
§3.2 discovery protocol, prints every enclave's ID and routing table, and
then performs an attachment between the VM guest and the *sibling*
co-kernel: the command routes guest → host co-kernel → name server →
sibling, and the PFN-list response routes all the way back, being
translated into guest-physical frames at the VM boundary.

Run:  python examples/enclave_topology_tour.py
"""

from repro.bench.configs import build_cokernel_system
from repro.hw.costs import GB, MB
from repro.xemem import XpmemApi


def describe(system):
    print("discovered topology:")
    for info in system.describe():
        virt = " (virtualized)" if info["virtualized"] else ""
        print(f"  enclave {info['id']}: {info['name']:10s} "
              f"[{info['kernel']}{virt}] "
              f"name-server via {info['name_server_via']:8s} "
              f"routes {info['routes']}")
    print()


def main():
    rig = build_cokernel_system(
        num_cokernels=2, with_vm=True, vm_host="kitten", vm_ram=2 * GB
    )
    eng = rig.engine
    describe(rig.system)

    sibling = rig.cokernels[1].kernel   # kitten1: NOT the VM's host
    guest = rig.vm.kernel               # Linux inside the VM on kitten0

    exporter = sibling.create_process("producer")
    attacher = guest.create_process("consumer")
    heap = sibling.heap_region(exporter)

    def scenario():
        api_x, api_a = XpmemApi(exporter), XpmemApi(attacher)
        segid = yield from api_x.xpmem_make(heap.start, 1 * MB, name="deep-data")
        api_x.segment(segid).view().write(0, b"hello from the sibling enclave")

        found = yield from api_a.xpmem_search("deep-data")
        apid = yield from api_a.xpmem_get(found)
        att = yield from api_a.xpmem_attach(apid)
        print("VM guest read through a 2-hop attachment:",
              att.read(0, 30).decode())
        # the guest's local frames are guest-physical; the VMM memory map
        # resolves them to the sibling's real frames
        vmm = guest.vmm
        hpa = vmm.memmap.peek_translate_array(att.local_pfns[:4])
        print("guest PFNs", [int(p) for p in att.local_pfns[:4]],
              "-> host PFNs", [int(p) for p in hpa],
              f"(owned by {sibling.name}: "
              f"{all(sibling.owns_pfn(int(p)) for p in hpa)})")
        yield from api_a.xpmem_detach(att)

    eng.run_process(scenario())
    linux_module = rig.linux.module
    print(f"\nname-server enclave forwarded "
          f"{linux_module.stats['messages_forwarded']} command(s) it did not "
          f"originate — the routing protocol at work.")


if __name__ == "__main__":
    main()
