#!/usr/bin/env python3
"""Quickstart: cross-enclave shared memory in ~60 lines.

Builds the paper's basic rig — a native Linux management enclave (hosting
the XEMEM name server) plus one Kitten lightweight-kernel co-kernel — and
runs the Table 1 API end to end: a Kitten "simulation" process exports a
region, a Linux "analytics" process discovers it by name, attaches, and
the two exchange data through genuinely shared frames.

Run:  python examples/quickstart.py
"""

from repro.bench.configs import build_cokernel_system
from repro.hw.costs import MB, gib_per_s
from repro.xemem import XpmemApi


def main():
    rig = build_cokernel_system(num_cokernels=1)
    eng = rig.engine

    kitten = rig.cokernels[0].kernel   # the lightweight co-kernel enclave
    linux = rig.linux.kernel           # the fullweight management enclave

    sim = kitten.create_process("simulation")
    analytics = linux.create_process("analytics", core_id=2)

    heap = kitten.heap_region(sim)
    size = 2 * MB

    def scenario():
        api_sim = XpmemApi(sim)
        api_ana = XpmemApi(analytics)

        # exporter: register the region under a global name (Table 1:
        # xpmem_make; the name is XEMEM's discoverability extension)
        segid = yield from api_sim.xpmem_make(heap.start, size, name="sim-output")
        print(f"[{eng.now/1e6:8.3f} ms] kitten exported {segid!r}")

        # the simulation writes its output through its own mapping
        api_sim.segment(segid).view().write(0, b"timestep 42: T=1.6e7 K")

        # attacher: discover, get, attach (all cross-enclave, all routed
        # through the name server -- the application sees none of that)
        found = yield from api_ana.xpmem_search("sim-output")
        apid = yield from api_ana.xpmem_get(found)
        t0 = eng.now
        att = yield from api_ana.xpmem_attach(apid)
        attach_ns = eng.now - t0
        print(f"[{eng.now/1e6:8.3f} ms] linux attached {found!r}: "
              f"{size // MB} MiB in {attach_ns/1e6:.3f} ms "
              f"({gib_per_s(size, attach_ns):.2f} GiB/s)")

        # zero copy: the attacher reads the simulation's bytes...
        print("analytics read:", att.read(0, 22).decode())
        # ...and writes back a result the simulation can see
        att.write(100, b"analysis: stable")
        echoed = api_sim.segment(segid).view().read(100, 16).decode()
        print("simulation sees:", echoed)

        yield from api_ana.xpmem_detach(att)
        yield from api_ana.xpmem_release(apid)
        yield from api_sim.xpmem_remove(segid)
        print(f"[{eng.now/1e6:8.3f} ms] torn down cleanly")

    eng.run_process(scenario())


if __name__ == "__main__":
    main()
