#!/usr/bin/env python3
"""A composed in situ application: HPCCG + STREAM coupled over XEMEM.

This is the paper's §6 scenario at example scale: an iterative conjugate
gradient "simulation" signals a STREAM "analytics" program through
variables in shared memory every N iterations; the analytics program
attaches to the simulation's data region and processes it while (in the
asynchronous model) the simulation keeps computing.

The example runs the same workload under two Table 3 configurations —
everything under one Linux, versus the simulation isolated in a Kitten
co-kernel — and prints the completion times and the demand-paging fault
counts that explain the difference.

Run:  python examples/insitu_composed_workload.py
"""

from repro.bench.configs import build_insitu_rig
from repro.hw.costs import MB
from repro.workloads.hpccg import HpccgProblem, HpccgSolver
from repro.workloads.insitu import InSituConfig


def run_one(config_name: str, execution: str) -> None:
    cfg = InSituConfig(
        execution=execution,
        attach="recurring",          # fresh export + attach every interval
        iterations=120,
        comm_interval=30,            # 4 communication points
        data_bytes=64 * MB,
        problem=HpccgProblem(48, 48, 48),
        verify_numerics=False,
    )
    rig = build_insitu_rig(config_name, cfg, seed=2)
    result = rig["workload"].run()
    streams = ", ".join(f"{t*1e3:.0f}ms" for t in result.stream_times_s)
    print(
        f"  {config_name:13s} {execution:5s}: simulation {result.sim_time_s:6.2f} s"
        f" | analytics faults {result.analytics_faults:6d}"
        f" | STREAM per point: {streams}"
        f" | handshake ok: {result.data_marks_verified}"
    )


def main():
    print("real numerics check: solving the 27-point stencil system once")
    solver = HpccgSolver(HpccgProblem(32, 32, 32))
    _x, history = solver.solve(solver.default_rhs(seed=1), tol=1e-9, max_iters=200)
    print(f"  CG converged to residual {history[-1]:.2e} "
          f"in {len(history)} iterations\n")

    print("composed workload, recurring attachments:")
    for execution in ("sync", "async"):
        run_one("linux_linux", execution)
        run_one("kitten_linux", execution)
        print()

    print(
        "Note the Linux-only fault counts: single-OS XEMEM attachments map\n"
        "lazily, so every recurring attachment re-pays one page fault per\n"
        "touched page (the paper's Fig. 8(b) mechanism). The Kitten-exported\n"
        "configuration installs cross-enclave mappings eagerly and faults\n"
        "never."
    )


if __name__ == "__main__":
    main()
