"""Command-line entry point: regenerate the paper's figures and tables.

Usage::

    python -m repro list
    python -m repro fig5 [--reps 20]
    python -m repro fig6 [--reps 5]
    python -m repro table2 [--reps 5]
    python -m repro fig7 [--seconds 10]
    python -m repro fig8 [--runs 5]
    python -m repro fig9 [--runs 3]
    python -m repro ablations [--reps 3]
    python -m repro all
    python -m repro chaos [--seed N] [--plan SPEC] [--cokernels N] [--ops N]
                          [--bundle-dir DIR] [--overload SPEC]
    python -m repro soak [--seed N] [--rates R1,R2,...] [--plan SPEC]
                         [--overload SPEC] [--out PATH] [--bundle-dir DIR]
    python -m repro inspect trace.json [--attribute]
    python -m repro report trace.json [--json]
    python -m repro diagnose <bundle-dir> [--window-ns N] [--json]
    python -m repro perf-diff baseline current [--top N] [--json]
                              [--min-coverage F]
    python -m repro serve-report [--seed N] [--sessions N] [--slo SPEC]
                                 [--out-dir DIR] [--fail-on-violation]
    python -m repro lint [paths...] [--format text|json] [--select ...]

``report`` exits 3 when the trace was truncated by the span ring cap
(attribution coverage below 100% due to drops). ``serve-report`` runs
the closed-loop serving scenario under the full telemetry pipeline
(time-series, SLOs, journeys, exporters) — see repro.obs.serve_cli.
``chaos`` exits 2 (and prints the incident-bundle path) when the run
ends with unreclaimed crash state; ``soak`` exits 4 on an SLO breach of
the protected run (docs/OVERLOAD.md); ``diagnose`` renders a bundle as
a causal timeline and ``perf-diff`` attributes the virtual-time delta
between two captures — see docs/OBSERVABILITY.md.

Each command builds the experiment from scratch, runs it on the virtual
clock, and prints the same rows/series the paper reports.

Every figure command also accepts the observability flags::

    --trace out.json     record spans, write a Perfetto-loadable trace
    --trace-format jsonl write JSONL instead of Chrome trace format
    --metrics            print a metrics snapshot after the figures
    --metrics-out m.json write the metrics snapshot to a file
    --profile            print the simulator's wallclock hot-path profile
    --flightrec          arm the flight-recorder black box (dumps an
                         incident bundle on unhandled exceptions)
    --flightrec-dump DIR arm the black box and always dump a bundle to DIR

All recording is against the virtual clock (traces and metrics are
byte-identical between identical runs); only ``--profile`` reads host
time, and its output never enters the trace or metrics files.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import obs
from repro.bench import figures
from repro.bench.report import render_series, render_table
from repro.hw.costs import MB


def _fig5(args) -> str:
    r = figures.fig5_throughput(reps=args.reps)
    return render_series(
        {
            "attach GiB/s": r.attach_gib_s,
            "attach+read GiB/s": r.attach_read_gib_s,
            "RDMA GiB/s": r.rdma_gib_s,
        },
        "size MB",
        [s // MB for s in r.sizes_bytes],
        title="Figure 5 (paper: ~13 / ~12 / ~3.4 GB/s)",
    )


def _fig6(args) -> str:
    r = figures.fig6_scalability(reps=args.reps)
    return render_series(
        {f"{s // MB}MB": r.throughput[s] for s in r.sizes_bytes},
        "enclaves",
        r.enclave_counts,
        title="Figure 6 (paper: ~13 at 1 enclave, slight dip at 2, then flat)",
    )


def _table2(args) -> str:
    r = figures.table2_vm_throughput(reps=args.reps)
    rows = [
        (row.exporting, row.attaching, row.gib_s,
         "-" if row.gib_s_without_rb is None else f"{row.gib_s_without_rb:.3f}")
        for row in r.rows
    ]
    return render_table(
        ["exporting", "attaching", "GiB/s", "w/o rb inserts"],
        rows,
        title="Table 2 (paper: 12.841 / 3.991 (8.79) / 12.606 GB/s)",
    )


def _fig7(args) -> str:
    from repro.bench.plot import render_scatter

    r = figures.fig7_noise(duration_s=args.seconds)
    rows = [("baseline", f"{r.baseline_us:.1f} us"), ("SMI", f"{r.smi_us:.1f} us")]
    rows += [(f"{label} attachment", f"{us:.1f} us" if us else "below threshold")
             for label, us in r.attach_detour_us.items()]
    table = render_table(
        ["detour source", "duration"],
        rows,
        title=f"Figure 7 — {len(r.detours)} detours in {args.seconds}s window",
    )
    series = {}
    for t, dur_us, source in r.detours:
        series.setdefault(source.split(":")[0], []).append((t, dur_us))
    scatter = render_scatter(
        series,
        log_y=True,
        title="detour duration (us, log) over time — the paper's Fig. 7 panels:",
        x_label="seconds",
        y_label="us",
    )
    return table + "\n\n" + scatter


def _fig8(args) -> str:
    from repro.bench.report import render_bars

    r = figures.fig8_single_node(runs=args.runs)
    rows = [
        (c.config, c.execution, c.attach, c.mean_s, c.stdev_s) for c in r.cells
    ]
    table = render_table(
        ["configuration", "execution", "attach", "mean s", "stdev s"],
        rows,
        title="Figure 8 (paper band ~140-160 s)",
    )
    one_time = [
        (f"{c.config} [{c.execution}]", c.mean_s)
        for c in r.cells
        if c.attach == "one_time"
    ]
    floor = 5 * (min(v for _l, v in one_time) // 5)
    bars = render_bars(one_time, title="one-time attachment model:",
                       unit="s", baseline=floor)
    return table + "\n\n" + bars


def _fig9(args) -> str:
    r = figures.fig9_multi_node(runs=args.runs)
    rows = [(p.attach, p.mode, p.nodes, p.mean_s, p.stdev_s) for p in r.points]
    return render_table(
        ["attach", "composition", "nodes", "mean s", "stdev s"],
        rows,
        title="Figure 9 (paper band ~42-54 s)",
    )


def _ablations(args) -> str:
    base = figures.table2_vm_throughput(reps=args.reps)
    radix = figures.table2_vm_throughput(reps=args.reps, memmap_backend="radix")
    coal = figures.table2_vm_throughput(reps=args.reps, memmap_coalesce=True)

    def vm_row(r):
        return next(x for x in r.rows if x.attaching == "Linux (VM)")

    rows = [
        ("rbtree per-page (shipped)", vm_row(base).gib_s),
        ("radix map (ablation A)", vm_row(radix).gib_s),
        ("rbtree + coalescing (ablation C)", vm_row(coal).gib_s),
    ]
    part1 = render_table(["guest memory map", "VM attach GiB/s"], rows,
                         title="Ablations A/C (paper baseline: 3.991 GB/s)")
    core0 = figures.fig6_scalability(reps=args.reps, sizes=(256 * MB,))
    spread = figures.fig6_scalability(
        reps=args.reps, sizes=(256 * MB,), ipi_target_policy="distributed"
    )
    part2 = render_series(
        {"core0": core0.throughput[256 * MB],
         "distributed": spread.throughput[256 * MB]},
        "enclaves",
        core0.enclave_counts,
        title="Ablation B — IPI routing (256MB, GiB/s per pair)",
    )
    return part1 + "\n\n" + part2


def _explain(args) -> str:
    from repro.bench.explain import explain_native_attach, explain_vm_attach

    parts = []
    for breakdown in (explain_native_attach(), explain_vm_attach()):
        parts.append(
            render_table(
                ["stage", "time", "share"],
                breakdown.rows(),
                title=f"{breakdown.path}: {breakdown.gib_s:.2f} GiB/s for "
                      f"{breakdown.size_bytes // MB} MB",
            )
        )
    return "\n\n".join(parts)


def _load_trace(path: str):
    """Read a trace export via :mod:`repro.obs.analysis`, CLI-fatal on error."""
    from repro.obs import analysis

    try:
        return analysis.load_trace(path)
    except OSError as exc:
        raise SystemExit(f"cannot read {path}: {exc.strerror}")
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise SystemExit(
            f"{path} is not a Chrome-trace or JSONL export ({exc})"
        )


def _dropped_warning(trace, path: str) -> str:
    return (
        f"!! WARNING: {trace.dropped} spans were DROPPED by the ring cap "
        f"while recording {path} — every summary below is computed from a "
        "TRUNCATED trace. Re-record with a larger span buffer "
        "(obs.observing(..., max_trace_events=...)) for full coverage.\n\n"
    )


def _inspect(args) -> str:
    """Summarize a trace export: spans per name and per track."""
    if not args.target:
        raise SystemExit("usage: python -m repro inspect <trace.json>")
    trace = _load_trace(args.target)
    spans = trace.spans
    if not spans:
        return f"{args.target}: no spans recorded"

    warning = _dropped_warning(trace, args.target) if trace.dropped else ""

    by_name: dict = {}
    for s in spans:
        agg = by_name.setdefault(s.name, [0, 0, 0])
        agg[0] += 1
        dur = s.duration_ns
        agg[1] += dur
        agg[2] = max(agg[2], dur)
    name_rows = [
        (name, n, f"{total / 1e6:.3f}", f"{total / n / 1e3:.1f}", f"{mx / 1e3:.1f}")
        for name, (n, total, mx) in sorted(
            by_name.items(), key=lambda kv: -kv[1][1]
        )
    ]
    part1 = render_table(
        ["span", "count", "total ms", "mean us", "max us"],
        name_rows,
        title=f"{args.target}: {len(spans)} spans, {len(by_name)} names",
    )

    by_track: dict = {}
    for s in spans:
        agg = by_track.setdefault(s.track, [0, 0])
        agg[0] += 1
        agg[1] += s.duration_ns
    track_rows = [
        (track, n, f"{total / 1e6:.3f}")
        for track, (n, total) in sorted(by_track.items(), key=lambda kv: -kv[1][1])
    ]
    part2 = render_table(["track", "spans", "total ms"], track_rows,
                         title="per track (virtual time):")
    out = warning + part1 + "\n\n" + part2
    if getattr(args, "attribute", False):
        from repro.obs import analysis

        out += "\n\n" + analysis.render_report(
            analysis.attribute(trace), source=args.target
        )
    return out


def _report(args):
    """Table-2-style per-subsystem cost breakdown of a trace file.

    Returns ``(text, exit_code)``: exit 3 when spans were dropped by the
    ring cap, so CI treats a truncated attribution as a failure instead
    of silently under-counting.
    """
    if not args.target:
        raise SystemExit("usage: python -m repro report <trace.json> [--json]")
    from repro.obs import analysis

    trace = _load_trace(args.target)
    code = 3 if trace.dropped else 0
    if getattr(args, "json", False):
        doc = {
            "source": args.target,
            "spans": len(trace.spans),
            "dropped": trace.dropped,
            "truncated": bool(trace.dropped),
        }
        if trace.spans:
            attribution = analysis.attribute(trace)
            doc.update(
                total_ns=attribution.total_ns,
                attributed_ns=attribution.attributed_ns,
                coverage=attribution.coverage,
                by_subsystem=attribution.by_subsystem,
                operations=[
                    {
                        "name": op.name,
                        "count": op.count,
                        "total_ns": op.total_ns,
                        "by_subsystem": op.by_subsystem,
                        "critical_path": [[n, ns] for n, ns in op.critical_path],
                    }
                    for op in attribution.operations
                ],
            )
        return json.dumps(doc, sort_keys=True, indent=2), code
    if not trace.spans:
        return f"{args.target}: no spans recorded", code
    warning = _dropped_warning(trace, args.target) if trace.dropped else ""
    return warning + analysis.render_report(
        analysis.attribute(trace), source=args.target
    ), code


def _chaos(args):
    """Seeded fault-injection run: lossy channels + enclave crash.

    Returns ``(text, exit_code)``: exit 2 when the run ended with
    unreclaimed crash state (segids still registered to a dead owner, or
    a run that never quiesced) — the incident bundle path is in the
    report text.
    """
    from repro.faults.chaos import run_chaos

    report = run_chaos(seed=args.seed, plan_spec=args.plan,
                       cokernels=args.cokernels, ops=args.ops,
                       flightrec_dir=args.bundle_dir,
                       overload_spec=args.overload)
    return "\n".join(report.lines()), 0 if report.reclaimed else 2


def _render_profile(engine_obs) -> str:
    """Format the wallclock hot-path profile (``--profile``)."""
    rows = [
        (site, calls, f"{secs:.3f}", f"{eps:,.0f}" if secs > 0 else "-")
        for site, calls, secs, eps in engine_obs.hot_sites(top=15)
    ]
    if not rows:
        return "profile: no callback sites recorded"
    return render_table(
        ["callback site", "events", "host s", "events/s"],
        rows,
        title=f"hot path ({engine_obs.events_executed} events executed):",
    )


COMMANDS = {
    "explain": _explain,
    "fig5": _fig5,
    "fig6": _fig6,
    "table2": _table2,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "ablations": _ablations,
}


def main(argv=None) -> int:
    """Parse arguments and run the requested figure command(s)."""
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["lint"]:
        # The linter owns its argument surface (docs/LINT.md); hand the
        # rest of the command line straight to it.
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv[:1] == ["serve-report"]:
        # Same delegation pattern: the serving-telemetry pipeline owns
        # its argument surface (docs/OBSERVABILITY.md).
        from repro.obs.serve_cli import main as serve_main

        return serve_main(argv[1:])
    if argv[:1] == ["soak"]:
        # Overload soak: ramped open-loop load through saturation,
        # protected vs baseline (docs/OVERLOAD.md). Exits 4 on an SLO
        # breach, printing the incident-bundle path.
        from repro.workloads.soak import main as soak_main

        return soak_main(argv[1:])
    if argv[:1] == ["diagnose"]:
        # Incident-bundle renderer (docs/OBSERVABILITY.md).
        from repro.obs.flightrec import main as diagnose_main

        return diagnose_main(argv[1:])
    if argv[:1] == ["perf-diff"]:
        # Differential regression attribution between two captures.
        from repro.obs.diff import main as diff_main

        return diff_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the XEMEM paper's evaluation figures.",
    )
    parser.add_argument("command",
                        choices=sorted(COMMANDS) + ["all", "chaos", "inspect",
                                                    "list", "report"])
    parser.add_argument("target", nargs="?",
                        help="trace file for the 'inspect'/'report' commands")
    parser.add_argument("--attribute", action="store_true",
                        help="inspect: add the per-subsystem cost attribution")
    parser.add_argument("--json", action="store_true",
                        help="report: machine-readable JSON instead of tables")
    parser.add_argument("--reps", type=int, default=5,
                        help="attachments per measurement (paper: 500)")
    parser.add_argument("--runs", type=int, default=3,
                        help="seeded runs per fig8/fig9 cell (paper: 10/5)")
    parser.add_argument("--seconds", type=int, default=10,
                        help="fig7 measurement window")
    parser.add_argument("--seed", type=int, default=0,
                        help="chaos: fault-plan RNG seed")
    parser.add_argument("--plan", metavar="SPEC",
                        help="chaos: fault plan spec (see docs/FAULTS.md)")
    parser.add_argument("--cokernels", type=int, default=3,
                        help="chaos: number of Kitten co-kernels")
    parser.add_argument("--ops", type=int, default=25,
                        help="chaos: attach/detach rounds per client")
    parser.add_argument("--overload", metavar="SPEC",
                        help="chaos: arm admission-control/backpressure "
                             "overload protection (see docs/OVERLOAD.md)")
    parser.add_argument("--bundle-dir", metavar="DIR", default="incident-chaos",
                        help="chaos: where an incident bundle is written when "
                             "the run crashed an enclave or left unreclaimed "
                             "state (default: %(default)s)")
    parser.add_argument("--trace", metavar="PATH",
                        help="record spans and write a Chrome/Perfetto trace")
    parser.add_argument("--trace-format", choices=("chrome", "jsonl"),
                        default="chrome",
                        help="trace export format (default: chrome)")
    parser.add_argument("--metrics", action="store_true",
                        help="print a metrics snapshot after the figures")
    parser.add_argument("--metrics-out", metavar="PATH",
                        help="write the metrics snapshot to PATH as JSON")
    parser.add_argument("--profile", action="store_true",
                        help="print the host-wallclock hot-path profile")
    parser.add_argument("--flightrec", action="store_true",
                        help="arm the flight-recorder black box; an incident "
                             "bundle is dumped on unhandled exceptions")
    parser.add_argument("--flightrec-dump", metavar="DIR",
                        help="arm the black box and always dump an incident "
                             "bundle to DIR when the run ends")
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in sorted(COMMANDS):
            print(name, "-", COMMANDS[name].__doc__ or "")
        return 0
    if args.command == "inspect":
        print(_inspect(args))
        return 0
    if args.command == "report":
        text, code = _report(args)
        print(text)
        return code
    if args.command == "chaos":
        text, code = _chaos(args)
        print(text)
        return code

    want_metrics = args.metrics or bool(args.metrics_out)
    want_flightrec = args.flightrec or bool(args.flightrec_dump)
    # The engine hook serves --trace/--metrics/--profile; the black box
    # deliberately flies without one (its zero-overhead contract).
    want_engine = bool(args.trace) or want_metrics or args.profile
    want_obs = want_engine or want_flightrec
    names = sorted(COMMANDS) if args.command == "all" else [args.command]

    # Fail fast on unwritable export paths, not after the whole run.
    for path in (args.trace, args.metrics_out):
        if path:
            try:
                open(path, "w").close()
            except OSError as exc:
                raise SystemExit(f"cannot write {path}: {exc.strerror}")

    with obs.observing(
        trace=bool(args.trace) or want_flightrec,
        metrics=want_metrics or want_flightrec,
        engine=want_engine,
        profile=args.profile,
        # Black-box-only runs fly with a bounded span tail; an explicit
        # --trace keeps its capless buffer.
        max_trace_events=None if args.trace else (512 if want_flightrec
                                                  else None),
        flightrec=want_flightrec,
    ) if want_obs else _null_obs() as ctx:
        try:
            for name in names:
                t0 = time.time()  # repro: noqa[REP001] reason=CLI progress display only; never enters simulation state or exports
                print(COMMANDS[name](args))
                print(f"[{name} regenerated in {time.time() - t0:.1f}s wall]\n")  # repro: noqa[REP001] reason=CLI progress display only; never enters simulation state or exports
        except Exception as exc:
            if want_flightrec:
                path = _dump_flightrec(
                    ctx, args.flightrec_dump or "incident-crash",
                    args.command, "unhandled.exception",
                    error=type(exc).__name__,
                )
                print(f"[incident bundle: {path}]", file=sys.stderr)
            raise

        if args.trace:
            with open(args.trace, "w") as fp:
                if args.trace_format == "jsonl":
                    ctx.tracer.to_jsonl(fp)
                else:
                    ctx.tracer.to_chrome(fp)
            print(f"[trace: {len(ctx.tracer)} spans -> {args.trace}"
                  + (f", {ctx.tracer.dropped} dropped]" if ctx.tracer.dropped
                     else "]"))
        if want_metrics:
            snap = ctx.snapshot()
            text = json.dumps(snap, sort_keys=True, indent=2)
            if args.metrics_out:
                with open(args.metrics_out, "w") as fp:
                    fp.write(text + "\n")
                print(f"[metrics: {len(snap)} series -> {args.metrics_out}]")
            if args.metrics:
                print(f"== metrics ({len(snap)} series) ==")
                print(text)
        if args.profile and ctx.engine_obs is not None:
            print(_render_profile(ctx.engine_obs))
        if args.flightrec_dump:
            path = _dump_flightrec(ctx, args.flightrec_dump, args.command,
                                   "manual.dump")
            print(f"[incident bundle: {path}]")
    return 0


def _dump_flightrec(ctx, out_dir: str, command: str, fallback_kind: str,
                    **detail) -> str:
    """Freeze the armed black box into an incident bundle at ``out_dir``.

    A trigger the run already recorded (enclave crash, audit violation)
    wins; otherwise one is synthesized at the recorder's last-known
    virtual time so the bundle stays deterministic.
    """
    from repro.obs import flightrec as flightrec_mod

    recorder = ctx.flightrec
    trigger = recorder.last_trigger
    if trigger is None:
        now = recorder.engine.now if recorder.engine is not None else 0
        trigger = recorder.trigger(fallback_kind, now, **detail)
    return flightrec_mod.write_bundle(
        out_dir, trigger, recorder=recorder, config={"command": command}
    )


class _null_obs:
    """Flags-off path: no ObsContext is installed at all."""

    def __enter__(self):
        return obs.get()

    def __exit__(self, *exc):
        return False


if __name__ == "__main__":
    sys.exit(main())
