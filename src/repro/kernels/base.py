"""Common kernel machinery: processes, frame accounting, mapping services.

Every service that consumes simulated time is a *generator* meant to run
inside a simulation process (``yield from kernel.walk_for_export(...)``).
Pure bookkeeping (region lists, translations for tests) is plain methods.

The paper's §3.4 requires each enclave OS to perform memory-mapping
operations *locally* with its own techniques; accordingly the two
concrete kernels override :meth:`walk_for_export`,
:meth:`map_remote_pfns`, and the local-attach path, while the shared
export/teardown plumbing lives here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.hw.costs import CostModel
from repro.hw.memory import FrameAllocator, PhysicalMemory, ranges_to_pfns, pfns_to_ranges
from repro.hw.topology import Core, NodeHardware
from repro.kernels.addrspace import Region, RegionKind
from repro.kernels.pagetable import (
    PAGE_SIZE,
    PTE_PINNED,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
    PageFault,
)
from repro.kernels.process import OSProcess
from repro.sim.engine import Engine


class KernelError(RuntimeError):
    """Kernel-level misuse (bad process, bad region, foreign frames)."""


class KernelBase:
    """One enclave's operating system."""

    kernel_type = "base"

    def __init__(
        self,
        engine: Engine,
        node: NodeHardware,
        cores: List[Core],
        allocator: FrameAllocator,
        name: str = "",
    ):
        if not cores:
            raise KernelError("kernel needs at least one core")
        self.engine = engine
        self.node = node
        self.cores = cores
        self.allocator = allocator
        self.name = name or f"{self.kernel_type}-{cores[0].core_id}"
        self.costs: CostModel = node.costs
        self.mem: PhysicalMemory = node.memory
        self.processes: Dict[int, OSProcess] = {}
        self._next_pid = 1
        #: The core kernel service handlers run on (XEMEM request serving).
        self.service_core: Core = cores[0]
        #: Noise sources per core id (analytic; see repro.kernels.noise).
        self.noise_sources: Dict[int, list] = {}
        #: Back-reference set by repro.enclave.Enclave at wrap time.
        self.enclave = None
        for core in cores:
            core.owner = self

    def enclave_module(self):
        """The XEMEM module of this kernel's enclave (user-API entry)."""
        if self.enclave is None or self.enclave.module is None:
            raise KernelError(
                f"kernel {self.name!r} has no enclave XEMEM module installed"
            )
        return self.enclave.module

    # -- processes -----------------------------------------------------------------

    def create_process(self, name: str = "", core_id: Optional[int] = None) -> OSProcess:
        """Create a process pinned to ``core_id`` (kernel's first core by default)."""
        if core_id is None:
            core_id = self.cores[0].core_id
        if core_id not in [c.core_id for c in self.cores]:
            raise KernelError(
                f"core {core_id} does not belong to kernel {self.name!r}"
            )
        proc = OSProcess(self, self._next_pid, name=name, core_id=core_id)
        self.processes[proc.pid] = proc
        self._next_pid += 1
        self._on_process_created(proc)
        return proc

    def _on_process_created(self, proc: OSProcess) -> None:
        """Kernel-specific address-space setup (Kitten maps statically)."""

    def _own_process(self, proc: OSProcess) -> None:
        if proc.kernel is not self or proc.pid not in self.processes:
            raise KernelError(f"process {proc!r} not owned by kernel {self.name!r}")

    def destroy_process(self, proc: OSProcess) -> None:
        """Tear a process down: unmap everything, free the frames it owns.

        Frames outside this kernel's partition (cross-enclave attachment
        mappings) are unmapped but NOT freed — they belong to their
        exporting enclave.
        """
        self._own_process(proc)
        for region in list(proc.aspace.regions):
            pfns = proc.aspace.unmap_populated_pages(region)
            if len(pfns):
                own = pfns[self.owns_pfn_mask(pfns)]
                if len(own):
                    self.free_pfns(own)
        proc.exit()
        del self.processes[proc.pid]

    # -- frame accounting -------------------------------------------------------------

    def alloc_pfns(self, npages: int, scattered: bool = False,
                   max_run: Optional[int] = None) -> np.ndarray:
        """Allocate ``npages`` frames from this enclave's partition."""
        if scattered:
            ranges = self.allocator.alloc_scattered(npages)
        else:
            ranges = self.allocator.alloc_pages(npages, max_run=max_run)
        return ranges_to_pfns(ranges)

    def free_pfns(self, pfns: np.ndarray) -> None:
        """Return frames to the partition (order-insensitive, coalescing)."""
        self.allocator.free_run_list(
            pfns_to_ranges(np.sort(np.asarray(pfns, dtype=np.int64)))
        )

    def owns_pfn(self, pfn: int) -> bool:
        """True when ``pfn`` lies inside this enclave's memory partition."""
        return (
            self.allocator.start_pfn
            <= pfn
            < self.allocator.start_pfn + self.allocator.nframes
        )

    def owns_pfn_mask(self, pfns: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`owns_pfn`: boolean per frame of ``pfns``."""
        pfns = np.asarray(pfns, dtype=np.int64)
        start = self.allocator.start_pfn
        return (pfns >= start) & (pfns < start + self.allocator.nframes)

    # -- XEMEM mapping services (paper §4.3) ----------------------------------------

    def walk_for_export(self, proc: OSProcess, vaddr: int, npages: int,
                        core: Optional[Core] = None):
        """Generator: walk the process's page table, return the PFN list.

        Occupies the serving core for the whole walk — this is the source
        of the Fig. 7 attachment detours on Kitten.
        """
        self._own_process(proc)
        core = core or self.service_core
        walk_ns = npages * self.costs.walk_per_page_ns
        o = obs.get()
        with o.span("kernel.pagetable.walk", self.engine, track=self.name,
                    npages=npages, core=core.core_id):
            yield from core.occupy(walk_ns, f"xemem-walk:{npages}p")
        o.counter(f"{self.kernel_type}.pagetable.walks").inc()
        o.counter(f"{self.kernel_type}.pagetable.pages_walked").inc(npages)
        return proc.aspace.table.translate_range(vaddr, npages)

    def map_remote_pfns(self, proc: OSProcess, pfns: np.ndarray, name: str = "xemem-att",
                        core: Optional[Core] = None,
                        extra_per_page_ns: int = 0,
                        writable: bool = True):
        """Generator: map a remote PFN list into the process (EAGER).

        Returns the (Region, vaddr). ``writable=False`` installs PTEs
        without PTE_WRITABLE (read-only grants). Subclasses refine
        placement and cost.
        """
        self._own_process(proc)
        region, vaddr = self._place_attachment(proc, len(pfns), name)
        region.pte_flags = PTE_PRESENT | PTE_USER | (PTE_WRITABLE if writable else 0)
        core = core or self.service_core
        install_ns = len(pfns) * (self.costs.map_install_per_page_ns + extra_per_page_ns)
        o = obs.get()
        with o.span("kernel.map_remote", self.engine, track=self.name,
                    npages=len(pfns), core=core.core_id):
            yield from core.occupy(install_ns, f"xemem-map:{len(pfns)}p")
        o.counter(f"{self.kernel_type}.map.pages_installed").inc(len(pfns))
        proc.aspace.map_region_pfns(region, pfns)
        return region

    def _place_attachment(self, proc: OSProcess, npages: int, name: str) -> Tuple[Region, int]:
        vaddr = proc.aspace.find_free(npages)
        region = proc.aspace.add_region(vaddr, npages, RegionKind.EAGER, name)
        return region, vaddr

    def unmap_attachment(self, proc: OSProcess, region: Region):
        """Generator: tear an attachment down; returns PFNs it mapped."""
        self._own_process(proc)
        populated = region.populated
        cost = self.costs.detach_fixed_ns + populated * self.costs.unmap_per_page_ns
        yield self.engine.sleep(cost)
        if region.populated == region.npages:
            return proc.aspace.unmap_region(region)
        return proc.aspace.unmap_populated_pages(region)

    # -- paging --------------------------------------------------------------------

    def touch_pages(self, proc: OSProcess, vaddr: int, npages: int, write: bool = False):
        """Generator: the application touches each page once.

        The base kernel assumes everything is mapped (Kitten semantics);
        Linux overrides to service demand-paging faults.
        """
        self._own_process(proc)
        yield self.engine.sleep(npages * self.costs.page_touch_ns)
        if write and not proc.aspace.table.range_flags_all(vaddr, npages, PTE_WRITABLE):
            first = proc.aspace.table.first_missing_flag(vaddr, npages, PTE_WRITABLE)
            raise PageFault(vaddr + first * PAGE_SIZE, write=True)
        proc.aspace.table.translate_range(vaddr, npages)
        return npages

    # -- pinning -------------------------------------------------------------------

    def pin_pages(self, proc: OSProcess, vaddr: int, npages: int):
        """Generator: ensure present + pinned (no-op cost on LWKs)."""
        self._own_process(proc)
        proc.aspace.table.set_flags_range(vaddr, npages, set_mask=PTE_PINNED)
        return proc.aspace.table.translate_range(vaddr, npages)
        yield  # pragma: no cover - makes this a generator

    # -- noise --------------------------------------------------------------------

    def stolen_ns(self, core_id: int, t0: int, t1: int) -> int:
        """Total time stolen from the app on ``core_id`` during [t0, t1).

        Sums the analytic noise sources and the actually-simulated steal
        log (IRQ handlers, XEMEM service) — the two sets are disjoint.
        """
        total = sum(
            src.stolen_in(t0, t1) for src in self.noise_sources.get(core_id, [])
        )
        core = self.node.core(core_id)
        return total + core.stolen_between(t0, t1)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, cores="
            f"{[c.core_id for c in self.cores]}, "
            f"frames={self.allocator.nframes})"
        )
