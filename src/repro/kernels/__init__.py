"""Enclave operating systems: page tables, address spaces, Linux, Kitten.

Each enclave runs one kernel model. Kernels own a slice of the node's
cores and one NUMA zone's frames (Pisces hands these out), manage real
4-level page tables for their processes, and expose the memory-mapping
services the XEMEM module needs (paper §4.3):

* page-table walks that generate PFN lists for exported segments, and
* mapping routines that install remote PFN lists into local processes.

The two concrete kernels differ exactly where the paper says they do:
Linux pins with ``get_user_pages``, maps with ``vm_mmap`` +
``remap_pfn_range``, demand-pages *local* attachments (the Fig. 8(b)
recurring-attach penalty) and has a fullweight noise profile; Kitten maps
every region statically at process creation, shares local memory via
SMARTMAP, needed a *dynamic heap expansion* extension to host remote
mappings, and is almost noise-free.
"""

from repro.kernels.pagetable import (
    PageTable,
    PageFault,
    PTE_PRESENT,
    PTE_WRITABLE,
    PTE_USER,
    PTE_PINNED,
)
from repro.kernels.addrspace import AddressSpace, Region, RegionKind
from repro.kernels.process import OSProcess
from repro.kernels.base import KernelBase
from repro.kernels.linux import LinuxKernel
from repro.kernels.kitten import KittenKernel
from repro.kernels.noise import NoiseSource, PeriodicNoise, attach_noise_profile

__all__ = [
    "PageTable",
    "PageFault",
    "PTE_PRESENT",
    "PTE_WRITABLE",
    "PTE_USER",
    "PTE_PINNED",
    "AddressSpace",
    "Region",
    "RegionKind",
    "OSProcess",
    "KernelBase",
    "LinuxKernel",
    "KittenKernel",
    "NoiseSource",
    "PeriodicNoise",
    "attach_noise_profile",
]
