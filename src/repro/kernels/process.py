"""The OS process model shared by all kernels."""

from __future__ import annotations

import enum
from typing import Optional

from repro.kernels.addrspace import AddressSpace


class ProcState(enum.Enum):
    """Lifecycle states of an OS process."""
    READY = "ready"
    RUNNING = "running"
    EXITED = "exited"


class OSProcess:
    """A user process inside one enclave kernel.

    Carries the address space, the core the process is pinned to (the
    paper pins everything, §5.1/§7.1), and the owning kernel — which is
    how XEMEM finds the memory-mapping routines for a segment's pages.
    """

    def __init__(self, kernel: "object", pid: int, name: str = "",
                 core_id: Optional[int] = None):
        self.kernel = kernel
        self.pid = pid
        self.name = name or f"pid{pid}"
        self.core_id = core_id
        self.aspace = AddressSpace()
        self.state = ProcState.READY

    def exit(self) -> None:
        """Mark the process exited (bookkeeping only)."""
        self.state = ProcState.EXITED

    def __repr__(self) -> str:
        return (
            f"OSProcess({self.name}, pid={self.pid}, core={self.core_id}, "
            f"{self.state.value})"
        )
