"""The Linux fullweight-kernel model.

Implements the paper's §4.3 Linux memory-mapping routines:

* ``get_user_pages`` — fault in (if needed) and pin an exporting process's
  pages so they cannot be reclaimed while a remote enclave maps them, then
  walk the page table to build the PFN list.
* ``vm_mmap`` + ``remap_pfn_range`` — carve a fresh VMA and eagerly
  install a remote enclave's PFN list into it.

It also implements the *local* (single-OS) XEMEM attachment path the
paper's Fig. 8(b) analysis depends on: local attachments create a LAZY
VMA over the exporter's frames and populate it one page fault at a time,
so a recurring-attachment workload pays
``linux_page_fault_ns × pages_touched`` at every communication interval.

Map updates contend on a kernel-global lock (the paper's §5.3 points at
"contention for Linux data structures that are accessed when multiple
processes concurrently update memory maps").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import obs
from repro.hw.topology import Core
from repro.kernels.addrspace import Region, RegionKind
from repro.kernels.base import KernelBase, KernelError
from repro.kernels.pagetable import (
    PAGE_SIZE,
    PageFault,
    PTE_PINNED,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
)
from repro.sim.fastpath import FASTPATH
from repro.kernels.process import OSProcess
from repro.sim.resources import Mutex


class LinuxKernel(KernelBase):
    """The fullweight Linux enclave kernel (see module docstring)."""
    kernel_type = "linux"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Global memory-map update lock (mmap_sem-ish; source of the
        #: multi-process map-update contention the paper mentions).
        self.map_lock = Mutex(self.engine, name=f"{self.name}.map_lock")
        self.fault_count = 0
        self.gup_pinned_pages = 0

    # -- anonymous memory -------------------------------------------------------------

    def mmap_anonymous(self, proc: OSProcess, nbytes: int, name: str = "anon"):
        """Generator: create a demand-paged anonymous VMA (malloc backing)."""
        self._own_process(proc)
        npages = -(-nbytes // PAGE_SIZE)
        yield self.engine.sleep(self.costs.vm_mmap_fixed_ns)
        vaddr = proc.aspace.find_free(npages)
        region = proc.aspace.add_region(vaddr, npages, RegionKind.LAZY, name)
        return region

    def handle_fault(self, proc: OSProcess, vaddr: int, core: Optional[Core] = None):
        """Generator: demand-paging fault service for one page."""
        self._own_process(proc)
        region = proc.aspace.find_region(vaddr)
        if region is None:
            raise PageFault(vaddr)
        if region.kind is not RegionKind.LAZY:
            raise KernelError(f"fault in non-LAZY region {region.name!r} at {vaddr:#x}")
        page_va = vaddr & ~(PAGE_SIZE - 1)
        try:
            proc.aspace.table.translate(page_va)
        except PageFault:
            pass
        else:
            # The page is present, so the faulting access violated its
            # protection (a store through a read-only attachment) — there
            # is nothing to populate.
            raise PageFault(vaddr, write=True)
        core = core or self.node.core(proc.core_id)
        yield from core.occupy(self.costs.linux_page_fault_ns, "pgfault")
        page = region.page_index(vaddr)
        if region.backing_pfns is not None:
            pfn = int(region.backing_pfns[page])
        else:
            pfn = int(self.alloc_pfns(1)[0])
        proc.aspace.populate_page(region, vaddr & ~(PAGE_SIZE - 1), pfn)
        self.fault_count += 1
        obs.get().counter("linux.pagefault.count").inc()
        return pfn

    def _bulk_fault(self, proc: OSProcess, region: Region, core: Optional[Core] = None):
        """Generator: fault a whole untouched LAZY region in at once.

        Semantically identical to ``region.npages`` single faults (same
        total cost, same final page table), but vectorized so large
        regions stay simulable.
        """
        if region.populated != 0:
            raise KernelError(f"bulk fault on partially populated {region.name!r}")
        core = core or self.node.core(proc.core_id)
        yield from core.occupy(
            region.npages * self.costs.linux_page_fault_ns, "pgfault-bulk"
        )
        if region.backing_pfns is not None:
            pfns = region.backing_pfns
        else:
            pfns = self.alloc_pfns(region.npages)
        proc.aspace.map_region_pfns(region, pfns)
        self.fault_count += region.npages
        obs.get().counter("linux.pagefault.count").inc(region.npages)
        return region.npages

    def touch_pages(self, proc: OSProcess, vaddr: int, npages: int, write: bool = False):
        """Generator: touch pages, servicing demand-paging faults as hit.

        Fast paths: a fully populated range costs one vectorized check; a
        completely unpopulated LAZY region spanning the range bulk-faults.
        """
        self._own_process(proc)
        region = proc.aspace.find_region(vaddr)
        faults = 0
        table = proc.aspace.table
        if (
            region is not None
            and region.kind is RegionKind.LAZY
            and region.populated == 0
            and region.start == vaddr
            and npages == region.npages
        ):
            faults = yield from self._bulk_fault(proc, region)
        elif region is not None and region.populated == region.npages and region.contains(
            vaddr + (npages - 1) * PAGE_SIZE
        ):
            # Fully populated: no demand faults possible, but a write
            # through pages mapped read-only still protection-faults.
            if write and not table.range_flags_all(vaddr, npages, PTE_WRITABLE):
                first = table.first_missing_flag(vaddr, npages, PTE_WRITABLE)
                raise PageFault(vaddr + first * PAGE_SIZE, write=True)
        elif self._batch_faultable(table, region, vaddr, npages, write):
            missing = np.flatnonzero(~table.present_mask(vaddr, npages))
            if len(missing):
                yield from self._fault_missing(proc, region, vaddr, missing)
                faults = len(missing)
        else:
            for i in range(npages):
                va = vaddr + i * PAGE_SIZE
                try:
                    table.translate(va, write=write)
                except PageFault:
                    # handle_fault populates a missing page, or re-raises
                    # as a protection fault if the page was present and
                    # the access violated its permissions.
                    yield from self.handle_fault(proc, va)
                    faults += 1
        yield self.engine.sleep(npages * self.costs.page_touch_ns)
        proc.aspace.table.translate_range(vaddr, npages)
        return faults

    def _batch_faultable(self, table, region: Optional[Region], vaddr: int,
                         npages: int, write: bool) -> bool:
        """True when the vectorized partial-population path is safe here.

        A write touch must protection-fault at the first *present*
        read-only page exactly as the per-page loop would, so batching is
        only taken when every present page in the range is writable.
        """
        if not FASTPATH.fault_vectorize or npages <= 0:
            return False
        if region is None or region.kind is not RegionKind.LAZY:
            return False
        if not region.contains(vaddr) or not region.contains(
            vaddr + (npages - 1) * PAGE_SIZE
        ):
            return False
        if write:
            present = table.present_mask(vaddr, npages)
            writable = table.flag_mask(vaddr, npages, PTE_WRITABLE)
            if not (present == writable).all():
                return False
        return True

    def _fault_missing(self, proc: OSProcess, region: Region, vaddr: int,
                       missing: np.ndarray):
        """Generator: service a batch of demand faults in one pass.

        Semantically identical to ``len(missing)`` sequential
        :meth:`handle_fault` calls on an uncontended core: the steal-log
        intervals are contiguous with the same tag (so any windowed noise
        query sums identically), the first-fit allocator hands out the
        same frames in the same order, and the fault counters advance by
        the same total.
        """
        n = len(missing)
        core = self.node.core(proc.core_id)
        yield from core.occupy(n * self.costs.linux_page_fault_ns, "pgfault")
        page0 = region.page_index(vaddr)
        idx = page0 + np.asarray(missing, dtype=np.int64)
        if region.backing_pfns is not None:
            pfns = region.backing_pfns[idx]
        else:
            pfns = self.alloc_pfns(n)
        proc.aspace.populate_pages(region, idx, pfns)
        self.fault_count += n
        obs.get().counter("linux.pagefault.count").inc(n)
        return n

    # -- export side: get_user_pages + walk ----------------------------------------------

    def pin_pages(self, proc: OSProcess, vaddr: int, npages: int):
        """Generator: ``get_user_pages`` — populate and pin, return PFNs.

        The paper's footnote 1: pages are usually already allocated; the
        point is pinning them against reclaim.
        """
        self._own_process(proc)
        table = proc.aspace.table
        region = proc.aspace.find_region(vaddr)
        # Fault in any holes first (lazy VMAs may be partially populated).
        if (
            region is not None
            and region.kind is RegionKind.LAZY
            and region.populated == 0
            and region.start == vaddr
            and npages == region.npages
        ):
            yield from self._bulk_fault(proc, region)
        elif region is None or region.populated != region.npages:
            if self._batch_faultable(table, region, vaddr, npages, write=False):
                missing = np.flatnonzero(~table.present_mask(vaddr, npages))
                if len(missing):
                    yield from self._fault_missing(proc, region, vaddr, missing)
            else:
                for i in range(npages):
                    va = vaddr + i * PAGE_SIZE
                    try:
                        table.translate(va)
                    except PageFault:
                        yield from self.handle_fault(proc, va)
        yield self.engine.sleep(npages * self.costs.linux_gup_pin_per_page_ns)
        table.set_flags_range(vaddr, npages, set_mask=PTE_PINNED)
        self.gup_pinned_pages += npages
        obs.get().counter("linux.gup.pages").inc(npages)
        return table.translate_range(vaddr, npages)

    def walk_for_export(self, proc: OSProcess, vaddr: int, npages: int,
                        core: Optional[Core] = None):
        """Generator: Linux export path = get_user_pages, then the walk."""
        yield from self.pin_pages(proc, vaddr, npages)
        return (yield from super().walk_for_export(proc, vaddr, npages, core=core))

    # -- attach side: vm_mmap + remap_pfn_range --------------------------------------------

    def map_remote_pfns(self, proc: OSProcess, pfns: np.ndarray, name: str = "xemem-att",
                        core: Optional[Core] = None,
                        extra_per_page_ns: int = 0,
                        writable: bool = True):
        """Generator: map a remote PFN list eagerly (the cross-enclave path).

        vm_mmap carves the VMA under the global map lock (the shared
        kernel structures); remap_pfn_range then installs the PTEs under
        the *process's own* mmap_sem — concurrent attachers in different
        processes do not serialize their installs, matching Linux.
        """
        self._own_process(proc)
        o = obs.get()
        with o.span("linux.map_remote", self.engine, track=self.name,
                    npages=len(pfns)):
            yield self.map_lock.acquire()
            try:
                yield self.engine.sleep(self.costs.vm_mmap_fixed_ns)
                region, _vaddr = self._place_attachment(proc, len(pfns), name)
                region.pte_flags = PTE_PRESENT | PTE_USER | (
                    PTE_WRITABLE if writable else 0
                )
            finally:
                self.map_lock.release()
            core = core or self.service_core
            install_ns = len(pfns) * (
                self.costs.map_install_per_page_ns + extra_per_page_ns
            )
            yield from core.occupy(install_ns, f"remap_pfn_range:{len(pfns)}p")
        o.counter("linux.map.pages_installed").inc(len(pfns))
        proc.aspace.map_region_pfns(region, pfns)
        return region

    def munmap(self, proc: OSProcess, region: Region):
        """Generator: tear down an anonymous VMA and free its frames."""
        self._own_process(proc)
        if region.backing_pfns is not None:
            raise KernelError(
                f"munmap of borrowed-frame region {region.name!r}; detach instead"
            )
        yield self.engine.sleep(
            self.costs.vm_mmap_fixed_ns
            + region.populated * self.costs.unmap_per_page_ns
        )
        if region.populated == region.npages:
            pfns = proc.aspace.unmap_region(region)
        else:
            pfns = proc.aspace.unmap_populated_pages(region)
        if len(pfns):
            self.free_pfns(pfns)
        return len(pfns)

    def attach_local_lazy(self, proc: OSProcess, pfns: np.ndarray,
                          name: str = "xemem-local", writable: bool = True):
        """Generator: single-OS XEMEM attachment — a LAZY VMA over the
        exporter's frames. Cheap now, pays one fault per page on touch
        (the Fig. 8(b) mechanism)."""
        self._own_process(proc)
        yield self.engine.sleep(self.costs.vm_mmap_fixed_ns)
        vaddr = proc.aspace.find_free(len(pfns))
        region = proc.aspace.add_region(vaddr, len(pfns), RegionKind.LAZY, name)
        region.pte_flags = PTE_PRESENT | PTE_USER | (PTE_WRITABLE if writable else 0)
        region.backing_pfns = np.asarray(pfns, dtype=np.int64)
        return region
