"""Real 4-level x86-64 page tables.

The radix structure mirrors hardware: PML4 → PDPT → PD → PT, nine index
bits per level, 4 KiB leaves. Upper levels are dicts (sparse); leaf page
tables are 512-entry numpy int64 arrays of packed PTEs, which lets
``map_range``/``translate_range`` move whole leaf tables per numpy
operation — a 1 GiB mapping is 512 slice assignments, not 262 144 Python
iterations.

A packed PTE is ``(pfn << 12) | flags``. The PINNED flag is software-only
(``get_user_pages`` semantics); everything else matches hardware bits in
spirit, not in exact bit position.

SMARTMAP's trick — sharing another process's entire address space by
aliasing a top-level PML4 slot — is :meth:`PageTable.share_pml4_slot`,
used by Kitten for *local* shared memory (paper §2, §4.3).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
ENTRIES = 512
LEVELS = 4

#: Bytes of virtual address space one PML4 slot covers (512 GiB).
PML4_SLOT_SPAN = 1 << 39

PTE_PRESENT = 0x001
PTE_WRITABLE = 0x002
PTE_USER = 0x004
PTE_ACCESSED = 0x008
PTE_DIRTY = 0x010
PTE_PINNED = 0x020  # software: get_user_pages pin

FLAG_MASK = (1 << PAGE_SHIFT) - 1

#: Highest canonical user address we hand out (47-bit user half).
USER_VA_LIMIT = 1 << 47


class PageFault(Exception):
    """Translation failed: no present PTE for the address."""

    def __init__(self, vaddr: int, write: bool = False):
        super().__init__(f"page fault at {vaddr:#x} ({'write' if write else 'read'})")
        self.vaddr = vaddr
        self.write = write


def pack_pte(pfn: int, flags: int) -> int:
    """Pack (pfn, flags) into one 64-bit PTE value."""
    if pfn < 0:
        raise ValueError(f"negative pfn {pfn}")
    if flags & ~FLAG_MASK:
        raise ValueError(f"flags {flags:#x} overflow the flag field")
    return (pfn << PAGE_SHIFT) | flags


def pte_pfn(pte: int) -> int:
    """The frame number a packed PTE maps."""
    return pte >> PAGE_SHIFT


def pte_flags(pte: int) -> int:
    """The flag bits of a packed PTE."""
    return pte & FLAG_MASK


def _split_vaddr(vaddr: int) -> Tuple[int, int, int, int]:
    if vaddr < 0 or vaddr % PAGE_SIZE:
        raise ValueError(f"vaddr {vaddr:#x} not page aligned / non-negative")
    if vaddr >= USER_VA_LIMIT:
        raise ValueError(f"vaddr {vaddr:#x} outside user half")
    return (
        (vaddr >> 39) & 0x1FF,
        (vaddr >> 30) & 0x1FF,
        (vaddr >> 21) & 0x1FF,
        (vaddr >> 12) & 0x1FF,
    )


class PageTable:
    """One process's 4-level translation tree."""

    def __init__(self) -> None:
        # PML4: slot -> PDPT dict; PDPT: slot -> PD dict; PD: slot -> leaf array
        self.pml4: Dict[int, Dict] = {}
        #: PML4 slots borrowed from other processes (SMARTMAP); value is the
        #: donor PageTable. Borrowed slots are read-through, never modified.
        self.shared_slots: Dict[int, "PageTable"] = {}
        self._present = 0

    # -- structure helpers ----------------------------------------------------

    def _leaf(self, i4: int, i3: int, i2: int, create: bool) -> Optional[np.ndarray]:
        if i4 in self.shared_slots:
            if create:
                raise ValueError(f"PML4 slot {i4} is borrowed (SMARTMAP); read-only")
            # SMARTMAP aliases the donor's slot 0 (where Kitten places all
            # process regions) under this slot.
            return self.shared_slots[i4]._leaf_own(0, i3, i2)
        return self._leaf_own(i4, i3, i2) if not create else self._leaf_create(i4, i3, i2)

    def _leaf_own(self, i4: int, i3: int, i2: int) -> Optional[np.ndarray]:
        pdpt = self.pml4.get(i4)
        if pdpt is None:
            return None
        pd = pdpt.get(i3)
        if pd is None:
            return None
        return pd.get(i2)

    def _leaf_create(self, i4: int, i3: int, i2: int) -> np.ndarray:
        pdpt = self.pml4.setdefault(i4, {})
        pd = pdpt.setdefault(i3, {})
        leaf = pd.get(i2)
        if leaf is None:
            leaf = pd[i2] = np.zeros(ENTRIES, dtype=np.int64)
        return leaf

    # -- single-page operations ------------------------------------------------

    def map_page(self, vaddr: int, pfn: int, flags: int = PTE_PRESENT | PTE_WRITABLE | PTE_USER) -> None:
        """Install one PTE; rejects double-mapping and missing PRESENT."""
        if not flags & PTE_PRESENT:
            raise ValueError("mapping must set PTE_PRESENT")
        i4, i3, i2, i1 = _split_vaddr(vaddr)
        leaf = self._leaf(i4, i3, i2, create=True)
        if leaf[i1] & PTE_PRESENT:
            raise ValueError(f"vaddr {vaddr:#x} already mapped")
        leaf[i1] = pack_pte(pfn, flags)
        self._present += 1

    def unmap_page(self, vaddr: int) -> int:
        """Remove the PTE; returns the PFN it mapped."""
        i4, i3, i2, i1 = _split_vaddr(vaddr)
        if i4 in self.shared_slots:
            raise ValueError(f"PML4 slot {i4} is borrowed (SMARTMAP); read-only")
        leaf = self._leaf(i4, i3, i2, create=False)
        if leaf is None or not leaf[i1] & PTE_PRESENT:
            raise PageFault(vaddr)
        pfn = pte_pfn(int(leaf[i1]))
        leaf[i1] = 0
        self._present -= 1
        return pfn

    def translate(self, vaddr: int, write: bool = False) -> Tuple[int, int]:
        """Return (pfn, flags) for ``vaddr``; raises :class:`PageFault`."""
        page_va = vaddr & ~(PAGE_SIZE - 1)
        i4, i3, i2, i1 = _split_vaddr(page_va)
        leaf = self._leaf(i4, i3, i2, create=False)
        if leaf is None:
            raise PageFault(vaddr, write)
        pte = int(leaf[i1])
        if not pte & PTE_PRESENT:
            raise PageFault(vaddr, write)
        if write and not pte & PTE_WRITABLE:
            raise PageFault(vaddr, write=True)
        return pte_pfn(pte), pte_flags(pte)

    def set_flags(self, vaddr: int, set_mask: int = 0, clear_mask: int = 0) -> None:
        """Adjust flag bits on an existing PTE (e.g. pinning)."""
        if (set_mask | clear_mask) & PTE_PRESENT and clear_mask & PTE_PRESENT:
            raise ValueError("use unmap_page to clear PRESENT")
        i4, i3, i2, i1 = _split_vaddr(vaddr & ~(PAGE_SIZE - 1))
        leaf = self._leaf(i4, i3, i2, create=False)
        if leaf is None or not leaf[i1] & PTE_PRESENT:
            raise PageFault(vaddr)
        leaf[i1] = (int(leaf[i1]) | set_mask) & ~clear_mask

    # -- vectorized range operations --------------------------------------------

    def _iter_leaf_spans(self, vaddr: int, npages: int, create: bool) -> Iterator[Tuple[np.ndarray, int, int, int]]:
        """Yield (leaf, first_index, count, page_offset) per touched leaf table."""
        if npages <= 0:
            raise ValueError(f"bad page count {npages}")
        done = 0
        va = vaddr
        while done < npages:
            i4, i3, i2, i1 = _split_vaddr(va)
            take = min(ENTRIES - i1, npages - done)
            leaf = self._leaf(i4, i3, i2, create=create)
            yield leaf, i1, take, done
            done += take
            va += take * PAGE_SIZE

    def map_range(self, vaddr: int, pfns: np.ndarray, flags: int = PTE_PRESENT | PTE_WRITABLE | PTE_USER) -> None:
        """Install ``len(pfns)`` PTEs starting at ``vaddr`` (vectorized)."""
        if not flags & PTE_PRESENT:
            raise ValueError("mapping must set PTE_PRESENT")
        pfns = np.asarray(pfns, dtype=np.int64)
        if len(pfns) and pfns.min() < 0:
            raise ValueError("negative pfn in range")
        spans = list(self._iter_leaf_spans(vaddr, len(pfns), create=True))
        for leaf, i1, take, off in spans:  # validate first: all-or-nothing
            window = leaf[i1 : i1 + take]
            if (window & PTE_PRESENT).any():
                first = int(np.flatnonzero(window & PTE_PRESENT)[0])
                raise ValueError(
                    f"vaddr {vaddr + (off + first) * PAGE_SIZE:#x} already mapped"
                )
        for leaf, i1, take, off in spans:
            leaf[i1 : i1 + take] = (pfns[off : off + take] << PAGE_SHIFT) | flags
        self._present += len(pfns)

    def unmap_range(self, vaddr: int, npages: int) -> np.ndarray:
        """Remove ``npages`` PTEs; returns the PFNs they mapped."""
        out = np.empty(npages, dtype=np.int64)
        spans = list(self._iter_leaf_spans(vaddr, npages, create=False))
        for leaf, i1, take, off in spans:  # validate first: all-or-nothing
            if leaf is None or not (leaf[i1 : i1 + take] & PTE_PRESENT).all():
                raise PageFault(vaddr + off * PAGE_SIZE)
        for leaf, i1, take, off in spans:
            out[off : off + take] = leaf[i1 : i1 + take] >> PAGE_SHIFT
            leaf[i1 : i1 + take] = 0
        self._present -= npages
        return out

    def translate_range(self, vaddr: int, npages: int) -> np.ndarray:
        """PFNs for ``npages`` starting at ``vaddr`` — the page-table *walk*
        XEMEM uses to build PFN lists. Raises on any hole."""
        from repro import obs

        obs.get().counter("pagetable.translate.pages").inc(npages)
        out = np.empty(npages, dtype=np.int64)
        for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
            if leaf is None:
                raise PageFault(vaddr + off * PAGE_SIZE)
            window = leaf[i1 : i1 + take]
            if not (window & PTE_PRESENT).all():
                hole = int(np.flatnonzero((window & PTE_PRESENT) == 0)[0])
                raise PageFault(vaddr + (off + hole) * PAGE_SIZE)
            out[off : off + take] = window >> PAGE_SHIFT
        return out

    def range_flags_all(self, vaddr: int, npages: int, mask: int) -> bool:
        """True when every PTE in the range has all bits of ``mask`` set."""
        for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
            if leaf is None:
                raise PageFault(vaddr + off * PAGE_SIZE)
            window = leaf[i1 : i1 + take]
            if not (window & PTE_PRESENT).all():
                raise PageFault(vaddr + off * PAGE_SIZE)
            if ((window & mask) == mask).sum() != take:
                return False
        return True

    def set_flags_range(self, vaddr: int, npages: int, set_mask: int = 0, clear_mask: int = 0) -> None:
        """Adjust flag bits across a mapped range (e.g. bulk pinning)."""
        if clear_mask & PTE_PRESENT:
            raise ValueError("use unmap_range to clear PRESENT")
        for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
            if leaf is None or not (leaf[i1 : i1 + take] & PTE_PRESENT).all():
                raise PageFault(vaddr + off * PAGE_SIZE)
            leaf[i1 : i1 + take] = (leaf[i1 : i1 + take] | set_mask) & ~clear_mask

    # -- SMARTMAP -----------------------------------------------------------------

    def share_pml4_slot(self, slot: int, donor: "PageTable") -> None:
        """Alias ``donor``'s whole address space under PML4 ``slot``.

        This is SMARTMAP: translations through ``slot`` read the donor's
        own tree (donor slot 0, where Kitten places all process regions).
        """
        if not 0 <= slot < ENTRIES // 2:
            raise ValueError(f"slot {slot} outside user half")
        if slot in self.pml4 or slot in self.shared_slots:
            raise ValueError(f"PML4 slot {slot} already in use")
        if donor is self:
            raise ValueError("cannot SMARTMAP a table into itself")
        self.shared_slots[slot] = donor

    def unshare_pml4_slot(self, slot: int) -> None:
        """Drop a borrowed SMARTMAP slot."""
        if slot not in self.shared_slots:
            raise ValueError(f"PML4 slot {slot} not shared")
        del self.shared_slots[slot]

    # -- introspection --------------------------------------------------------------

    @property
    def present_pages(self) -> int:
        """Number of present PTEs in this table's own tree."""
        return self._present

    def mapped_vaddrs(self) -> List[int]:
        """All mapped page-aligned vaddrs in this table's own tree (slow; tests)."""
        out = []
        for i4, pdpt in self.pml4.items():
            for i3, pd in pdpt.items():
                for i2, leaf in pd.items():
                    for i1 in np.flatnonzero(leaf & PTE_PRESENT):
                        out.append((i4 << 39) | (i3 << 30) | (i2 << 21) | (int(i1) << 12))
        return sorted(out)
