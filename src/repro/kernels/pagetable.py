"""Real 4-level x86-64 page tables.

The radix structure mirrors hardware: PML4 → PDPT → PD → PT, nine index
bits per level, 4 KiB leaves. Upper levels are dicts (sparse); leaf page
tables are 512-entry numpy int64 arrays of packed PTEs, which lets
``map_range``/``translate_range`` move whole leaf tables per numpy
operation — a 1 GiB mapping is 512 slice assignments, not 262 144 Python
iterations.

A packed PTE is ``(pfn << 12) | flags``. The PINNED flag is software-only
(``get_user_pages`` semantics); everything else matches hardware bits in
spirit, not in exact bit position.

SMARTMAP's trick — sharing another process's entire address space by
aliasing a top-level PML4 slot — is :meth:`PageTable.share_pml4_slot`,
used by Kitten for *local* shared memory (paper §2, §4.3).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.sim.fastpath import FASTPATH

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
ENTRIES = 512
LEVELS = 4

#: Bytes of virtual address space one PML4 slot covers (512 GiB).
PML4_SLOT_SPAN = 1 << 39

PTE_PRESENT = 0x001
PTE_WRITABLE = 0x002
PTE_USER = 0x004
PTE_ACCESSED = 0x008
PTE_DIRTY = 0x010
PTE_PINNED = 0x020  # software: get_user_pages pin

FLAG_MASK = (1 << PAGE_SHIFT) - 1

#: Highest canonical user address we hand out (47-bit user half).
USER_VA_LIMIT = 1 << 47


class PageFault(Exception):
    """Translation failed: no present PTE for the address."""

    def __init__(self, vaddr: int, write: bool = False):
        super().__init__(f"page fault at {vaddr:#x} ({'write' if write else 'read'})")
        self.vaddr = vaddr
        self.write = write


def pack_pte(pfn: int, flags: int) -> int:
    """Pack (pfn, flags) into one 64-bit PTE value."""
    if pfn < 0:
        raise ValueError(f"negative pfn {pfn}")
    if flags & ~FLAG_MASK:
        raise ValueError(f"flags {flags:#x} overflow the flag field")
    return (pfn << PAGE_SHIFT) | flags


def pte_pfn(pte: int) -> int:
    """The frame number a packed PTE maps."""
    return pte >> PAGE_SHIFT


def pte_flags(pte: int) -> int:
    """The flag bits of a packed PTE."""
    return pte & FLAG_MASK


def _split_vaddr(vaddr: int) -> Tuple[int, int, int, int]:
    if vaddr < 0 or vaddr % PAGE_SIZE:
        raise ValueError(f"vaddr {vaddr:#x} not page aligned / non-negative")
    if vaddr >= USER_VA_LIMIT:
        raise ValueError(f"vaddr {vaddr:#x} outside user half")
    return (
        (vaddr >> 39) & 0x1FF,
        (vaddr >> 30) & 0x1FF,
        (vaddr >> 21) & 0x1FF,
        (vaddr >> 12) & 0x1FF,
    )


#: Entries kept in a table's PFN-walk cache (recurring-attach workloads
#: re-walk a handful of ranges; anything bigger is churn).
WALK_CACHE_SLOTS = 8


class PageTable:
    """One process's 4-level translation tree.

    Every PFN-*changing* mutation bumps :attr:`generation`; flag-only
    changes (:meth:`set_flags`, :meth:`set_flags_range`) do not, since
    they cannot alter what :meth:`translate_range` returns. The walk
    cache keys on the generation, so repeated walks of an unchanged
    range (Fig. 8's recurring attachments) skip the leaf iteration.
    """

    def __init__(self) -> None:
        # PML4: slot -> PDPT dict; PDPT: slot -> PD dict; PD: slot -> leaf array
        self.pml4: Dict[int, Dict] = {}
        #: PML4 slots borrowed from other processes (SMARTMAP); value is the
        #: donor PageTable. Borrowed slots are read-through, never modified.
        self.shared_slots: Dict[int, "PageTable"] = {}
        self._present = 0
        #: Bumped on every PFN-changing mutation; invalidates the walk cache.
        self.generation = 0
        #: (vaddr, npages) -> (generation, pfns). Entries store private
        #: copies and hits return copies, so callers can never corrupt it.
        self._walk_cache: Dict[Tuple[int, int], Tuple[int, np.ndarray]] = {}

    # -- structure helpers ----------------------------------------------------

    def _leaf(self, i4: int, i3: int, i2: int, create: bool) -> Optional[np.ndarray]:
        if i4 in self.shared_slots:
            if create:
                raise ValueError(f"PML4 slot {i4} is borrowed (SMARTMAP); read-only")
            # SMARTMAP aliases the donor's slot 0 (where Kitten places all
            # process regions) under this slot.
            return self.shared_slots[i4]._leaf_own(0, i3, i2)
        return self._leaf_own(i4, i3, i2) if not create else self._leaf_create(i4, i3, i2)

    def _leaf_own(self, i4: int, i3: int, i2: int) -> Optional[np.ndarray]:
        pdpt = self.pml4.get(i4)
        if pdpt is None:
            return None
        pd = pdpt.get(i3)
        if pd is None:
            return None
        return pd.get(i2)

    def _leaf_create(self, i4: int, i3: int, i2: int) -> np.ndarray:
        pdpt = self.pml4.setdefault(i4, {})
        pd = pdpt.setdefault(i3, {})
        leaf = pd.get(i2)
        if leaf is None:
            leaf = pd[i2] = np.zeros(ENTRIES, dtype=np.int64)
        return leaf

    # -- single-page operations ------------------------------------------------

    def map_page(self, vaddr: int, pfn: int, flags: int = PTE_PRESENT | PTE_WRITABLE | PTE_USER) -> None:
        """Install one PTE; rejects double-mapping and missing PRESENT."""
        if not flags & PTE_PRESENT:
            raise ValueError("mapping must set PTE_PRESENT")
        i4, i3, i2, i1 = _split_vaddr(vaddr)
        leaf = self._leaf(i4, i3, i2, create=True)
        if leaf[i1] & PTE_PRESENT:
            raise ValueError(f"vaddr {vaddr:#x} already mapped")
        leaf[i1] = pack_pte(pfn, flags)
        self._present += 1
        self.generation += 1

    def unmap_page(self, vaddr: int) -> int:
        """Remove the PTE; returns the PFN it mapped."""
        i4, i3, i2, i1 = _split_vaddr(vaddr)
        if i4 in self.shared_slots:
            raise ValueError(f"PML4 slot {i4} is borrowed (SMARTMAP); read-only")
        leaf = self._leaf(i4, i3, i2, create=False)
        if leaf is None or not leaf[i1] & PTE_PRESENT:
            raise PageFault(vaddr)
        pfn = pte_pfn(int(leaf[i1]))
        leaf[i1] = 0
        self._present -= 1
        self.generation += 1
        return pfn

    def translate(self, vaddr: int, write: bool = False) -> Tuple[int, int]:
        """Return (pfn, flags) for ``vaddr``; raises :class:`PageFault`."""
        page_va = vaddr & ~(PAGE_SIZE - 1)
        i4, i3, i2, i1 = _split_vaddr(page_va)
        leaf = self._leaf(i4, i3, i2, create=False)
        if leaf is None:
            raise PageFault(vaddr, write)
        pte = int(leaf[i1])
        if not pte & PTE_PRESENT:
            raise PageFault(vaddr, write)
        if write and not pte & PTE_WRITABLE:
            raise PageFault(vaddr, write=True)
        return pte_pfn(pte), pte_flags(pte)

    def set_flags(self, vaddr: int, set_mask: int = 0, clear_mask: int = 0) -> None:
        """Adjust flag bits on an existing PTE (e.g. pinning)."""
        if (set_mask | clear_mask) & PTE_PRESENT and clear_mask & PTE_PRESENT:
            raise ValueError("use unmap_page to clear PRESENT")
        i4, i3, i2, i1 = _split_vaddr(vaddr & ~(PAGE_SIZE - 1))
        leaf = self._leaf(i4, i3, i2, create=False)
        if leaf is None or not leaf[i1] & PTE_PRESENT:
            raise PageFault(vaddr)
        leaf[i1] = (int(leaf[i1]) | set_mask) & ~clear_mask

    # -- vectorized range operations --------------------------------------------

    def _iter_leaf_spans(self, vaddr: int, npages: int, create: bool) -> Iterator[Tuple[np.ndarray, int, int, int]]:
        """Yield (leaf, first_index, count, page_offset) per touched leaf table.

        A zero-page range yields nothing (range operations on empty
        ranges are well-defined no-ops); a negative count is a bug.
        """
        if npages < 0:
            raise ValueError(f"bad page count {npages}")
        done = 0
        va = vaddr
        while done < npages:
            i4, i3, i2, i1 = _split_vaddr(va)
            take = min(ENTRIES - i1, npages - done)
            leaf = self._leaf(i4, i3, i2, create=create)
            yield leaf, i1, take, done
            done += take
            va += take * PAGE_SIZE

    def _range_touches_shared(self, vaddr: int, npages: int) -> bool:
        """True when [vaddr, +npages) crosses a borrowed (SMARTMAP) slot.

        Such ranges read the *donor's* tree, whose mutations do not bump
        this table's generation — the walk cache must bypass them.
        """
        if not self.shared_slots:
            return False
        first = vaddr >> 39
        last = (vaddr + npages * PAGE_SIZE - 1) >> 39
        return any(slot in self.shared_slots for slot in range(first, last + 1))

    def map_range(self, vaddr: int, pfns: np.ndarray, flags: int = PTE_PRESENT | PTE_WRITABLE | PTE_USER) -> None:
        """Install ``len(pfns)`` PTEs starting at ``vaddr`` (vectorized)."""
        if not flags & PTE_PRESENT:
            raise ValueError("mapping must set PTE_PRESENT")
        pfns = np.asarray(pfns, dtype=np.int64)
        if len(pfns) and pfns.min() < 0:
            raise ValueError("negative pfn in range")
        spans = list(self._iter_leaf_spans(vaddr, len(pfns), create=True))
        if FASTPATH.range_vectorize:
            # A PTE is nonzero iff present (mapping always sets PRESENT),
            # so plain truthiness replaces the `& PTE_PRESENT` mask pass,
            # and the packed values are computed once for the whole range.
            packed = (pfns << PAGE_SHIFT) | flags
            for leaf, i1, take, off in spans:  # validate first: all-or-nothing
                window = leaf[i1 : i1 + take]
                if window.any():
                    first = int(np.flatnonzero(window)[0])
                    raise ValueError(
                        f"vaddr {vaddr + (off + first) * PAGE_SIZE:#x} already mapped"
                    )
            for leaf, i1, take, off in spans:
                leaf[i1 : i1 + take] = packed[off : off + take]
        else:
            for leaf, i1, take, off in spans:  # validate first: all-or-nothing
                window = leaf[i1 : i1 + take]
                if (window & PTE_PRESENT).any():
                    first = int(np.flatnonzero(window & PTE_PRESENT)[0])
                    raise ValueError(
                        f"vaddr {vaddr + (off + first) * PAGE_SIZE:#x} already mapped"
                    )
            for leaf, i1, take, off in spans:
                leaf[i1 : i1 + take] = (pfns[off : off + take] << PAGE_SHIFT) | flags
        self._present += len(pfns)
        if len(pfns):
            self.generation += 1

    def unmap_range(self, vaddr: int, npages: int) -> np.ndarray:
        """Remove ``npages`` PTEs; returns the PFNs they mapped."""
        out = np.empty(npages, dtype=np.int64)
        spans = list(self._iter_leaf_spans(vaddr, npages, create=False))
        if FASTPATH.range_vectorize:
            for leaf, i1, take, off in spans:  # validate first: all-or-nothing
                if leaf is None or not leaf[i1 : i1 + take].all():
                    raise PageFault(vaddr + off * PAGE_SIZE)
            for leaf, i1, take, off in spans:
                window = leaf[i1 : i1 + take]
                out[off : off + take] = window
                window[:] = 0
            out >>= PAGE_SHIFT
        else:
            for leaf, i1, take, off in spans:  # validate first: all-or-nothing
                if leaf is None or not (leaf[i1 : i1 + take] & PTE_PRESENT).all():
                    raise PageFault(vaddr + off * PAGE_SIZE)
            for leaf, i1, take, off in spans:
                out[off : off + take] = leaf[i1 : i1 + take] >> PAGE_SHIFT
                leaf[i1 : i1 + take] = 0
        self._present -= npages
        if npages:
            self.generation += 1
        return out

    def translate_range(self, vaddr: int, npages: int) -> np.ndarray:
        """PFNs for ``npages`` starting at ``vaddr`` — the page-table *walk*
        XEMEM uses to build PFN lists. Raises on any hole.

        Repeated walks of an unchanged range are served from the walk
        cache (keyed on :attr:`generation`); ranges that cross a borrowed
        SMARTMAP slot always re-walk, since donor mutations do not bump
        this table's generation. The timing-model counter is charged
        either way — the cache only removes host-side leaf iteration.
        """
        from repro import obs

        obs.get().counter("pagetable.translate.pages").inc(npages)
        if npages == 0:
            return np.empty(0, dtype=np.int64)
        if FASTPATH.walk_cache and not self._range_touches_shared(vaddr, npages):
            key = (vaddr, npages)
            hit = self._walk_cache.get(key)
            if hit is not None and hit[0] == self.generation:
                obs.get().counter("fastpath.walkcache.hits").inc()
                return hit[1].copy()
            out = self._walk(vaddr, npages)
            if hit is None and len(self._walk_cache) >= WALK_CACHE_SLOTS:
                self._walk_cache.pop(next(iter(self._walk_cache)))
            self._walk_cache[key] = (self.generation, out.copy())
            return out
        return self._walk(vaddr, npages)

    def _walk(self, vaddr: int, npages: int) -> np.ndarray:
        """The uncached leaf walk behind :meth:`translate_range`."""
        out = np.empty(npages, dtype=np.int64)
        if FASTPATH.range_vectorize:
            for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
                if leaf is None:
                    raise PageFault(vaddr + off * PAGE_SIZE)
                window = leaf[i1 : i1 + take]
                if not window.all():
                    hole = int(np.flatnonzero(window == 0)[0])
                    raise PageFault(vaddr + (off + hole) * PAGE_SIZE)
                out[off : off + take] = window
            out >>= PAGE_SHIFT
            return out
        for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
            if leaf is None:
                raise PageFault(vaddr + off * PAGE_SIZE)
            window = leaf[i1 : i1 + take]
            if not (window & PTE_PRESENT).all():
                hole = int(np.flatnonzero((window & PTE_PRESENT) == 0)[0])
                raise PageFault(vaddr + (off + hole) * PAGE_SIZE)
            out[off : off + take] = window >> PAGE_SHIFT
        return out

    def range_flags_all(self, vaddr: int, npages: int, mask: int) -> bool:
        """True when every PTE in the range has all bits of ``mask`` set."""
        if FASTPATH.range_vectorize:
            out = np.empty(npages, dtype=np.int64)
            for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
                if leaf is None:
                    raise PageFault(vaddr + off * PAGE_SIZE)
                window = leaf[i1 : i1 + take]
                if not window.all():
                    raise PageFault(vaddr + off * PAGE_SIZE)
                out[off : off + take] = window
            return bool(((out & mask) == mask).all())
        for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
            if leaf is None:
                raise PageFault(vaddr + off * PAGE_SIZE)
            window = leaf[i1 : i1 + take]
            if not (window & PTE_PRESENT).all():
                raise PageFault(vaddr + off * PAGE_SIZE)
            if ((window & mask) == mask).sum() != take:
                return False
        return True

    def set_flags_range(self, vaddr: int, npages: int, set_mask: int = 0, clear_mask: int = 0) -> None:
        """Adjust flag bits across a mapped range (e.g. bulk pinning).

        Flag changes never alter what :meth:`translate_range` returns, so
        this deliberately does *not* bump :attr:`generation` — recurring
        pin/unpin cycles keep their walk-cache entries warm.
        """
        if clear_mask & PTE_PRESENT:
            raise ValueError("use unmap_range to clear PRESENT")
        if FASTPATH.range_vectorize:
            clear = np.int64(~clear_mask)
            for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
                if leaf is None:
                    raise PageFault(vaddr + off * PAGE_SIZE)
                window = leaf[i1 : i1 + take]
                if not window.all():
                    raise PageFault(vaddr + off * PAGE_SIZE)
                window |= set_mask
                window &= clear
            return
        for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
            if leaf is None or not (leaf[i1 : i1 + take] & PTE_PRESENT).all():
                raise PageFault(vaddr + off * PAGE_SIZE)
            leaf[i1 : i1 + take] = (leaf[i1 : i1 + take] | set_mask) & ~clear_mask

    def present_mask(self, vaddr: int, npages: int) -> np.ndarray:
        """Boolean per-page presence for the range; missing leaves read False.

        Unlike :meth:`translate_range` this never faults — it is the probe
        behind the vectorized partial-population fault paths.
        """
        out = np.zeros(npages, dtype=bool)
        for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
            if leaf is not None:
                out[off : off + take] = leaf[i1 : i1 + take] != 0
        return out

    def flag_mask(self, vaddr: int, npages: int, mask: int) -> np.ndarray:
        """Boolean per-page: present *and* every bit of ``mask`` set."""
        want = np.int64(mask | PTE_PRESENT)
        out = np.zeros(npages, dtype=bool)
        for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
            if leaf is not None:
                out[off : off + take] = (leaf[i1 : i1 + take] & want) == want
        return out

    def map_pages_sparse(
        self,
        vaddr: int,
        page_indices: np.ndarray,
        pfns: np.ndarray,
        flags: int = PTE_PRESENT | PTE_WRITABLE | PTE_USER,
    ) -> None:
        """Install PTEs at ``vaddr + idx*PAGE_SIZE`` for each ``idx``.

        ``page_indices`` must be sorted ascending and unique (as produced
        by ``np.flatnonzero`` over a presence mask). Grouping by leaf lets
        a scattered fill of a partially-populated range run as a few
        fancy-indexed assignments instead of one ``map_page`` per hole.
        All-or-nothing like :meth:`map_range`.
        """
        if not flags & PTE_PRESENT:
            raise ValueError("mapping must set PTE_PRESENT")
        page_indices = np.asarray(page_indices, dtype=np.int64)
        pfns = np.asarray(pfns, dtype=np.int64)
        if len(page_indices) != len(pfns):
            raise ValueError("page_indices and pfns disagree on length")
        n = len(page_indices)
        if n == 0:
            return
        if pfns.min() < 0:
            raise ValueError("negative pfn in range")
        abs_pages = (vaddr >> PAGE_SHIFT) + page_indices
        # Sorted indices make pages of the same leaf contiguous here.
        bounds = np.flatnonzero(np.diff(abs_pages >> 9)) + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [n]))
        packed = (pfns << PAGE_SHIFT) | flags
        groups = []
        for s, e in zip(starts, ends):
            i4, i3, i2, _ = _split_vaddr(int(abs_pages[s]) << PAGE_SHIFT)
            leaf = self._leaf(i4, i3, i2, create=True)
            idx = abs_pages[s:e] & 0x1FF
            taken = np.flatnonzero(leaf[idx])
            if len(taken):
                bad = vaddr + int(page_indices[s + int(taken[0])]) * PAGE_SIZE
                raise ValueError(f"vaddr {bad:#x} already mapped")
            groups.append((leaf, idx, s, e))
        for leaf, idx, s, e in groups:
            leaf[idx] = packed[s:e]
        self._present += n
        self.generation += 1

    # -- SMARTMAP -----------------------------------------------------------------

    def share_pml4_slot(self, slot: int, donor: "PageTable") -> None:
        """Alias ``donor``'s whole address space under PML4 ``slot``.

        This is SMARTMAP: translations through ``slot`` read the donor's
        own tree (donor slot 0, where Kitten places all process regions).
        """
        if not 0 <= slot < ENTRIES // 2:
            raise ValueError(f"slot {slot} outside user half")
        if slot in self.pml4 or slot in self.shared_slots:
            raise ValueError(f"PML4 slot {slot} already in use")
        if donor is self:
            raise ValueError("cannot SMARTMAP a table into itself")
        self.shared_slots[slot] = donor
        self.generation += 1

    def unshare_pml4_slot(self, slot: int) -> None:
        """Drop a borrowed SMARTMAP slot."""
        if slot not in self.shared_slots:
            raise ValueError(f"PML4 slot {slot} not shared")
        del self.shared_slots[slot]
        self.generation += 1

    # -- introspection --------------------------------------------------------------

    @property
    def present_pages(self) -> int:
        """Number of present PTEs in this table's own tree."""
        return self._present

    def walk_cache_entries(self) -> List[Tuple[int, int, int, np.ndarray]]:
        """Snapshot of the walk cache: (vaddr, npages, generation, pfns).

        Audit tap — returns copies, never mutates the cache or the
        counters, so reading it cannot perturb a run.
        """
        return [
            (vaddr, npages, gen, pfns.copy())
            for (vaddr, npages), (gen, pfns) in self._walk_cache.items()
        ]

    def present_pfns(self) -> np.ndarray:
        """Sorted PFNs of every present PTE in this table's own tree.

        Audit tap for frame-ownership checks (slow; walks every leaf).
        Borrowed SMARTMAP slots are excluded — those frames belong to the
        donor's tree.
        """
        chunks = []
        for pdpt in self.pml4.values():
            for pd in pdpt.values():
                for leaf in pd.values():
                    present = leaf[(leaf & PTE_PRESENT) != 0]
                    if len(present):
                        chunks.append(present >> PAGE_SHIFT)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(chunks))

    def mapped_vaddrs(self) -> List[int]:
        """All mapped page-aligned vaddrs in this table's own tree (slow; tests)."""
        out = []
        for i4, pdpt in self.pml4.items():
            for i3, pd in pdpt.items():
                for i2, leaf in pd.items():
                    for i1 in np.flatnonzero(leaf & PTE_PRESENT):
                        out.append((i4 << 39) | (i3 << 30) | (i2 << 21) | (int(i1) << 12))
        return sorted(out)
