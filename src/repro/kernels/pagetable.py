"""Real 4-level x86-64 page tables with two storage-fidelity twins.

:class:`PageTable` owns the translation *semantics* — validation,
SMARTMAP slot borrowing, the generation-keyed walk cache, presence
accounting — and delegates PTE storage to one of two interchangeable
backing stores, chosen at construction by :data:`repro.sim.fidelity.FIDELITY`:

* **fast** (:class:`_ColumnarStore`) — structure-of-arrays: one flat
  ``int64`` PFN column plus one ``uint16`` flag-bitmask column, grown as
  an arena of 512-entry leaf rows. A per-PD index (``dict`` of 512-entry
  row-id arrays) maps leaf number → row. Rows for a contiguous mapping
  are allocated consecutively, so range operations collapse to a few
  flat slices and flag-only sweeps (pinning, presence probes) touch a
  quarter of the bytes a packed layout would.
* **detailed** (:class:`_RadixStore`) — hardware-shaped: PML4 → PDPT →
  PD → PT dicts, nine index bits per level, 512-entry numpy ``int64``
  leaf arrays of packed PTEs — exactly the radix walk a real MMU
  performs, retained as the differential twin.

A packed PTE is ``(pfn << 12) | flags``. The PINNED flag is software-only
(``get_user_pages`` semantics); everything else matches hardware bits in
spirit, not in exact bit position. Both stores keep the invariant that a
PTE is nonzero iff PRESENT (mapping always sets PRESENT), and both
report the *exact first missing page* in range faults, so fault
addresses, counters, and traces are byte-identical across fidelity
modes (``tests/sim/test_fidelity_diff.py``).

SMARTMAP's trick — sharing another process's entire address space by
aliasing a top-level PML4 slot — is :meth:`PageTable.share_pml4_slot`,
used by Kitten for *local* shared memory (paper §2, §4.3). Borrowed
slots are strictly read-through: every mutating operation (map, unmap,
flag updates — single-page *and* range variants) rejects addresses in a
borrowed slot with ``ValueError`` before touching anything, so a range
straddling a borrowed slot can never half-mutate the donor's tree.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.sim.fastpath import FASTPATH
from repro.sim.fidelity import FIDELITY

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
ENTRIES = 512
LEVELS = 4

#: Bytes of virtual address space one PML4 slot covers (512 GiB).
PML4_SLOT_SPAN = 1 << 39

PTE_PRESENT = 0x001
PTE_WRITABLE = 0x002
PTE_USER = 0x004
PTE_ACCESSED = 0x008
PTE_DIRTY = 0x010
PTE_PINNED = 0x020  # software: get_user_pages pin

FLAG_MASK = (1 << PAGE_SHIFT) - 1

#: Highest canonical user address we hand out (47-bit user half).
USER_VA_LIMIT = 1 << 47


class PageFault(Exception):
    """Translation failed: no present PTE for the address."""

    def __init__(self, vaddr: int, write: bool = False):
        super().__init__(f"page fault at {vaddr:#x} ({'write' if write else 'read'})")
        self.vaddr = vaddr
        self.write = write


def pack_pte(pfn: int, flags: int) -> int:
    """Pack (pfn, flags) into one 64-bit PTE value."""
    if pfn < 0:
        raise ValueError(f"negative pfn {pfn}")
    if flags & ~FLAG_MASK:
        raise ValueError(f"flags {flags:#x} overflow the flag field")
    return (pfn << PAGE_SHIFT) | flags


def pte_pfn(pte: int) -> int:
    """The frame number a packed PTE maps."""
    return pte >> PAGE_SHIFT


def pte_flags(pte: int) -> int:
    """The flag bits of a packed PTE."""
    return pte & FLAG_MASK


def _check_vaddr(vaddr: int) -> None:
    if vaddr < 0 or vaddr % PAGE_SIZE:
        raise ValueError(f"vaddr {vaddr:#x} not page aligned / non-negative")
    if vaddr >= USER_VA_LIMIT:
        raise ValueError(f"vaddr {vaddr:#x} outside user half")


def _check_range(vaddr: int, npages: int) -> None:
    """Validate a range's shape; zero-page ranges skip address checks
    (range operations on empty ranges are well-defined no-ops)."""
    if npages < 0:
        raise ValueError(f"bad page count {npages}")
    if npages == 0:
        return
    _check_vaddr(vaddr)
    if vaddr + npages * PAGE_SIZE > USER_VA_LIMIT:
        raise ValueError(f"range end {vaddr + npages * PAGE_SIZE:#x} outside user half")


def _split_vaddr(vaddr: int) -> Tuple[int, int, int, int]:
    _check_vaddr(vaddr)
    return (
        (vaddr >> 39) & 0x1FF,
        (vaddr >> 30) & 0x1FF,
        (vaddr >> 21) & 0x1FF,
        (vaddr >> 12) & 0x1FF,
    )


#: Entries kept in a table's PFN-walk cache (recurring-attach workloads
#: re-walk a handful of ranges; anything bigger is churn).
WALK_CACHE_SLOTS = 8


class _RadixStore:
    """Detailed-fidelity backing store: the hardware-shaped radix tree.

    All methods assume validated, page-aligned inputs covering only this
    table's *own* tree (the :class:`PageTable` front end handles borrowed
    SMARTMAP slots and input validation). Range mutations are
    all-or-nothing: they validate every touched leaf before writing.
    """

    def __init__(self) -> None:
        # PML4: slot -> PDPT dict; PDPT: slot -> PD dict; PD: slot -> leaf array
        self.pml4: Dict[int, Dict] = {}

    # -- structure helpers ----------------------------------------------------

    def _leaf_own(self, i4: int, i3: int, i2: int) -> Optional[np.ndarray]:
        pdpt = self.pml4.get(i4)
        if pdpt is None:
            return None
        pd = pdpt.get(i3)
        if pd is None:
            return None
        return pd.get(i2)

    def _leaf_create(self, i4: int, i3: int, i2: int) -> np.ndarray:
        pdpt = self.pml4.setdefault(i4, {})
        pd = pdpt.setdefault(i3, {})
        leaf = pd.get(i2)
        if leaf is None:
            leaf = pd[i2] = np.zeros(ENTRIES, dtype=np.int64)
        return leaf

    def _iter_leaf_spans(
        self, vaddr: int, npages: int, create: bool
    ) -> Iterator[Tuple[Optional[np.ndarray], int, int, int]]:
        """Yield (leaf, first_index, count, page_offset) per touched leaf table."""
        done = 0
        va = vaddr
        while done < npages:
            i4, i3, i2, i1 = _split_vaddr(va)
            take = min(ENTRIES - i1, npages - done)
            if create:
                leaf = self._leaf_create(i4, i3, i2)
            else:
                leaf = self._leaf_own(i4, i3, i2)
            yield leaf, i1, take, done
            done += take
            va += take * PAGE_SIZE

    def slot_in_use(self, i4: int) -> bool:
        """True when this tree has (ever had) leaves under PML4 ``i4``."""
        return i4 in self.pml4

    # -- single-page PTEs -----------------------------------------------------

    def read_pte(self, vaddr: int) -> int:
        i4, i3, i2, i1 = _split_vaddr(vaddr)
        leaf = self._leaf_own(i4, i3, i2)
        if leaf is None:
            return 0
        return int(leaf[i1])

    def install_pte(self, vaddr: int, pfn: int, flags: int) -> None:
        i4, i3, i2, i1 = _split_vaddr(vaddr)
        self._leaf_create(i4, i3, i2)[i1] = pack_pte(pfn, flags)

    def zero_pte(self, vaddr: int) -> None:
        i4, i3, i2, i1 = _split_vaddr(vaddr)
        self._leaf_own(i4, i3, i2)[i1] = 0

    def rmw_pte_flags(self, vaddr: int, set_mask: int, clear_mask: int) -> bool:
        i4, i3, i2, i1 = _split_vaddr(vaddr)
        leaf = self._leaf_own(i4, i3, i2)
        if leaf is None or not leaf[i1] & PTE_PRESENT:
            return False
        leaf[i1] = (int(leaf[i1]) | set_mask) & ~clear_mask
        return True

    # -- range operations -----------------------------------------------------

    def map_range(self, vaddr: int, pfns: np.ndarray, flags: int) -> None:
        npages = len(pfns)
        # Validate against the *existing* structure first — creating leaf
        # tables before the collision check would leak empty leaves (and
        # claim the PML4 slot) on the error path.
        if FASTPATH.range_vectorize:
            # A PTE is nonzero iff present (mapping always sets PRESENT),
            # so plain truthiness replaces the `& PTE_PRESENT` mask pass,
            # and the packed values are computed once for the whole range.
            for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
                if leaf is None:
                    continue
                window = leaf[i1 : i1 + take]
                if window.any():
                    first = int(np.flatnonzero(window)[0])
                    raise ValueError(
                        f"vaddr {vaddr + (off + first) * PAGE_SIZE:#x} already mapped"
                    )
            packed = (pfns << PAGE_SHIFT) | flags
            for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=True):
                leaf[i1 : i1 + take] = packed[off : off + take]
        else:
            for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
                if leaf is None:
                    continue
                window = leaf[i1 : i1 + take]
                if (window & PTE_PRESENT).any():
                    first = int(np.flatnonzero(window & PTE_PRESENT)[0])
                    raise ValueError(
                        f"vaddr {vaddr + (off + first) * PAGE_SIZE:#x} already mapped"
                    )
            for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=True):
                leaf[i1 : i1 + take] = (pfns[off : off + take] << PAGE_SHIFT) | flags

    def unmap_range(self, vaddr: int, npages: int, out: np.ndarray) -> None:
        spans = list(self._iter_leaf_spans(vaddr, npages, create=False))
        if FASTPATH.range_vectorize:
            for leaf, i1, take, off in spans:  # validate first: all-or-nothing
                if leaf is None:
                    raise PageFault(vaddr + off * PAGE_SIZE)
                window = leaf[i1 : i1 + take]
                if not window.all():
                    hole = int(np.flatnonzero(window == 0)[0])
                    raise PageFault(vaddr + (off + hole) * PAGE_SIZE)
            for leaf, i1, take, off in spans:
                window = leaf[i1 : i1 + take]
                out[off : off + take] = window
                window[:] = 0
            out >>= PAGE_SHIFT
        else:
            for leaf, i1, take, off in spans:  # validate first: all-or-nothing
                if leaf is None:
                    raise PageFault(vaddr + off * PAGE_SIZE)
                present = leaf[i1 : i1 + take] & PTE_PRESENT
                if not present.all():
                    hole = int(np.flatnonzero(present == 0)[0])
                    raise PageFault(vaddr + (off + hole) * PAGE_SIZE)
            for leaf, i1, take, off in spans:
                out[off : off + take] = leaf[i1 : i1 + take] >> PAGE_SHIFT
                leaf[i1 : i1 + take] = 0

    def walk_into(self, vaddr: int, npages: int, out: np.ndarray) -> None:
        if FASTPATH.range_vectorize:
            for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
                if leaf is None:
                    raise PageFault(vaddr + off * PAGE_SIZE)
                window = leaf[i1 : i1 + take]
                if not window.all():
                    hole = int(np.flatnonzero(window == 0)[0])
                    raise PageFault(vaddr + (off + hole) * PAGE_SIZE)
                out[off : off + take] = window
            out >>= PAGE_SHIFT
            return
        for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
            if leaf is None:
                raise PageFault(vaddr + off * PAGE_SIZE)
            window = leaf[i1 : i1 + take]
            if not (window & PTE_PRESENT).all():
                hole = int(np.flatnonzero((window & PTE_PRESENT) == 0)[0])
                raise PageFault(vaddr + (off + hole) * PAGE_SIZE)
            out[off : off + take] = window >> PAGE_SHIFT

    def range_flags_all(self, vaddr: int, npages: int, mask: int) -> bool:
        if FASTPATH.range_vectorize:
            # One combined per-leaf check: a window passing the
            # present+mask test needs no hole scan, so the common case
            # never materializes the full range. A hole still faults
            # even after a leaf already answered False — leaves scan in
            # range order, so the fault address matches the slow twin.
            want = np.int64(mask | PTE_PRESENT)
            ok = True
            for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
                if leaf is None:
                    raise PageFault(vaddr + off * PAGE_SIZE)
                window = leaf[i1 : i1 + take]
                if ((window & want) == want).all():
                    continue
                if not window.all():
                    hole = int(np.flatnonzero(window == 0)[0])
                    raise PageFault(vaddr + (off + hole) * PAGE_SIZE)
                ok = False
            return ok
        spans = list(self._iter_leaf_spans(vaddr, npages, create=False))
        for leaf, i1, take, off in spans:  # validate first: fault before answering
            if leaf is None:
                raise PageFault(vaddr + off * PAGE_SIZE)
            present = leaf[i1 : i1 + take] & PTE_PRESENT
            if not present.all():
                hole = int(np.flatnonzero(present == 0)[0])
                raise PageFault(vaddr + (off + hole) * PAGE_SIZE)
        for leaf, i1, take, off in spans:
            window = leaf[i1 : i1 + take]
            if ((window & mask) == mask).sum() != take:
                return False
        return True

    def set_flags_range(self, vaddr: int, npages: int, set_mask: int, clear_mask: int) -> None:
        spans = list(self._iter_leaf_spans(vaddr, npages, create=False))
        if FASTPATH.range_vectorize:
            for leaf, i1, take, off in spans:  # validate first: all-or-nothing
                if leaf is None:
                    raise PageFault(vaddr + off * PAGE_SIZE)
                window = leaf[i1 : i1 + take]
                if not window.all():
                    hole = int(np.flatnonzero(window == 0)[0])
                    raise PageFault(vaddr + (off + hole) * PAGE_SIZE)
            clear = np.int64(~clear_mask)
            for leaf, i1, take, off in spans:
                window = leaf[i1 : i1 + take]
                window |= set_mask
                window &= clear
        else:
            for leaf, i1, take, off in spans:  # validate first: all-or-nothing
                if leaf is None:
                    raise PageFault(vaddr + off * PAGE_SIZE)
                present = leaf[i1 : i1 + take] & PTE_PRESENT
                if not present.all():
                    hole = int(np.flatnonzero(present == 0)[0])
                    raise PageFault(vaddr + (off + hole) * PAGE_SIZE)
            for leaf, i1, take, off in spans:
                leaf[i1 : i1 + take] = (leaf[i1 : i1 + take] | set_mask) & ~clear_mask

    def present_mask_into(self, vaddr: int, npages: int, out: np.ndarray) -> None:
        for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
            if leaf is not None:
                out[off : off + take] = leaf[i1 : i1 + take] != 0

    def flag_mask_into(self, vaddr: int, npages: int, mask: int, out: np.ndarray) -> None:
        want = np.int64(mask | PTE_PRESENT)
        for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
            if leaf is not None:
                out[off : off + take] = (leaf[i1 : i1 + take] & want) == want

    def first_missing_flag(self, vaddr: int, npages: int, mask: int) -> int:
        want = np.int64(mask | PTE_PRESENT)
        for leaf, i1, take, off in self._iter_leaf_spans(vaddr, npages, create=False):
            if leaf is None:
                return off
            ok = (leaf[i1 : i1 + take] & want) == want
            if not ok.all():
                return off + int(np.flatnonzero(~ok)[0])
        return -1

    def map_pages_sparse(
        self, vaddr: int, page_indices: np.ndarray, pfns: np.ndarray, flags: int
    ) -> None:
        n = len(page_indices)
        abs_pages = (vaddr >> PAGE_SHIFT) + page_indices
        # Sorted indices make pages of the same leaf contiguous here.
        bounds = np.flatnonzero(np.diff(abs_pages >> 9)) + 1
        starts = np.concatenate(([0], bounds))
        ends = np.concatenate((bounds, [n]))
        packed = (pfns << PAGE_SHIFT) | flags
        groups = []
        for s, e in zip(starts, ends):
            i4, i3, i2, _ = _split_vaddr(int(abs_pages[s]) << PAGE_SHIFT)
            # Probe without creating: a collision must not leak fresh leaves.
            leaf = self._leaf_own(i4, i3, i2)
            idx = abs_pages[s:e] & 0x1FF
            if leaf is not None:
                taken = np.flatnonzero(leaf[idx])
                if len(taken):
                    bad = vaddr + int(page_indices[s + int(taken[0])]) * PAGE_SIZE
                    raise ValueError(f"vaddr {bad:#x} already mapped")
            groups.append((i4, i3, i2, idx, s, e))
        for i4, i3, i2, idx, s, e in groups:
            self._leaf_create(i4, i3, i2)[idx] = packed[s:e]

    # -- introspection --------------------------------------------------------

    def present_pfns(self) -> np.ndarray:
        chunks = []
        for pdpt in self.pml4.values():
            for pd in pdpt.values():
                for leaf in pd.values():
                    present = leaf[(leaf & PTE_PRESENT) != 0]
                    if len(present):
                        chunks.append(present >> PAGE_SHIFT)
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(chunks))

    def mapped_vaddrs(self) -> List[int]:
        out = []
        for i4, pdpt in self.pml4.items():
            for i3, pd in pdpt.items():
                for i2, leaf in pd.items():
                    for i1 in np.flatnonzero(leaf & PTE_PRESENT):
                        out.append((i4 << 39) | (i3 << 30) | (i2 << 21) | (int(i1) << 12))
        return sorted(out)


class _ColumnarStore:
    """Fast-fidelity backing store: structure-of-arrays PTE columns.

    Leaf tables live in a flat arena: row ``r`` owns elements
    ``[r*512, (r+1)*512)`` of the PFN column (``int64``) and the flag
    column (``uint16``). ``_rows`` maps a PD number (``abs_leaf >> 9``)
    to a 512-entry row-id array (``-1`` = leaf absent). Rows for a
    contiguous mapping are allocated consecutively, so a multi-GiB range
    operation usually resolves to **one** flat slice. A page is present
    iff its flag-column entry is nonzero; stale PFNs left behind by
    unmap are masked by that invariant everywhere.

    Rows are never returned to the arena — a table's footprint is its
    peak mapped leaf count (bounded, and remaps of a churned range reuse
    their rows without allocating).

    Same contract as :class:`_RadixStore`: validated own-tree inputs,
    all-or-nothing mutations, exact first-hole fault addresses.
    """

    def __init__(self) -> None:
        #: PD number (abs_leaf >> 9) -> int64[512] of row ids, -1 = absent.
        self._rows: Dict[int, np.ndarray] = {}
        self._pfns = np.empty(0, dtype=np.int64)
        self._flags = np.empty(0, dtype=np.uint16)
        self._nrows = 0

    # -- arena ----------------------------------------------------------------

    def _alloc_rows(self, n: int) -> int:
        """Reserve ``n`` fresh zeroed rows; returns the first row id."""
        need = self._nrows + n
        cap = len(self._flags) >> 9
        if need > cap:
            newcap = max(need, 2 * cap, 64)
            pfns = np.zeros(newcap << 9, dtype=np.int64)
            flags = np.zeros(newcap << 9, dtype=np.uint16)
            used = self._nrows << 9
            pfns[:used] = self._pfns[:used]
            flags[:used] = self._flags[:used]
            self._pfns, self._flags = pfns, flags
        first = self._nrows
        self._nrows = need
        return first

    def _leaf_rows(self, uleaves: np.ndarray, create: bool) -> np.ndarray:
        """Row ids for unique sorted absolute leaf numbers (-1 = absent)."""
        rows = np.empty(len(uleaves), dtype=np.int64)
        pds = uleaves >> 9
        for pd in np.unique(pds).tolist():
            sel = pds == pd
            group = self._rows.get(pd)
            if group is None and create:
                group = self._rows[pd] = np.full(ENTRIES, -1, dtype=np.int64)
            if group is None:
                rows[sel] = -1
            else:
                rows[sel] = group[uleaves[sel] - (pd << 9)]
        if create:
            missing = np.flatnonzero(rows < 0)
            if len(missing):
                first = self._alloc_rows(len(missing))
                fresh = first + np.arange(len(missing), dtype=np.int64)
                rows[missing] = fresh
                mleaves = uleaves[missing]
                mpds = mleaves >> 9
                for pd in np.unique(mpds).tolist():
                    sel = mpds == pd
                    self._rows[pd][mleaves[sel] - (pd << 9)] = fresh[sel]
        return rows

    def _runs(self, vaddr: int, npages: int, create: bool) -> List[Tuple[int, int, int]]:
        """Split a range into flat-arena runs: (flat_start, page_off, count).

        ``flat_start`` is -1 for a run of absent leaves. Consecutive row
        ids merge into one run, so a freshly mapped multi-GiB range is a
        single (flat_start, 0, npages) entry.
        """
        if npages == 0:
            return []
        p0 = vaddr >> PAGE_SHIFT
        p_last = p0 + npages - 1
        leaf0 = p0 >> 9
        rows = self._leaf_rows(np.arange(leaf0, (p_last >> 9) + 1, dtype=np.int64), create)
        if len(rows) == 1:
            row = int(rows[0])
            flat = (row << 9) + (p0 & 0x1FF) if row >= 0 else -1
            return [(flat, 0, npages)]
        diffs = np.diff(rows)
        present = rows >= 0
        joined = (present[:-1] & present[1:] & (diffs == 1)) | ~(present[:-1] | present[1:])
        brk = np.flatnonzero(~joined) + 1
        starts = np.concatenate(([0], brk))
        ends = np.concatenate((brk, [len(rows)]))
        out = []
        for s, e in zip(starts.tolist(), ends.tolist()):
            lo = max(p0, (leaf0 + s) << 9)
            hi = min(p_last, ((leaf0 + e) << 9) - 1)
            row = int(rows[s])
            flat = (row << 9) + (lo & 0x1FF) if row >= 0 else -1
            out.append((flat, lo - p0, hi - lo + 1))
        return out

    def slot_in_use(self, i4: int) -> bool:
        """True when this tree has (ever had) leaves under PML4 ``i4``."""
        return any(pd >> 9 == i4 for pd in self._rows)

    # -- single-page PTEs -----------------------------------------------------

    def _flat_index(self, vaddr: int) -> int:
        """Flat arena index for a mapped page's PTE, or -1."""
        page = vaddr >> PAGE_SHIFT
        group = self._rows.get(page >> 18)
        if group is None:
            return -1
        row = int(group[(page >> 9) & 0x1FF])
        if row < 0:
            return -1
        return (row << 9) + (page & 0x1FF)

    def read_pte(self, vaddr: int) -> int:
        flat = self._flat_index(vaddr)
        if flat < 0:
            return 0
        flags = int(self._flags[flat])
        if flags == 0:
            return 0
        return (int(self._pfns[flat]) << PAGE_SHIFT) | flags

    def install_pte(self, vaddr: int, pfn: int, flags: int) -> None:
        pack_pte(pfn, flags)  # validate the pfn/flag ranges like the radix twin
        page = vaddr >> PAGE_SHIFT
        pd = page >> 18
        group = self._rows.get(pd)
        if group is None:
            group = self._rows[pd] = np.full(ENTRIES, -1, dtype=np.int64)
        leaf_idx = (page >> 9) & 0x1FF
        row = int(group[leaf_idx])
        if row < 0:
            row = self._alloc_rows(1)
            group[leaf_idx] = row
        flat = (row << 9) + (page & 0x1FF)
        self._pfns[flat] = pfn
        self._flags[flat] = flags

    def zero_pte(self, vaddr: int) -> None:
        self._flags[self._flat_index(vaddr)] = 0

    def rmw_pte_flags(self, vaddr: int, set_mask: int, clear_mask: int) -> bool:
        flat = self._flat_index(vaddr)
        if flat < 0:
            return False
        flags = int(self._flags[flat])
        if not flags & PTE_PRESENT:
            return False
        self._flags[flat] = (flags | set_mask) & ~clear_mask
        return True

    # -- range operations -----------------------------------------------------

    def _first_hole(self, flat: int, off: int, count: int) -> Optional[int]:
        """Page offset of the first non-present page in a run, else None."""
        if flat < 0:
            return off
        window = self._flags[flat : flat + count]
        if window.all():
            return None
        return off + int(np.flatnonzero(window == 0)[0])

    def _validate_present(self, vaddr: int, runs: List[Tuple[int, int, int]]) -> None:
        for flat, off, count in runs:
            hole = self._first_hole(flat, off, count)
            if hole is not None:
                raise PageFault(vaddr + hole * PAGE_SIZE)

    def map_range(self, vaddr: int, pfns: np.ndarray, flags: int) -> None:
        npages = len(pfns)
        # Probe the existing rows first (no creation): a collision must
        # not leak fresh rows or claim the PML4 slot.
        for flat, off, count in self._runs(vaddr, npages, create=False):
            if flat < 0:
                continue
            taken = np.flatnonzero(self._flags[flat : flat + count])
            if len(taken):
                raise ValueError(
                    f"vaddr {vaddr + (off + int(taken[0])) * PAGE_SIZE:#x} already mapped"
                )
        for flat, off, count in self._runs(vaddr, npages, create=True):
            self._pfns[flat : flat + count] = pfns[off : off + count]
            self._flags[flat : flat + count] = flags

    def unmap_range(self, vaddr: int, npages: int, out: np.ndarray) -> None:
        runs = self._runs(vaddr, npages, create=False)
        self._validate_present(vaddr, runs)  # all-or-nothing
        for flat, off, count in runs:
            out[off : off + count] = self._pfns[flat : flat + count]
            self._flags[flat : flat + count] = 0

    def walk_into(self, vaddr: int, npages: int, out: np.ndarray) -> None:
        runs = self._runs(vaddr, npages, create=False)
        self._validate_present(vaddr, runs)
        for flat, off, count in runs:
            out[off : off + count] = self._pfns[flat : flat + count]

    def range_flags_all(self, vaddr: int, npages: int, mask: int) -> bool:
        runs = self._runs(vaddr, npages, create=False)
        self._validate_present(vaddr, runs)  # fault before answering
        want = np.uint16(mask)
        for flat, off, count in runs:
            window = self._flags[flat : flat + count]
            if not ((window & want) == want).all():
                return False
        return True

    def set_flags_range(self, vaddr: int, npages: int, set_mask: int, clear_mask: int) -> None:
        runs = self._runs(vaddr, npages, create=False)
        self._validate_present(vaddr, runs)  # all-or-nothing
        keep = np.uint16(~clear_mask & 0xFFFF)
        setv = np.uint16(set_mask)
        for flat, off, count in runs:
            window = self._flags[flat : flat + count]
            window |= setv
            window &= keep

    def present_mask_into(self, vaddr: int, npages: int, out: np.ndarray) -> None:
        for flat, off, count in self._runs(vaddr, npages, create=False):
            if flat >= 0:
                np.not_equal(self._flags[flat : flat + count], 0, out=out[off : off + count])

    def flag_mask_into(self, vaddr: int, npages: int, mask: int, out: np.ndarray) -> None:
        want = np.uint16(mask | PTE_PRESENT)
        for flat, off, count in self._runs(vaddr, npages, create=False):
            if flat >= 0:
                window = self._flags[flat : flat + count]
                np.equal(window & want, want, out=out[off : off + count])

    def first_missing_flag(self, vaddr: int, npages: int, mask: int) -> int:
        want = np.uint16(mask | PTE_PRESENT)
        for flat, off, count in self._runs(vaddr, npages, create=False):
            if flat < 0:
                return off
            ok = (self._flags[flat : flat + count] & want) == want
            if not ok.all():
                return off + int(np.flatnonzero(~ok)[0])
        return -1

    def map_pages_sparse(
        self, vaddr: int, page_indices: np.ndarray, pfns: np.ndarray, flags: int
    ) -> None:
        abs_pages = (vaddr >> PAGE_SHIFT) + page_indices
        leaves = abs_pages >> 9
        first_of_leaf = np.empty(len(leaves), dtype=bool)
        first_of_leaf[0] = True
        np.not_equal(leaves[1:], leaves[:-1], out=first_of_leaf[1:])
        uleaves = leaves[first_of_leaf]
        counts = np.diff(np.concatenate((np.flatnonzero(first_of_leaf), [len(leaves)])))
        # Probe without creating rows: a collision must not leak them.
        rows = np.repeat(self._leaf_rows(uleaves, create=False), counts)
        flat = (rows << 9) + (abs_pages & 0x1FF)
        have = rows >= 0
        if have.any():
            taken = np.flatnonzero(self._flags[flat[have]] != 0)
            if len(taken):
                bad_idx = int(np.flatnonzero(have)[int(taken[0])])
                bad = vaddr + int(page_indices[bad_idx]) * PAGE_SIZE
                raise ValueError(f"vaddr {bad:#x} already mapped")
        if not have.all():
            rows = np.repeat(self._leaf_rows(uleaves, create=True), counts)
            flat = (rows << 9) + (abs_pages & 0x1FF)
        self._pfns[flat] = pfns
        self._flags[flat] = flags

    # -- introspection --------------------------------------------------------

    def present_pfns(self) -> np.ndarray:
        used = self._nrows << 9
        return np.sort(self._pfns[:used][self._flags[:used] != 0])

    def mapped_vaddrs(self) -> List[int]:
        out: List[int] = []
        for pd in sorted(self._rows):
            group = self._rows[pd]
            for leaf_idx in np.flatnonzero(group >= 0):
                row = int(group[leaf_idx])
                entries = np.flatnonzero(self._flags[row << 9 : (row + 1) << 9])
                leaf = (pd << 9) | int(leaf_idx)
                for i1 in entries:
                    out.append(((leaf << 9) | int(i1)) << PAGE_SHIFT)
        return out  # pd/leaf/entry iteration order is address order


class PageTable:
    """One process's 4-level translation tree.

    Every PFN-*changing* mutation bumps :attr:`generation`; flag-only
    changes (:meth:`set_flags`, :meth:`set_flags_range`) do not, since
    they cannot alter what :meth:`translate_range` returns. The walk
    cache keys on the generation, so repeated walks of an unchanged
    range (Fig. 8's recurring attachments) skip the leaf iteration.

    PTE storage is delegated to a fidelity twin chosen at construction
    (see the module docstring); semantics, counters, and fault addresses
    are identical either way.
    """

    def __init__(self) -> None:
        if FIDELITY.columnar:
            self._store = _ColumnarStore()
        else:
            self._store = _RadixStore()
        #: PML4 slots borrowed from other processes (SMARTMAP); value is the
        #: donor PageTable. Borrowed slots are read-through, never modified.
        self.shared_slots: Dict[int, "PageTable"] = {}
        self._present = 0
        #: Bumped on every PFN-changing mutation; invalidates the walk cache.
        self.generation = 0
        #: (vaddr, npages) -> (generation, pfns). Entries store private
        #: copies and hits return copies, so callers can never corrupt it.
        self._walk_cache: Dict[Tuple[int, int], Tuple[int, np.ndarray]] = {}

    # -- SMARTMAP routing helpers ---------------------------------------------

    def _guard_borrowed(self, vaddr: int, npages: int = 1) -> None:
        """Reject mutations touching a borrowed (SMARTMAP) slot.

        Checked *before* any state changes, so a range straddling a
        borrowed slot cannot half-mutate the donor's tree.
        """
        if not self.shared_slots or npages <= 0:
            return
        first = vaddr >> 39
        last = (vaddr + npages * PAGE_SIZE - 1) >> 39
        for slot in range(first, last + 1):
            if slot in self.shared_slots:
                raise ValueError(f"PML4 slot {slot} is borrowed (SMARTMAP); read-only")

    def _range_touches_shared(self, vaddr: int, npages: int) -> bool:
        """True when [vaddr, +npages) crosses a borrowed (SMARTMAP) slot.

        Such ranges read the *donor's* tree, whose mutations do not bump
        this table's generation — the walk cache must bypass them.
        """
        if not self.shared_slots:
            return False
        first = vaddr >> 39
        last = (vaddr + npages * PAGE_SIZE - 1) >> 39
        return any(slot in self.shared_slots for slot in range(first, last + 1))

    def _segments(self, vaddr: int, npages: int) -> Iterator[Tuple[object, int, int, int, int]]:
        """Split a read range at PML4 slot boundaries for store routing.

        Yields ``(store, local_vaddr, npages, page_off, rebase)`` where
        borrowed slots route to the donor's store at the donor-local
        address (SMARTMAP aliases the donor's slot 0, where Kitten
        places all process regions) and ``rebase`` restores borrower
        addresses in fault reports.
        """
        if not self.shared_slots:
            yield self._store, vaddr, npages, 0, 0
            return
        end = vaddr + npages * PAGE_SIZE
        va = vaddr
        off = 0
        while va < end:
            slot = va >> 39
            seg_end = min(end, (slot + 1) << 39)
            take = (seg_end - va) >> PAGE_SHIFT
            donor = self.shared_slots.get(slot)
            if donor is not None:
                yield donor._store, va - (slot << 39), take, off, slot << 39
            else:
                yield self._store, va, take, off, 0
            va = seg_end
            off += take

    def _read_pte(self, page_va: int) -> int:
        """Packed PTE for a page-aligned address, routing borrowed slots."""
        slot = page_va >> 39
        donor = self.shared_slots.get(slot)
        if donor is not None:
            return donor._store.read_pte(page_va - (slot << 39))
        return self._store.read_pte(page_va)

    # -- single-page operations ------------------------------------------------

    def map_page(self, vaddr: int, pfn: int, flags: int = PTE_PRESENT | PTE_WRITABLE | PTE_USER) -> None:
        """Install one PTE; rejects double-mapping and missing PRESENT."""
        if not flags & PTE_PRESENT:
            raise ValueError("mapping must set PTE_PRESENT")
        _check_vaddr(vaddr)
        self._guard_borrowed(vaddr)
        if self._store.read_pte(vaddr) & PTE_PRESENT:
            raise ValueError(f"vaddr {vaddr:#x} already mapped")
        self._store.install_pte(vaddr, pfn, flags)
        self._present += 1
        self.generation += 1

    def unmap_page(self, vaddr: int) -> int:
        """Remove the PTE; returns the PFN it mapped."""
        _check_vaddr(vaddr)
        self._guard_borrowed(vaddr)
        pte = self._store.read_pte(vaddr)
        if not pte & PTE_PRESENT:
            raise PageFault(vaddr)
        self._store.zero_pte(vaddr)
        self._present -= 1
        self.generation += 1
        return pte_pfn(pte)

    def translate(self, vaddr: int, write: bool = False) -> Tuple[int, int]:
        """Return (pfn, flags) for ``vaddr``; raises :class:`PageFault`."""
        page_va = vaddr & ~(PAGE_SIZE - 1)
        _check_vaddr(page_va)
        pte = self._read_pte(page_va)
        if not pte & PTE_PRESENT:
            raise PageFault(vaddr, write)
        if write and not pte & PTE_WRITABLE:
            raise PageFault(vaddr, write=True)
        return pte_pfn(pte), pte_flags(pte)

    def set_flags(self, vaddr: int, set_mask: int = 0, clear_mask: int = 0) -> None:
        """Adjust flag bits on an existing PTE (e.g. pinning)."""
        if clear_mask & PTE_PRESENT:
            raise ValueError("use unmap_page to clear PRESENT")
        page_va = vaddr & ~(PAGE_SIZE - 1)
        _check_vaddr(page_va)
        self._guard_borrowed(page_va)
        if not self._store.rmw_pte_flags(page_va, set_mask, clear_mask):
            raise PageFault(vaddr)

    # -- vectorized range operations --------------------------------------------

    def map_range(self, vaddr: int, pfns: np.ndarray, flags: int = PTE_PRESENT | PTE_WRITABLE | PTE_USER) -> None:
        """Install ``len(pfns)`` PTEs starting at ``vaddr`` (vectorized).

        All-or-nothing: validates the whole range against existing
        mappings *before* creating any structure, so a rejected map
        leaves no empty leaves (and no spuriously claimed PML4 slot).
        """
        if not flags & PTE_PRESENT:
            raise ValueError("mapping must set PTE_PRESENT")
        pfns = np.asarray(pfns, dtype=np.int64)
        if len(pfns) and pfns.min() < 0:
            raise ValueError("negative pfn in range")
        npages = len(pfns)
        _check_range(vaddr, npages)
        self._guard_borrowed(vaddr, npages)
        if npages:
            self._store.map_range(vaddr, pfns, flags)
            self._present += npages
            self.generation += 1

    def unmap_range(self, vaddr: int, npages: int) -> np.ndarray:
        """Remove ``npages`` PTEs; returns the PFNs they mapped."""
        _check_range(vaddr, npages)
        self._guard_borrowed(vaddr, npages)
        out = np.empty(npages, dtype=np.int64)
        if npages:
            self._store.unmap_range(vaddr, npages, out)
            self._present -= npages
            self.generation += 1
        return out

    def translate_range(self, vaddr: int, npages: int) -> np.ndarray:
        """PFNs for ``npages`` starting at ``vaddr`` — the page-table *walk*
        XEMEM uses to build PFN lists. Raises on any hole.

        Repeated walks of an unchanged range are served from the walk
        cache (keyed on :attr:`generation`); ranges that cross a borrowed
        SMARTMAP slot always re-walk, since donor mutations do not bump
        this table's generation. The timing-model counter is charged
        either way — the cache only removes host-side leaf iteration.
        """
        from repro import obs

        obs.get().counter("pagetable.translate.pages").inc(npages)
        if npages == 0:
            return np.empty(0, dtype=np.int64)
        if FASTPATH.walk_cache and not self._range_touches_shared(vaddr, npages):
            key = (vaddr, npages)
            hit = self._walk_cache.get(key)
            if hit is not None and hit[0] == self.generation:
                obs.get().counter("fastpath.walkcache.hits").inc()
                return hit[1].copy()
            out = self._walk(vaddr, npages)
            if hit is None and len(self._walk_cache) >= WALK_CACHE_SLOTS:
                self._walk_cache.pop(next(iter(self._walk_cache)))
            self._walk_cache[key] = (self.generation, out.copy())
            return out
        return self._walk(vaddr, npages)

    def _walk(self, vaddr: int, npages: int) -> np.ndarray:
        """The uncached walk behind :meth:`translate_range`."""
        _check_range(vaddr, npages)
        out = np.empty(npages, dtype=np.int64)
        for store, va, take, off, rebase in self._segments(vaddr, npages):
            if rebase:
                try:
                    store.walk_into(va, take, out[off : off + take])
                except PageFault as exc:
                    raise PageFault(exc.vaddr + rebase, exc.write) from None
            else:
                store.walk_into(va, take, out[off : off + take])
        return out

    def range_flags_all(self, vaddr: int, npages: int, mask: int) -> bool:
        """True when every PTE in the range has all bits of ``mask`` set."""
        _check_range(vaddr, npages)
        ok = True
        for store, va, take, off, rebase in self._segments(vaddr, npages):
            if rebase:
                try:
                    seg_ok = store.range_flags_all(va, take, mask)
                except PageFault as exc:
                    raise PageFault(exc.vaddr + rebase, exc.write) from None
            else:
                seg_ok = store.range_flags_all(va, take, mask)
            ok = ok and seg_ok
        return ok

    def set_flags_range(self, vaddr: int, npages: int, set_mask: int = 0, clear_mask: int = 0) -> None:
        """Adjust flag bits across a mapped range (e.g. bulk pinning).

        Flag changes never alter what :meth:`translate_range` returns, so
        this deliberately does *not* bump :attr:`generation` — recurring
        pin/unpin cycles keep their walk-cache entries warm.
        """
        if clear_mask & PTE_PRESENT:
            raise ValueError("use unmap_range to clear PRESENT")
        _check_range(vaddr, npages)
        self._guard_borrowed(vaddr, npages)
        if npages:
            self._store.set_flags_range(vaddr, npages, set_mask, clear_mask)

    def present_mask(self, vaddr: int, npages: int) -> np.ndarray:
        """Boolean per-page presence for the range; missing leaves read False.

        Unlike :meth:`translate_range` this never faults — it is the probe
        behind the vectorized partial-population fault paths.
        """
        _check_range(vaddr, npages)
        out = np.zeros(npages, dtype=bool)
        for store, va, take, off, _rebase in self._segments(vaddr, npages):
            store.present_mask_into(va, take, out[off : off + take])
        return out

    def flag_mask(self, vaddr: int, npages: int, mask: int) -> np.ndarray:
        """Boolean per-page: present *and* every bit of ``mask`` set."""
        _check_range(vaddr, npages)
        out = np.zeros(npages, dtype=bool)
        for store, va, take, off, _rebase in self._segments(vaddr, npages):
            store.flag_mask_into(va, take, mask, out[off : off + take])
        return out

    def first_missing_flag(self, vaddr: int, npages: int, mask: int) -> int:
        """Page offset of the first page absent or lacking ``mask`` bits, or -1.

        The early-exiting scalar probe behind write-protection fault
        reporting — equivalent to ``np.flatnonzero(~flag_mask(...))[0]``
        without materializing the per-page boolean range.
        """
        _check_range(vaddr, npages)
        for store, va, take, off, _rebase in self._segments(vaddr, npages):
            hit = store.first_missing_flag(va, take, mask)
            if hit >= 0:
                return off + hit
        return -1

    def map_pages_sparse(
        self,
        vaddr: int,
        page_indices: np.ndarray,
        pfns: np.ndarray,
        flags: int = PTE_PRESENT | PTE_WRITABLE | PTE_USER,
    ) -> None:
        """Install PTEs at ``vaddr + idx*PAGE_SIZE`` for each ``idx``.

        ``page_indices`` must be sorted ascending, unique, and
        non-negative (as produced by ``np.flatnonzero`` over a presence
        mask) — violations are rejected before any mutation, since the
        leaf-grouping fill would otherwise collapse duplicate indices to
        one PTE while presence accounting counted them all. All-or-nothing
        like :meth:`map_range`.
        """
        if not flags & PTE_PRESENT:
            raise ValueError("mapping must set PTE_PRESENT")
        page_indices = np.asarray(page_indices, dtype=np.int64)
        pfns = np.asarray(pfns, dtype=np.int64)
        if len(page_indices) != len(pfns):
            raise ValueError("page_indices and pfns disagree on length")
        n = len(page_indices)
        if n == 0:
            return
        if pfns.min() < 0:
            raise ValueError("negative pfn in range")
        if int(page_indices[0]) < 0:
            raise ValueError(f"negative page index {int(page_indices[0])}")
        if n > 1 and int(np.diff(page_indices).min()) <= 0:
            raise ValueError("page_indices must be sorted ascending and unique")
        span = int(page_indices[-1]) + 1
        _check_range(vaddr, span)
        self._guard_borrowed(vaddr, span)
        self._store.map_pages_sparse(vaddr, page_indices, pfns, flags)
        self._present += n
        self.generation += 1

    # -- SMARTMAP -----------------------------------------------------------------

    def share_pml4_slot(self, slot: int, donor: "PageTable") -> None:
        """Alias ``donor``'s whole address space under PML4 ``slot``.

        This is SMARTMAP: translations through ``slot`` read the donor's
        own tree (donor slot 0, where Kitten places all process regions).
        """
        if not 0 <= slot < ENTRIES // 2:
            raise ValueError(f"slot {slot} outside user half")
        if self._store.slot_in_use(slot) or slot in self.shared_slots:
            raise ValueError(f"PML4 slot {slot} already in use")
        if donor is self:
            raise ValueError("cannot SMARTMAP a table into itself")
        self.shared_slots[slot] = donor
        self.generation += 1

    def unshare_pml4_slot(self, slot: int) -> None:
        """Drop a borrowed SMARTMAP slot."""
        if slot not in self.shared_slots:
            raise ValueError(f"PML4 slot {slot} not shared")
        del self.shared_slots[slot]
        self.generation += 1

    # -- introspection --------------------------------------------------------------

    @property
    def present_pages(self) -> int:
        """Number of present PTEs in this table's own tree."""
        return self._present

    def walk_cache_entries(self) -> List[Tuple[int, int, int, np.ndarray]]:
        """Snapshot of the walk cache: (vaddr, npages, generation, pfns).

        Audit tap — returns copies, never mutates the cache or the
        counters, so reading it cannot perturb a run.
        """
        return [
            (vaddr, npages, gen, pfns.copy())
            for (vaddr, npages), (gen, pfns) in self._walk_cache.items()
        ]

    def present_pfns(self) -> np.ndarray:
        """Sorted PFNs of every present PTE in this table's own tree.

        Audit tap for frame-ownership checks (slow; scans every leaf).
        Borrowed SMARTMAP slots are excluded — those frames belong to the
        donor's tree.
        """
        return self._store.present_pfns()

    def mapped_vaddrs(self) -> List[int]:
        """All mapped page-aligned vaddrs in this table's own tree (slow; tests)."""
        return self._store.mapped_vaddrs()
