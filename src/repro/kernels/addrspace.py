"""Virtual address space layout: regions (VMAs) over a page table.

A :class:`Region` is the kernel's bookkeeping for a virtual range — kind,
permissions, and (for lazily-populated Linux VMAs) which pages have been
faulted in. The :class:`AddressSpace` owns the region list, a free-range
finder, and the process's :class:`~repro.kernels.pagetable.PageTable`.

Region kinds matter to the paper:

* ``STATIC`` — Kitten maps heap/stack/text to physical memory at process
  creation (§4.3); these never fault.
* ``LAZY`` — Linux VMAs populate on first touch; single-OS XEMEM
  attachments are LAZY, which is where Fig. 8(b)'s recurring-attachment
  overhead comes from.
* ``EAGER`` — cross-enclave attachments install every PTE from the remote
  PFN list up front (they must: the frames belong to another kernel).
"""

from __future__ import annotations

import enum
from typing import List, Optional

import numpy as np

from repro.kernels.pagetable import (
    PAGE_SIZE,
    PageTable,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
    USER_VA_LIMIT,
)


class RegionKind(enum.Enum):
    """How a region populates: STATIC, LAZY (demand-paged), or EAGER."""
    STATIC = "static"  # mapped fully at creation (Kitten)
    LAZY = "lazy"      # demand-paged (Linux anonymous/local-attach)
    EAGER = "eager"    # mapped fully at attach time (cross-enclave)


class Region:
    """One virtual memory area."""

    def __init__(self, start: int, npages: int, kind: RegionKind, name: str = ""):
        if start % PAGE_SIZE:
            raise ValueError(f"region start {start:#x} not page aligned")
        if npages <= 0:
            raise ValueError(f"empty region {name!r}")
        self.start = start
        self.npages = npages
        self.kind = kind
        self.name = name
        #: PTE flags installed when this region populates. Read-only XEMEM
        #: attachments drop PTE_WRITABLE here so permission lives in the
        #: page table, not just the view layer.
        self.pte_flags = PTE_PRESENT | PTE_WRITABLE | PTE_USER
        #: Pages actually populated (LAZY regions fault these in one by one).
        self.populated = 0
        #: For LAZY regions whose frames are predetermined (local XEMEM
        #: attachments): page i faults in ``backing_pfns[i]``. None means
        #: anonymous memory — the kernel allocates a frame at fault time.
        self.backing_pfns = None

    @property
    def end(self) -> int:
        return self.start + self.npages * PAGE_SIZE

    @property
    def nbytes(self) -> int:
        return self.npages * PAGE_SIZE

    def contains(self, vaddr: int) -> bool:
        """True when ``vaddr`` falls inside the region."""
        return self.start <= vaddr < self.end

    def page_index(self, vaddr: int) -> int:
        """Zero-based page index of ``vaddr`` within the region."""
        if not self.contains(vaddr):
            raise ValueError(f"{vaddr:#x} outside region {self.name!r}")
        return (vaddr - self.start) // PAGE_SIZE

    def __repr__(self) -> str:
        return (
            f"Region({self.name!r}, [{self.start:#x}, {self.end:#x}), "
            f"{self.kind.value}, {self.populated}/{self.npages} populated)"
        )


class AddressSpace:
    """Region list + page table for one process."""

    #: Default base for mmap-style allocations.
    MMAP_BASE = 0x7F00_0000_0000
    #: Kitten confines ordinary regions to PML4 slot 0 so SMARTMAP slots
    #: stay free; slot 0 spans [0, 1<<39).
    SLOT0_LIMIT = 1 << 39

    def __init__(self, va_limit: int = USER_VA_LIMIT):
        self.table = PageTable()
        self.regions: List[Region] = []
        self.va_limit = va_limit

    # -- region management ------------------------------------------------------

    def add_region(self, start: int, npages: int, kind: RegionKind, name: str = "") -> Region:
        """Insert a non-overlapping region; returns it."""
        region = Region(start, npages, kind, name)
        if region.end > self.va_limit:
            raise ValueError(f"region {name!r} exceeds VA limit {self.va_limit:#x}")
        for other in self.regions:
            if region.start < other.end and other.start < region.end:
                raise ValueError(f"region {name!r} overlaps {other.name!r}")
        self.regions.append(region)
        self.regions.sort(key=lambda r: r.start)
        return region

    def remove_region(self, region: Region) -> None:
        """Drop a region from the list (page table untouched)."""
        self.regions.remove(region)

    def find_region(self, vaddr: int) -> Optional[Region]:
        """The region containing ``vaddr``, or None."""
        for region in self.regions:
            if region.contains(vaddr):
                return region
        return None

    def find_free(self, npages: int, base: Optional[int] = None, limit: Optional[int] = None) -> int:
        """First-fit search for an unused virtual range of ``npages``."""
        if npages <= 0:
            raise ValueError(f"bad size {npages}")
        base = self.MMAP_BASE if base is None else base
        limit = self.va_limit if limit is None else limit
        need = npages * PAGE_SIZE
        cursor = base
        for region in self.regions:
            if region.end <= cursor:
                continue
            if region.start >= cursor + need:
                break
            cursor = max(cursor, region.end)
        if cursor + need > limit:
            raise MemoryError(
                f"no free virtual range of {npages} pages in [{base:#x}, {limit:#x})"
            )
        return cursor

    # -- population ---------------------------------------------------------------

    def map_region_pfns(self, region: Region, pfns: np.ndarray,
                        flags: Optional[int] = None) -> None:
        """Back the whole region with ``pfns`` (STATIC/EAGER population).

        ``flags=None`` (the default) installs the region's own
        :attr:`~Region.pte_flags`.
        """
        if len(pfns) != region.npages:
            raise ValueError(
                f"region {region.name!r} has {region.npages} pages, got {len(pfns)} pfns"
            )
        self.table.map_range(region.start, pfns, region.pte_flags if flags is None else flags)
        region.populated = region.npages

    def populate_page(self, region: Region, vaddr: int, pfn: int,
                      flags: Optional[int] = None) -> None:
        """Fault one page of a LAZY region in."""
        if region.kind is not RegionKind.LAZY:
            raise ValueError(f"populate_page on non-LAZY region {region.name!r}")
        region.page_index(vaddr)  # bounds check
        self.table.map_page(
            vaddr & ~(PAGE_SIZE - 1), pfn, region.pte_flags if flags is None else flags
        )
        region.populated += 1

    def populate_pages(self, region: Region, page_indices: np.ndarray,
                       pfns: np.ndarray, flags: Optional[int] = None) -> None:
        """Fault a batch of pages of a LAZY region in at once.

        ``page_indices`` are region-relative page numbers, sorted and
        unique — the vectorized counterpart of repeated
        :meth:`populate_page` calls.
        """
        if region.kind is not RegionKind.LAZY:
            raise ValueError(f"populate_pages on non-LAZY region {region.name!r}")
        page_indices = np.asarray(page_indices, dtype=np.int64)
        if len(page_indices) and not (
            0 <= int(page_indices[0]) and int(page_indices[-1]) < region.npages
        ):
            raise ValueError(f"page index outside region {region.name!r}")
        self.table.map_pages_sparse(
            region.start, page_indices, pfns,
            region.pte_flags if flags is None else flags,
        )
        region.populated += len(page_indices)

    def unmap_region(self, region: Region) -> np.ndarray:
        """Tear down a fully-populated region; returns its PFNs."""
        if region.populated != region.npages:
            raise ValueError(
                f"unmap_region on partially populated {region.name!r}; "
                "use unmap_populated_pages"
            )
        pfns = self.table.unmap_range(region.start, region.npages)
        self.remove_region(region)
        return pfns

    def unmap_populated_pages(self, region: Region) -> np.ndarray:
        """Tear down whatever pages of the region are present (LAZY teardown).

        Probes once with :meth:`~repro.kernels.pagetable.PageTable.present_mask`
        and unmaps each maximal run of present pages in one range
        operation — the cost scales with the number of population holes,
        not the region's page count.
        """
        idx = np.flatnonzero(self.table.present_mask(region.start, region.npages))
        got = np.empty(len(idx), dtype=np.int64)
        if len(idx):
            heads = np.concatenate(([0], np.flatnonzero(np.diff(idx) != 1) + 1))
            for s, e in zip(heads.tolist(), np.concatenate((heads[1:], [len(idx)])).tolist()):
                first, count = int(idx[s]), int(idx[e - 1]) - int(idx[s]) + 1
                got[s:e] = self.table.unmap_range(
                    region.start + first * PAGE_SIZE, count
                )
        self.remove_region(region)
        return got

    # -- diagnostics -----------------------------------------------------------------

    def total_mapped_pages(self) -> int:
        """Present PTE count across the whole address space."""
        return self.table.present_pages

    def __repr__(self) -> str:
        return f"AddressSpace({len(self.regions)} regions, {self.table.present_pages} pages)"
