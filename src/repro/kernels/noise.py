"""OS noise models: Kitten's near-silent profile vs. Linux's fullweight one.

Noise sources are *analytic*: each can enumerate its detour events inside
any time window deterministically (a splitmix64 hash keyed by source seed
and occurrence index supplies jitter), so workloads can account for noise
without simulating millions of tick events, and the Selfish Detour
benchmark (Fig. 7) can enumerate exact event lists.

Profiles (constants in :class:`~repro.hw.costs.CostModel`):

* **Kitten** — a frequent ≈12 µs hardware baseline plus periodic ≈100 µs
  SMIs; the paper's Fig. 7 bottom panel.
* **Linux** — a 1 kHz timer tick plus background daemon bursts with
  exponentially distributed lengths; the heavy tail drives the Linux-only
  variance of Figs. 8 and 9.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.hw.costs import CostModel


def splitmix64(x: int) -> int:
    """The splitmix64 mixing function: deterministic, well-distributed."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = x
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def _unit(seed: int, k: int, salt: int) -> float:
    """Deterministic uniform in [0, 1) for occurrence ``k`` of a source."""
    return splitmix64(splitmix64(seed * 0x100000001B3 + salt) ^ k) / 2**64


class NoiseSource:
    """Base interface: enumerate and integrate detours in a window."""

    tag = "noise"

    def events_in(self, t0: int, t1: int) -> List[Tuple[int, int]]:
        """(start_ns, duration_ns) of every detour starting in [t0, t1)."""
        raise NotImplementedError

    def stolen_in(self, t0: int, t1: int) -> int:
        """Nanoseconds stolen from the app in [t0, t1), clipped to it."""
        total = 0
        # Look back one mean period so a detour straddling t0 is counted.
        for start, dur in self.events_in(max(0, t0 - self.lookback_ns()), t1):
            lo, hi = max(start, t0), min(start + dur, t1)
            if hi > lo:
                total += hi - lo
        return total

    def lookback_ns(self) -> int:
        return 0


class PeriodicNoise(NoiseSource):
    """Detours every ``period_ns`` with optional phase jitter and
    exponentially distributed duration.

    ``duration_ns`` is the mean; with ``exp_duration`` the k-th event's
    length is ``-ln(u_k) * duration_ns`` (heavy tail, daemon-like),
    otherwise it is constant (tick/SMI-like). Phase jitter displaces each
    occurrence by up to ``jitter_frac`` of a period.
    """

    def __init__(self, period_ns: int, duration_ns: int, tag: str,
                 seed: int = 0, jitter_frac: float = 0.0,
                 exp_duration: bool = False, phase_ns: int = 0):
        if period_ns <= 0 or duration_ns < 0:
            raise ValueError("period must be positive, duration non-negative")
        if not 0.0 <= jitter_frac <= 0.5:
            raise ValueError("jitter_frac must be in [0, 0.5]")
        self.period_ns = period_ns
        self.duration_ns = duration_ns
        self.tag = tag
        self.seed = seed
        self.jitter_frac = jitter_frac
        self.exp_duration = exp_duration
        self.phase_ns = phase_ns

    def _occurrence(self, k: int) -> Tuple[int, int]:
        start = self.phase_ns + k * self.period_ns
        if self.jitter_frac:
            start += int(
                (2 * _unit(self.seed, k, 1) - 1) * self.jitter_frac * self.period_ns
            )
        if self.exp_duration:
            u = max(_unit(self.seed, k, 2), 1e-12)
            dur = int(-math.log(u) * self.duration_ns)
        else:
            dur = self.duration_ns
        return max(start, 0), dur

    def events_in(self, t0: int, t1: int) -> List[Tuple[int, int]]:
        """(start_ns, duration_ns) of occurrences starting in [t0, t1)."""
        if t1 <= t0:
            return []
        k_lo = max(0, (t0 - self.phase_ns) // self.period_ns - 1)
        k_hi = (t1 - self.phase_ns) // self.period_ns + 1
        out = []
        for k in range(k_lo, k_hi + 1):
            start, dur = self._occurrence(k)
            if t0 <= start < t1:
                out.append((start, dur))
        return out

    def lookback_ns(self) -> int:
        # Exponential durations are effectively bounded by ~30 means.
        return (30 if self.exp_duration else 2) * max(self.duration_ns, self.period_ns)


def kitten_noise_profile(costs: CostModel, seed: int = 0) -> List[NoiseSource]:
    """Fig. 7's Kitten profile: hardware baseline + SMIs."""
    return [
        PeriodicNoise(
            costs.kitten_baseline_period_ns,
            costs.kitten_baseline_detour_ns,
            tag="hw-baseline",
            seed=seed * 31 + 1,
            jitter_frac=0.2,
        ),
        PeriodicNoise(
            costs.smi_period_ns,
            costs.smi_detour_ns,
            tag="smi",
            seed=seed * 31 + 2,
            jitter_frac=0.05,
        ),
    ]


def linux_noise_profile(costs: CostModel, seed: int = 0) -> List[NoiseSource]:
    """Fullweight Linux: timer ticks plus heavy-tailed daemon bursts."""
    return [
        PeriodicNoise(
            costs.linux_tick_period_ns,
            costs.linux_tick_cost_ns,
            tag="tick",
            seed=seed * 31 + 3,
        ),
        PeriodicNoise(
            costs.linux_daemon_period_ns,
            costs.linux_daemon_burst_ns,
            tag="daemon",
            seed=seed * 31 + 4,
            jitter_frac=0.5,
            exp_duration=True,
        ),
        # SMIs hit regardless of the OS.
        PeriodicNoise(
            costs.smi_period_ns,
            costs.smi_detour_ns,
            tag="smi",
            seed=seed * 31 + 5,
            jitter_frac=0.05,
        ),
    ]


def attach_noise_profile(kernel, seed: int = 0) -> None:
    """Install the kernel-appropriate noise profile on every core it owns."""
    maker = (
        kitten_noise_profile
        if kernel.kernel_type == "kitten"
        else linux_noise_profile
    )
    for core in kernel.cores:
        kernel.noise_sources[core.core_id] = maker(
            kernel.costs, seed=seed * 1009 + core.core_id
        )
