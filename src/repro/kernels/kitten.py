"""The Kitten lightweight-kernel model.

Kitten's defining behaviours, per the paper (§4, §4.3):

* **Static address spaces** — every region (text, heap, stack) is mapped
  to physical memory at process creation; there is no demand paging and
  originally no way to grow a region.
* **SMARTMAP** for local shared memory — processes share entire address
  spaces by aliasing each other's page-table root into a spare top-level
  (PML4) slot; process *p*'s view of process *q*'s address ``va`` is
  ``((q_rank + 1) << 39) | va``.
* **Dynamic heap expansion** — the paper's Kitten extension: a process
  can map a *remote* PFN list into fresh virtual space above its heap
  without disturbing SMARTMAP or the static regions. :meth:`map_remote_pfns`
  implements it.
* **Noise-free execution** — no timer ticks or daemons; the only noise is
  the hardware baseline and SMIs (Fig. 7), wired up in
  :mod:`repro.kernels.noise`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import obs
from repro.hw.memory import FrameAllocator, FrameRange, OutOfMemoryError
from repro.hw.topology import Core
from repro.kernels.addrspace import Region, RegionKind
from repro.kernels.base import KernelBase, KernelError
from repro.kernels.pagetable import (
    PAGE_SIZE,
    PML4_SLOT_SPAN,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
)
from repro.kernels.process import OSProcess

#: Default static layout (page counts).
TEXT_PAGES = 16
STACK_PAGES = 256          # 1 MiB
DEFAULT_HEAP_PAGES = 1024  # 4 MiB

TEXT_BASE = 0x0000_0040_0000    # 4 MiB
HEAP_BASE = 0x0000_1000_0000    # 256 MiB
STACK_TOP = 0x0000_7FFF_F000    # just under 2 GiB, inside PML4 slot 0


class KittenKernel(KernelBase):
    """The Kitten lightweight enclave kernel (see module docstring)."""
    kernel_type = "kitten"

    def __init__(self, *args, heap_pages: int = DEFAULT_HEAP_PAGES, **kwargs):
        super().__init__(*args, **kwargs)
        self.heap_pages = heap_pages
        #: Per-pid allocator over the dynamic area's *virtual* pages
        #: (between the heap end and the stack guard), so detached
        #: regions' address space is recycled.
        self._dyn_va = {}

    # -- static process creation ------------------------------------------------------

    def _on_process_created(self, proc: OSProcess) -> None:
        """Map text, heap, and stack statically, all inside PML4 slot 0."""
        aspace = proc.aspace
        for base, npages, name in (
            (TEXT_BASE, TEXT_PAGES, "text"),
            (HEAP_BASE, self.heap_pages, "heap"),
            (STACK_TOP - STACK_PAGES * PAGE_SIZE, STACK_PAGES, "stack"),
        ):
            region = aspace.add_region(base, npages, RegionKind.STATIC, name)
            aspace.map_region_pfns(region, self.alloc_pfns(npages))
        dyn_start_page = (HEAP_BASE + self.heap_pages * PAGE_SIZE) // PAGE_SIZE
        dyn_end_page = (STACK_TOP - STACK_PAGES * PAGE_SIZE) // PAGE_SIZE
        # page-numbered VA allocator for the dynamic expansion area
        self._dyn_va[proc.pid] = FrameAllocator(
            dyn_start_page, dyn_end_page - dyn_start_page
        )

    def heap_region(self, proc: OSProcess) -> Region:
        """The process's statically mapped heap region."""
        self._own_process(proc)
        for region in proc.aspace.regions:
            if region.name == "heap":
                return region
        raise KernelError(f"{proc!r} has no heap")

    # -- SMARTMAP (local shared memory) --------------------------------------------------

    @staticmethod
    def smartmap_slot(donor_pid: int) -> int:
        """SMARTMAP uses PML4 slot ``rank + 1`` for each local process."""
        slot = donor_pid + 1
        if not 1 <= slot < 256:
            raise KernelError(f"pid {donor_pid} has no SMARTMAP slot")
        return slot

    def smartmap_attach(self, attacher: OSProcess, donor: OSProcess) -> int:
        """Alias ``donor``'s whole address space into ``attacher``.

        Returns the base such that ``base | donor_va`` addresses the
        donor's ``donor_va``. Pure page-table-root sharing — O(1), no
        per-page work; this is why SMARTMAP is fast but single-OS-only.
        """
        self._own_process(attacher)
        self._own_process(donor)
        slot = self.smartmap_slot(donor.pid)
        attacher.aspace.table.share_pml4_slot(slot, donor.aspace.table)
        obs.get().counter("kitten.smartmap.attaches").inc()
        return slot * PML4_SLOT_SPAN

    def smartmap_detach(self, attacher: OSProcess, donor: OSProcess) -> None:
        """Drop the SMARTMAP alias of ``donor`` from ``attacher``."""
        self._own_process(attacher)
        attacher.aspace.table.unshare_pml4_slot(self.smartmap_slot(donor.pid))

    def smartmap_address(self, donor: OSProcess, donor_va: int) -> int:
        """The address at which attachers see ``donor_va`` of ``donor``."""
        return self.smartmap_slot(donor.pid) * PML4_SLOT_SPAN + donor_va

    # -- dynamic heap expansion (the paper's Kitten extension) -----------------------------

    def expand_heap(self, proc: OSProcess, npages: int, name: str = "dyn") -> Region:
        """Carve virtual space above the heap for a remote mapping.

        Keeps everything inside PML4 slot 0 so SMARTMAP slots stay free
        and the static regions are untouched (paper §4.3). Detached
        regions' address space is recycled via :meth:`unmap_attachment`.
        """
        self._own_process(proc)
        try:
            va_run = self._dyn_va[proc.pid].alloc(npages)
        except OutOfMemoryError as err:
            raise MemoryError(
                f"dynamic region of {npages} pages does not fit between the "
                f"heap and the stack"
            ) from err
        base = va_run.start_pfn * PAGE_SIZE
        region = proc.aspace.add_region(base, npages, RegionKind.EAGER, name)
        obs.get().counter("kitten.heap.expansions").inc()
        return region

    def unmap_attachment(self, proc: OSProcess, region: Region):
        """Generator: tear down an attachment and recycle its VA space."""
        start_page = region.start // PAGE_SIZE
        npages = region.npages
        pfns = yield from super().unmap_attachment(proc, region)
        dyn = self._dyn_va.get(proc.pid)
        if dyn is not None and dyn.start_pfn <= start_page < dyn.start_pfn + dyn.nframes:
            dyn.free(FrameRange(start_page, npages))
        return pfns

    def map_remote_pfns(self, proc: OSProcess, pfns: np.ndarray, name: str = "xemem-att",
                        core: Optional[Core] = None,
                        extra_per_page_ns: int = 0,
                        writable: bool = True):
        """Generator: map a remote PFN list via dynamic heap expansion."""
        self._own_process(proc)
        region = self.expand_heap(proc, len(pfns), name)
        region.pte_flags = PTE_PRESENT | PTE_USER | (PTE_WRITABLE if writable else 0)
        core = core or self.service_core
        install_ns = len(pfns) * (self.costs.map_install_per_page_ns + extra_per_page_ns)
        yield from core.occupy(install_ns, f"xemem-map:{len(pfns)}p")
        proc.aspace.map_region_pfns(region, pfns)
        return region
