"""One generator per paper figure/table.

Every function builds the paper's exact experimental configuration from
scratch, runs it on the virtual clock, and returns the same rows/series
the paper reports (plus the paper's own numbers for side-by-side
comparison in EXPERIMENTS.md). Repetition counts are parameters —
defaults are sized so the full harness finishes in minutes of wall time;
the paper's counts (500 attachments, 10 runs) are equally valid inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.bench.configs import (
    INSITU_CONFIG_NAMES,
    build_cokernel_system,
    build_insitu_rig,
)
from repro.cluster import Cluster, ClusterConfig
from repro.cluster.rdma import RdmaBandwidthTest
from repro.hw.costs import GB, KB, MB, PAGE_4K, gib_per_s
from repro.sim.record import SeriesStats
from repro.workloads.hpccg import HpccgProblem
from repro.workloads.insitu import InSituConfig
from repro.workloads.selfish import SelfishDetour
from repro.xemem.api import XpmemApi

#: Sizes swept by Figures 5 and 6.
SWEEP_SIZES = (128 * MB, 256 * MB, 512 * MB, 1 * GB)


# --------------------------------------------------------------------------- util


def _attach_loop(rig, kitten_enclave, attacher_kernel, attacher_core_id,
                 size_bytes: int, reps: int, read_after: bool):
    """One exporter/attacher pair doing ``reps`` attach(+read)/detach
    cycles; returns per-attachment durations (ns)."""
    eng = rig.engine
    kitten = kitten_enclave.kernel
    npages = -(-size_bytes // PAGE_4K)
    kitten.heap_pages = npages + 64
    exporter = kitten.create_process("exporter")
    attacher = attacher_kernel.create_process("attacher", core_id=attacher_core_id)
    heap = kitten.heap_region(exporter)

    def run():
        api_x, api_a = XpmemApi(exporter), XpmemApi(attacher)
        segid = yield from api_x.xpmem_make(heap.start, size_bytes)
        apid = yield from api_a.xpmem_get(segid)
        durations = []
        for _ in range(reps):
            t0 = eng.now
            att = yield from api_a.xpmem_attach(apid)
            if read_after:
                yield from attacher_kernel.touch_pages(
                    attacher, att.vaddr, att.npages
                )
            durations.append(eng.now - t0)
            yield from api_a.xpmem_detach(att)
        return durations

    return run


# ------------------------------------------------------------------------ Figure 5


@dataclass
class Fig5Result:
    """Fig. 5 series plus the paper's reference values."""
    sizes_bytes: List[int]
    attach_gib_s: List[float]
    attach_read_gib_s: List[float]
    rdma_gib_s: List[float]
    paper = {
        "attach_gib_s": 13.0,
        "attach_read_gib_s": 12.0,
        "rdma_gib_s": 3.4,
    }


def fig5_throughput(reps: int = 20, sizes: Sequence[int] = SWEEP_SIZES) -> Fig5Result:
    """Fig. 5: cross-enclave attach throughput vs RDMA verbs over IB.

    One Kitten co-kernel exports regions of each size; a native Linux
    process attaches ``reps`` times (the paper uses 500 — the throughput
    is deterministic here, so fewer repetitions lose nothing). The RDMA
    series runs the verbs write test between two SR-IOV VFs.
    """
    attach, attach_read, rdma = [], [], []
    for size in sizes:
        for read_after, out in ((False, attach), (True, attach_read)):
            rig = build_cokernel_system(
                num_cokernels=1, cokernel_mem=int(size + 64 * MB)
            )
            runner = _attach_loop(
                rig, rig.cokernels[0], rig.linux.kernel, 2, size, reps, read_after
            )
            durations = rig.engine.run_process(runner())
            mean_ns = sum(durations) / len(durations)
            out.append(gib_per_s(size, mean_ns))
        # RDMA baseline at the same transfer size
        rig = build_cokernel_system(num_cokernels=1)
        test = RdmaBandwidthTest(rig.engine, rig.node.costs)

        def rdma_run(test=test, size=size):
            result = yield from test.run(size, repetitions=max(5, reps // 4))
            return result

        rdma.append(rig.engine.run_process(rdma_run()).bandwidth_gib_s)
    return Fig5Result(list(sizes), attach, attach_read, rdma)


# ------------------------------------------------------------------------ Figure 6


@dataclass
class Fig6Result:
    """Fig. 6 per-size throughput series over enclave counts."""
    enclave_counts: List[int]
    sizes_bytes: List[int]
    #: throughput[size][i] for enclave_counts[i] (GiB/s per pair).
    throughput: Dict[int, List[float]]
    paper_note = (
        "≈13 GiB/s at 1 enclave, a slight dip to ≈12 GiB/s at 2, then flat "
        "through 8 for every size"
    )


def fig6_scalability(reps: int = 5,
                     enclave_counts: Sequence[int] = (1, 2, 4, 8),
                     sizes: Sequence[int] = SWEEP_SIZES,
                     ipi_target_policy: str = "core0") -> Fig6Result:
    """Fig. 6: per-pair attach throughput as co-kernel enclaves scale.

    N one-core/their-own-memory Kitten enclaves each serve one dedicated
    native Linux attacher process, all running concurrently (the paper's
    1:1 model). Reported value is each size's mean per-pair throughput.
    """
    throughput: Dict[int, List[float]] = {size: [] for size in sizes}
    for count in enclave_counts:
        for size in sizes:
            rig = build_cokernel_system(
                num_cokernels=count,
                cokernel_mem=int(size + 64 * MB),
                ipi_target_policy=ipi_target_policy,
            )
            procs = []
            for i, kitten_enclave in enumerate(rig.cokernels):
                runner = _attach_loop(
                    rig, kitten_enclave, rig.linux.kernel, 1 + (i % 7),
                    size, reps, read_after=False,
                )
                procs.append(rig.engine.spawn(runner(), name=f"pair{i}"))
            rig.engine.run()
            per_pair = []
            for proc in procs:
                durations = proc.result
                per_pair.append(gib_per_s(size, sum(durations) / len(durations)))
            throughput[size].append(sum(per_pair) / len(per_pair))
    return Fig6Result(list(enclave_counts), list(sizes), throughput)


# ------------------------------------------------------------------------- Table 2


@dataclass
class Table2Row:
    """One Table 2 row (export/attach pair and throughput)."""
    exporting: str
    attaching: str
    gib_s: float
    gib_s_without_rb: Optional[float]


@dataclass
class Table2Result:
    """All Table 2 rows plus the paper's values."""
    rows: List[Table2Row]
    paper = {
        ("Kitten", "Linux"): (12.841, None),
        ("Kitten", "Linux (VM)"): (3.991, 8.79),
        ("Linux (VM)", "Kitten"): (12.606, None),
    }


def table2_vm_throughput(reps: int = 5, size_bytes: int = 1 * GB,
                         memmap_backend: str = "rbtree",
                         memmap_coalesce: bool = False) -> Table2Result:
    """Table 2: 1 GB attach throughput across the VM boundary.

    Three rows: the native baseline, guest-attaches-to-host (Fig. 4(a),
    per-page memory-map inserts), and host-attaches-to-guest (Fig. 4(b),
    cached walks). Ablations A (radix backend) and C (entry coalescing)
    re-run this with different ``memmap_*`` arguments.
    """
    npages = -(-size_bytes // PAGE_4K)
    rows: List[Table2Row] = []

    # Row 1: Kitten exports, native Linux attaches
    rig = build_cokernel_system(num_cokernels=1, cokernel_mem=int(size_bytes + 64 * MB))
    runner = _attach_loop(rig, rig.cokernels[0], rig.linux.kernel, 2,
                          size_bytes, reps, read_after=False)
    durations = rig.engine.run_process(runner())
    rows.append(Table2Row("Kitten", "Linux",
                          gib_per_s(size_bytes, sum(durations) / len(durations)), None))

    # Row 2: Kitten exports, Linux VM (on the Linux host) attaches
    rig = build_cokernel_system(
        num_cokernels=1, with_vm=True, vm_host="linux",
        cokernel_mem=int(size_bytes + 64 * MB),
        memmap_backend=memmap_backend, memmap_coalesce=memmap_coalesce,
    )
    eng = rig.engine
    kitten = rig.cokernels[0].kernel
    kitten.heap_pages = npages + 64
    exporter = kitten.create_process("exporter")
    guest = rig.vm.kernel
    attacher = guest.create_process("attacher")
    heap = kitten.heap_region(exporter)
    vmm = guest.vmm

    def vm_attach():
        api_x, api_a = XpmemApi(exporter), XpmemApi(attacher)
        segid = yield from api_x.xpmem_make(heap.start, size_bytes)
        apid = yield from api_a.xpmem_get(segid)
        durations, inserts = [], []
        for _ in range(reps):
            t0 = eng.now
            att = yield from api_a.xpmem_attach(apid)
            durations.append(eng.now - t0)
            inserts.append(vmm.insert_work_log[-1])
            yield from api_a.xpmem_detach(att)
        return durations, inserts

    durations, inserts = eng.run_process(vm_attach())
    mean_ns = sum(durations) / len(durations)
    mean_insert = sum(inserts) / len(inserts)
    rows.append(Table2Row(
        "Kitten", "Linux (VM)",
        gib_per_s(size_bytes, mean_ns),
        gib_per_s(size_bytes, mean_ns - mean_insert),
    ))

    # Row 3: Linux VM exports, native Kitten attaches
    rig = build_cokernel_system(
        num_cokernels=1, with_vm=True, vm_host="linux",
        cokernel_mem=int(size_bytes + 64 * MB),
        vm_ram=int(size_bytes + 1 * GB),
        memmap_backend=memmap_backend, memmap_coalesce=memmap_coalesce,
    )
    eng = rig.engine
    kitten = rig.cokernels[0].kernel
    guest = rig.vm.kernel
    attacher = kitten.create_process("attacher")
    exporter = guest.create_process("exporter")

    def guest_export():
        region = yield from guest.mmap_anonymous(exporter, size_bytes)
        yield from guest.touch_pages(exporter, region.start, region.npages)
        api_x, api_a = XpmemApi(exporter), XpmemApi(attacher)
        segid = yield from api_x.xpmem_make(region.start, size_bytes)
        apid = yield from api_a.xpmem_get(segid)
        durations = []
        for _ in range(reps):
            t0 = eng.now
            att = yield from api_a.xpmem_attach(apid)
            durations.append(eng.now - t0)
            yield from api_a.xpmem_detach(att)
        return durations

    durations = eng.run_process(guest_export())
    rows.append(Table2Row(
        "Linux (VM)", "Kitten",
        gib_per_s(size_bytes, sum(durations) / len(durations)), None,
    ))
    return Table2Result(rows)


# ------------------------------------------------------------------------- Figure 7


@dataclass
class Fig7Result:
    #: (time_s, duration_us, source) for every detour in the window.
    """Fig. 7 detour list and per-source magnitudes."""
    detours: List[tuple]
    baseline_us: float
    smi_us: float
    attach_detour_us: Dict[str, float]  # per attachment size
    paper_note = (
        "baseline ≈12 µs frequent noise, ≈100 µs periodic SMIs; 4 KB "
        "attachments vanish into the baseline, 2 MB land below the SMI "
        "band, 1 GB detours are 2 orders larger (≈23–24 ms)"
    )


def fig7_noise(duration_s: int = 10,
               attach_sizes: Sequence[int] = (4 * KB, 2 * MB, 1 * GB)) -> Fig7Result:
    """Fig. 7: Kitten noise profile while serving XEMEM attachments.

    A single-core Kitten enclave exports one region per size; a Linux
    process attaches each, sleeps one second, and repeats for the window
    (the paper's §5.5 loop). The Selfish Detour benchmark enumerates
    every detour on the Kitten core.
    """
    second = 1_000_000_000
    total = sum(attach_sizes)
    rig = build_cokernel_system(
        num_cokernels=1, cokernel_mem=int(total + 128 * MB), with_noise=True, seed=11
    )
    eng = rig.engine
    kitten = rig.cokernels[0].kernel
    kitten.heap_pages = -(-total // PAGE_4K) + 16
    exporter = kitten.create_process("exporter")
    linux = rig.linux.kernel
    heap = kitten.heap_region(exporter)

    def attach_cycle():
        api_x = XpmemApi(exporter)
        offset = 0
        handles = []
        for size in attach_sizes:
            segid = yield from api_x.xpmem_make(heap.start + offset, size)
            offset += -(-size // PAGE_4K) * PAGE_4K
            proc = linux.create_process(f"att-{size}", core_id=2)
            api_a = XpmemApi(proc)
            apid = yield from api_a.xpmem_get(segid)
            handles.append((api_a, apid, size))
        while eng.now < duration_s * second:
            for api_a, apid, _size in handles:
                att = yield from api_a.xpmem_attach(apid)
                yield from api_a.xpmem_detach(att)
            yield eng.sleep(1 * second)

    proc = eng.spawn(attach_cycle(), name="cycle")
    eng.run_until_complete(proc)

    sd = SelfishDetour(kitten, kitten.service_core.core_id)
    events = sd.detours(0, duration_s * second)
    detours = [(ev.time_ns / 1e9, ev.duration_us, ev.source) for ev in events]
    per_size: Dict[str, float] = {}
    for size in attach_sizes:
        pages = -(-size // PAGE_4K)
        walks = [
            ev.duration_us for ev in events if ev.source == f"xemem-walk:{pages}p"
        ]
        label = _size_label(size)
        per_size[label] = sum(walks) / len(walks) if walks else 0.0
    costs = rig.node.costs
    return Fig7Result(
        detours=detours,
        baseline_us=costs.kitten_baseline_detour_ns / 1e3,
        smi_us=costs.smi_detour_ns / 1e3,
        attach_detour_us=per_size,
    )


def _size_label(nbytes: int) -> str:
    if nbytes >= GB:
        return f"{nbytes // GB}GB"
    if nbytes >= MB:
        return f"{nbytes // MB}MB"
    return f"{nbytes // KB}KB"


# ------------------------------------------------------------------------- Figure 8


@dataclass
class Fig8Cell:
    """One Fig. 8 bar: config x execution x attach model."""
    config: str
    execution: str
    attach: str
    mean_s: float
    stdev_s: float
    samples: List[float]


@dataclass
class Fig8Result:
    """All Fig. 8 cells with paper-shape notes."""
    cells: List[Fig8Cell]
    paper_note = (
        "sync slower than async everywhere; Kitten/Linux best; Linux-only "
        "shows the widest variance; recurring+sync is worst for the "
        "virtualized and Linux-only configurations (Fig. 8(a)/(b))"
    )

    def cell(self, config: str, execution: str, attach: str) -> Fig8Cell:
        """Look one Fig. 8 cell up by its coordinates."""
        for c in self.cells:
            if (c.config, c.execution, c.attach) == (config, execution, attach):
                return c
        raise KeyError((config, execution, attach))


def fig8_single_node(runs: int = 5,
                     configs: Sequence[str] = INSITU_CONFIG_NAMES,
                     executions: Sequence[str] = ("sync", "async"),
                     attaches: Sequence[str] = ("one_time", "recurring"),
                     iterations: int = 600,
                     comm_interval: int = 40,
                     data_bytes: int = 512 * MB) -> Fig8Result:
    """Fig. 8: the single-node in situ benchmark, all Table 3 configs ×
    both execution models × both attachment models, ``runs`` seeds each
    (the paper uses 10 runs)."""
    cells = []
    for attach in attaches:
        for execution in executions:
            for name in configs:
                stats = SeriesStats()
                samples = []
                for seed in range(runs):
                    cfg = InSituConfig(
                        execution=execution, attach=attach,
                        iterations=iterations, comm_interval=comm_interval,
                        data_bytes=data_bytes,
                        problem=HpccgProblem(100, 100, 100),
                    )
                    rig = build_insitu_rig(name, cfg, seed=seed + 1)
                    res = rig["workload"].run()
                    if not res.data_marks_verified:
                        raise AssertionError("shared-memory handshake corrupt")
                    stats.add(res.sim_time_s)
                    samples.append(res.sim_time_s)
                cells.append(Fig8Cell(name, execution, attach,
                                      stats.mean, stats.stdev, samples))
    return Fig8Result(cells)


# ------------------------------------------------------------------------- Figure 9


@dataclass
class Fig9Point:
    """One Fig. 9 data point (composition, node count)."""
    mode: str
    attach: str
    nodes: int
    mean_s: float
    stdev_s: float
    samples: List[float]


@dataclass
class Fig9Result:
    """All Fig. 9 points with series access."""
    points: List[Fig9Point]
    paper_note = (
        "async weak scaling: multi-enclave flat and consistent; Linux-only "
        "declines steadily; with recurring attachments Linux-only wins at "
        "one node and loses beyond two"
    )

    def series(self, mode: str, attach: str) -> List[Fig9Point]:
        """One composition's points, ordered by node count."""
        return sorted(
            (p for p in self.points if p.mode == mode and p.attach == attach),
            key=lambda p: p.nodes,
        )


def fig9_multi_node(runs: int = 3,
                    node_counts: Sequence[int] = (1, 2, 4, 8),
                    modes: Sequence[str] = ("linux_only", "multi_enclave"),
                    attaches: Sequence[str] = ("one_time", "recurring"),
                    iterations: int = 300,
                    comm_interval: int = 30,
                    data_bytes: int = 1 * GB) -> Fig9Result:
    """Fig. 9: weak-scaling in situ runs on the simulated cluster
    (the paper uses 5 runs per point)."""
    points = []
    for attach in attaches:
        for mode in modes:
            for nodes in node_counts:
                stats = SeriesStats()
                samples = []
                for seed in range(runs):
                    cfg = ClusterConfig(
                        nodes=nodes, enclave_mode=mode, attach=attach,
                        iterations=iterations, comm_interval=comm_interval,
                        data_bytes=data_bytes, seed=seed + 1,
                    )
                    res = Cluster(cfg).run()
                    for per_node in res.per_node:
                        if not per_node.data_marks_verified:
                            raise AssertionError("shared-memory handshake corrupt")
                    stats.add(res.completion_s)
                    samples.append(res.completion_s)
                points.append(Fig9Point(mode, attach, nodes,
                                        stats.mean, stats.stdev, samples))
    return Fig9Result(points)
