"""ASCII plots for the CLI: scatter (Fig. 7 style) and line series.

No plotting dependency exists in the offline environment, and the
figures are simple enough that character plots carry the same
information the paper's postscript does: bands of points at different
magnitudes (Fig. 7), or a handful of trend lines (Figs. 5/6/9).
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

#: Characters used to distinguish series in scatter/line plots.
MARKS = "ox+*#@%&"


def render_scatter(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    log_y: bool = False,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Scatter plot of named point series onto a character grid.

    ``series`` maps a label to (x, y) points. With ``log_y`` the vertical
    axis is decades — the right shape for Fig. 7, whose detours span four
    orders of magnitude.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("nothing to plot")
    if log_y and any(y <= 0 for _x, y in points):
        raise ValueError("log_y requires positive y values")
    xs = [x for x, _y in points]
    ys = [(math.log10(y) if log_y else y) for _x, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for mark, (label, pts) in zip(MARKS, series.items()):
        for x, y in pts:
            yy = math.log10(y) if log_y else y
            col = int((x - x_lo) / x_span * (width - 1))
            row = (height - 1) - int((yy - y_lo) / y_span * (height - 1))
            grid[row][col] = mark

    lines = [title] if title else []
    top_label = f"10^{y_hi:.1f}" if log_y else f"{y_hi:g}"
    bot_label = f"10^{y_lo:.1f}" if log_y else f"{y_lo:g}"
    margin = max(len(top_label), len(bot_label), len(y_label)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            prefix = top_label
        elif i == height - 1:
            prefix = bot_label
        elif i == height // 2 and y_label:
            prefix = y_label
        else:
            prefix = ""
        lines.append(f"{prefix:>{margin}} |" + "".join(row))
    lines.append(f"{'':>{margin}} +" + "-" * width)
    x_axis = f"{x_lo:g}"
    x_axis += " " * max(1, width - len(x_axis) - len(f"{x_hi:g}")) + f"{x_hi:g}"
    lines.append(f"{'':>{margin}}  " + x_axis + (f"  ({x_label})" if x_label else ""))
    legend = "   ".join(
        f"{mark}={label}" for mark, label in zip(MARKS, series.keys())
    )
    lines.append(f"{'':>{margin}}  legend: {legend}")
    return "\n".join(lines)


def render_lines(
    series: Dict[str, List[float]],
    xs: Sequence[float],
    width: int = 64,
    height: int = 16,
    title: str = "",
    x_label: str = "",
) -> str:
    """Line-ish plot: one mark per series at each x (Figs. 6/9 shape)."""
    as_points = {
        label: list(zip(xs, values)) for label, values in series.items()
    }
    return render_scatter(
        as_points, width=width, height=height, title=title, x_label=x_label
    )
