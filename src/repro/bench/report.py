"""Plain-text rendering of experiment results (for EXPERIMENTS.md)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def render_table(headers: Sequence[str], rows: List[Sequence], title: str = "") -> str:
    """Fixed-width ASCII table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(series: Dict[str, List], x_label: str, xs: List, title: str = "") -> str:
    """One column per named series, rows indexed by ``xs``."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return render_table(headers, rows, title=title)


def render_bars(items: List[Tuple[str, float]], width: int = 50,
                title: str = "", unit: str = "", baseline: float = 0.0) -> str:
    """Horizontal ASCII bar chart for quick terminal comparison.

    ``baseline`` shifts the bar origin (useful when all values share a
    large common floor, e.g. completion times around 140 s).
    """
    if not items:
        raise ValueError("nothing to chart")
    label_w = max(len(label) for label, _v in items)
    top = max(v for _l, v in items)
    if top <= baseline:
        raise ValueError("baseline must be below the maximum value")
    lines = [title] if title else []
    for label, value in items:
        filled = int(round(width * max(value - baseline, 0) / (top - baseline)))
        bar = "#" * filled
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.2f}{unit}")
    if baseline:
        lines.append(f"{'':{label_w}} | (bars start at {baseline:g}{unit})")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
