"""Experiment drivers that regenerate the paper's figures and tables.

* :mod:`repro.bench.configs` — the paper's standard node/enclave rigs
  (R420 co-kernel systems for §5, OptiPlex Table 3 configurations for
  §6, cluster nodes for §7).
* :mod:`repro.bench.figures` — one generator per figure/table, each
  returning the same rows/series the paper reports.
* :mod:`repro.bench.report` — plain-text rendering for EXPERIMENTS.md.
"""

from repro.bench.configs import (
    CokernelRig,
    build_cokernel_system,
    build_insitu_rig,
    INSITU_CONFIG_NAMES,
)
from repro.bench.figures import (
    fig5_throughput,
    fig6_scalability,
    table2_vm_throughput,
    fig7_noise,
    fig8_single_node,
    fig9_multi_node,
)
from repro.bench.report import render_table, render_series
from repro.bench.explain import (
    AttachBreakdown,
    explain_native_attach,
    explain_vm_attach,
)

__all__ = [
    "AttachBreakdown",
    "explain_native_attach",
    "explain_vm_attach",
    "CokernelRig",
    "build_cokernel_system",
    "build_insitu_rig",
    "INSITU_CONFIG_NAMES",
    "fig5_throughput",
    "fig6_scalability",
    "table2_vm_throughput",
    "fig7_noise",
    "fig8_single_node",
    "fig9_multi_node",
    "render_table",
    "render_series",
]
