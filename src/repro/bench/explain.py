"""Explain where an attachment's time goes, stage by stage.

``explain_native_attach`` and ``explain_vm_attach`` run one real
attachment in a fresh rig, then decompose the measured latency into the
pipeline stages of DESIGN.md §4 — exporter page-table walk, PFN-list
channel transfer, chunk signalling, attacher install, VMM memory-map
insert work — and account for the remainder (fixed protocol costs).
The decomposition is cross-checked: stages must sum to the measurement
(tests enforce <2 % unattributed).

This doubles as living documentation of the cost model: `python -m repro
explain` prints the table for both paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.bench.configs import build_cokernel_system
from repro.hw.costs import GB, MB, PAGE_4K, gib_per_s
from repro.xemem.api import XpmemApi


@dataclass
class AttachBreakdown:
    """One measured attachment, decomposed into pipeline stages."""
    path: str
    size_bytes: int
    measured_ns: int
    stages: List[Tuple[str, int]]  # (stage, ns), in pipeline order

    @property
    def attributed_ns(self) -> int:
        """Sum of the decomposed stages."""
        return sum(ns for _s, ns in self.stages)

    @property
    def unattributed_ns(self) -> int:
        """Measured minus attributed (should be ~0)."""
        return self.measured_ns - self.attributed_ns

    @property
    def gib_s(self) -> float:
        """The attachment's throughput."""
        return gib_per_s(self.size_bytes, self.measured_ns)

    def rows(self) -> List[Tuple[str, str, str]]:
        """Render-ready (stage, time, share) rows including the total."""
        out = []
        for stage, ns in self.stages + [("(unattributed)", self.unattributed_ns)]:
            out.append(
                (stage, f"{ns / 1e6:.3f} ms", f"{100 * ns / self.measured_ns:.1f}%")
            )
        out.append(("TOTAL", f"{self.measured_ns / 1e6:.3f} ms", "100.0%"))
        return out


def _measure_attach(rig, exporter_kernel, attacher_kernel, size_bytes):
    eng = rig.engine
    npages = -(-size_bytes // PAGE_4K)
    exporter_kernel.heap_pages = npages + 16
    kp = exporter_kernel.create_process("exporter")
    ap = attacher_kernel.create_process("attacher", core_id=attacher_kernel.cores[-1].core_id)
    heap = exporter_kernel.heap_region(kp)

    def run():
        api_x, api_a = XpmemApi(kp), XpmemApi(ap)
        segid = yield from api_x.xpmem_make(heap.start, size_bytes)
        apid = yield from api_a.xpmem_get(segid)
        t0 = eng.now
        att = yield from api_a.xpmem_attach(apid)
        return eng.now - t0, att

    return eng.run_process(run())


def explain_native_attach(size_bytes: int = 1 * GB) -> AttachBreakdown:
    """One Kitten→Linux attachment, decomposed."""
    rig = build_cokernel_system(
        num_cokernels=1, cokernel_mem=int(size_bytes + 64 * MB)
    )
    costs = rig.node.costs
    npages = -(-size_bytes // PAGE_4K)
    measured_ns, _att = _measure_attach(
        rig, rig.cokernels[0].kernel, rig.linux.kernel, size_bytes
    )
    chunks = costs.pfn_list_chunks(npages)
    stages = [
        ("exporter page-table walk", npages * costs.walk_per_page_ns),
        ("PFN-list channel marshal", npages * costs.channel_per_pfn_ns),
        ("chunk IPIs + core-0 handlers",
         chunks * (costs.ipi_latency_ns + costs.ipi_handler_core0_ns)),
        ("attacher PTE install (remap_pfn_range)",
         npages * costs.map_install_per_page_ns),
        ("vm_mmap VMA carve", costs.vm_mmap_fixed_ns),
        ("fixed protocol cost", costs.attach_fixed_ns),
    ]
    return AttachBreakdown("Kitten -> Linux (native)", size_bytes, measured_ns, stages)


def explain_vm_attach(size_bytes: int = 1 * GB,
                      memmap_backend: str = "rbtree") -> AttachBreakdown:
    """One Kitten→Linux-VM attachment (the Table 2 slow path), decomposed."""
    rig = build_cokernel_system(
        num_cokernels=1, with_vm=True, vm_host="linux",
        cokernel_mem=int(size_bytes + 64 * MB), memmap_backend=memmap_backend,
    )
    costs = rig.node.costs
    npages = -(-size_bytes // PAGE_4K)
    guest = rig.vm.kernel
    vmm = guest.vmm
    measured_ns, _att = _measure_attach(
        rig, rig.cokernels[0].kernel, guest, size_bytes
    )
    chunks = costs.pfn_list_chunks(npages)
    insert_ns = vmm.insert_work_log[-1]
    stages = [
        ("exporter page-table walk", npages * costs.walk_per_page_ns),
        ("PFN-list channel marshal", npages * costs.channel_per_pfn_ns),
        ("chunk IPIs + core-0 handlers",
         chunks * (costs.ipi_latency_ns + costs.ipi_handler_core0_ns)),
        (f"VMM memory-map inserts ({vmm.memmap.backend.name}, measured)",
         insert_ns),
        ("PCI-device PFN copy", npages * costs.pci_copy_per_pfn_ns),
        ("vIRQ injection", costs.virq_inject_ns),
        ("guest PTE install (via VMM paging)",
         npages * costs.guest_map_install_per_page_ns),
        ("vm_mmap VMA carve", costs.vm_mmap_fixed_ns),
        ("fixed protocol cost", costs.attach_fixed_ns),
    ]
    return AttachBreakdown(
        "Kitten -> Linux VM (Fig. 4(a))", size_bytes, measured_ns, stages
    )
