"""Standard experiment rigs, mirroring the paper's system configurations.

Two node types:

* The **R420** (§5.1): dual-socket 24-thread, 2×16 GB. Linux management
  enclave (name server) on socket 0; Kitten co-kernels one core + their
  memory on socket 1; optional Palacios VM.
* The **OptiPlex** (§6.3): single-socket 8-thread, 8 GB. The four Table 3
  configurations for the single-node in situ experiments.

All builders return plain dicts of the constructed objects so tests,
examples, and benchmarks share exactly one rig definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.enclave import EnclaveSystem
from repro.hw import NodeHardware, OPTIPLEX_SPEC, R420_SPEC
from repro.hw.costs import GB, MB
from repro.kernels.noise import attach_noise_profile
from repro.obs import audit
from repro.pisces import PiscesManager
from repro.sim import Engine
from repro.workloads.insitu import InSituConfig, InSituWorkload
from repro.xemem import install_xemem


@dataclass
class CokernelRig:
    """An assembled R420 co-kernel system."""

    engine: Engine
    node: NodeHardware
    pisces: PiscesManager
    system: EnclaveSystem
    linux: object
    cokernels: list
    vm: Optional[object]
    modules: dict
    #: The invariant-audit hook, when ``REPRO_AUDIT=1`` (or an explicit
    #: ``with_audit=True``) enabled it; None otherwise.
    auditor: Optional[object] = None


def build_cokernel_system(
    num_cokernels: int = 1,
    with_vm: bool = False,
    vm_host: str = "linux",
    cokernel_mem: int = 1536 * MB,
    memmap_backend: str = "rbtree",
    memmap_coalesce: bool = False,
    ipi_target_policy: str = "core0",
    vm_ram: int = 2 * GB,
    with_noise: bool = False,
    seed: int = 0,
    costs=None,
    with_audit: Optional[bool] = None,
    fault_plan=None,
) -> CokernelRig:
    """The §5 rig: Linux (name server) + N Kitten co-kernels (+ a VM).

    Linux gets socket 0 (cores 0–7, 8 GB of zone 0); each co-kernel gets
    one socket-1 core and its own zone-1 partition, exactly the paper's
    one-core/1.5 GB shape for Fig. 6. Pass ``costs`` to run the whole rig
    under a modified cost model (sensitivity studies).

    ``with_audit`` installs the runtime invariant auditor
    (:mod:`repro.obs.audit`) on the rig's engine; the default defers to
    the ``REPRO_AUDIT`` environment switch, so ``REPRO_AUDIT=1 pytest``
    audits every rig-based test without code changes.

    ``fault_plan`` arms a :class:`repro.faults.FaultPlan` on the finished
    rig (after discovery, so the baseline topology always forms).
    """
    eng = Engine()
    node = NodeHardware(eng, R420_SPEC, costs=costs)
    pisces = PiscesManager(node)
    linux = pisces.boot_linux(core_ids=range(0, 8), mem_bytes=8 * GB)
    extra = vm_ram + 256 * MB if (with_vm and vm_host == "kitten") else 0
    cokernels = [
        pisces.boot_cokernel(
            core_ids=[12 + i],
            mem_bytes=cokernel_mem + (extra if i == 0 else 0),
            zone_id=1,
            name=f"kitten{i}",
            ipi_target_policy=ipi_target_policy,
        )
        for i in range(num_cokernels)
    ]
    system = EnclaveSystem(node)
    system.add_all(pisces.all_enclaves)
    vm = None
    if with_vm:
        host = linux if vm_host == "linux" else cokernels[0]
        vm = pisces.boot_vm(
            host, core_ids=[20, 21], ram_bytes=vm_ram,
            name="vm0", memmap_backend=memmap_backend,
            memmap_coalesce=memmap_coalesce,
        )
        system.add_enclave(vm)
    system.designate_name_server(linux)
    modules = install_xemem(system)
    if with_noise:
        for enclave in system.enclaves:
            attach_noise_profile(enclave.kernel, seed=seed)
    rig = CokernelRig(
        engine=eng, node=node, pisces=pisces, system=system,
        linux=linux, cokernels=cokernels, vm=vm, modules=modules,
    )
    if with_audit or (with_audit is None and audit.env_enabled()):
        rig.auditor = audit.install(rig)
    if fault_plan is not None:
        from repro.faults import arm

        arm(rig, fault_plan)
    return rig


#: Table 3's four single-node configurations.
INSITU_CONFIG_NAMES = (
    "linux_linux",
    "kitten_linux",
    "kitten_vm_linux_host",
    "kitten_vm_kitten_host",
)

#: STREAM slowdowns of the analytics environment per Table 3 row (§6.4:
#: "the native analytics program slightly outperforms the same program
#: running virtualized, particularly in the Palacios on Linux case").
ANALYTICS_SLOWDOWN = {
    "linux_linux": 1.0,
    "kitten_linux": 1.0,
    "kitten_vm_linux_host": 1.30,
    "kitten_vm_kitten_host": 1.12,
}


def build_insitu_rig(config_name: str, insitu: InSituConfig,
                     spec=OPTIPLEX_SPEC, seed: int = 0) -> Dict:
    """One Table 3 cell on the OptiPlex: returns the assembled system and
    a ready :class:`InSituWorkload`."""
    if config_name not in INSITU_CONFIG_NAMES:
        raise ValueError(f"unknown in situ configuration {config_name!r}")
    eng = Engine()
    node = NodeHardware(eng, spec)
    pisces = PiscesManager(node)
    system = EnclaveSystem(node)

    if config_name == "linux_linux":
        linux = pisces.boot_linux(core_ids=range(0, 8), mem_bytes=7 * GB)
        sim_enclave = analytics_enclave = linux
    elif config_name == "kitten_linux":
        linux = pisces.boot_linux(core_ids=range(0, 4), mem_bytes=4 * GB)
        kitten = pisces.boot_cokernel(core_ids=[4, 5], mem_bytes=3 * GB + 512 * MB)
        sim_enclave, analytics_enclave = kitten, linux
    elif config_name == "kitten_vm_linux_host":
        linux = pisces.boot_linux(core_ids=range(0, 3), mem_bytes=4 * GB + 512 * MB)
        kitten = pisces.boot_cokernel(core_ids=[4, 5], mem_bytes=2 * GB + 512 * MB)
        system.add_all(pisces.all_enclaves)
        vm = pisces.boot_vm(linux, core_ids=[6, 7], ram_bytes=2 * GB, name="ana-vm")
        system.add_enclave(vm)
        sim_enclave, analytics_enclave = kitten, vm
    else:  # kitten_vm_kitten_host
        linux = pisces.boot_linux(core_ids=range(0, 3), mem_bytes=2 * GB)
        kitten = pisces.boot_cokernel(core_ids=[4, 5], mem_bytes=5 * GB + 512 * MB)
        system.add_all(pisces.all_enclaves)
        vm = pisces.boot_vm(kitten, core_ids=[6, 7], ram_bytes=2 * GB, name="ana-vm")
        system.add_enclave(vm)
        sim_enclave, analytics_enclave = kitten, vm

    system.add_all(pisces.all_enclaves)
    system.designate_name_server(pisces.linux_enclave)
    modules = install_xemem(system)
    for enclave in system.enclaves:
        attach_noise_profile(enclave.kernel, seed=seed)

    insitu.analytics_slowdown = ANALYTICS_SLOWDOWN[config_name]
    insitu.seed = seed
    workload = InSituWorkload(sim_enclave, analytics_enclave, insitu)
    return {
        "engine": eng,
        "node": node,
        "system": system,
        "modules": modules,
        "sim_enclave": sim_enclave,
        "analytics_enclave": analytics_enclave,
        "workload": workload,
    }
