"""The RDMA verbs bandwidth baseline of Fig. 5.

Per §5.2: the dual-port ConnectX-3 is configured with two SR-IOV virtual
functions, each assigned to a KVM VM, and a simple RDMA write bandwidth
test runs between them at the device's recommended MTU. XEMEM need only
clear this bar to show cross-enclave shared memory is not losing to a
network-based alternative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.hw.costs import CostModel, gib_per_s
from repro.hw.nic import InfinibandNic
from repro.sim.engine import Engine


@dataclass
class RdmaResult:
    """Outcome of one RDMA bandwidth test."""
    transfer_bytes: int
    repetitions: int
    elapsed_ns: int

    @property
    def bandwidth_gib_s(self) -> float:
        """Achieved payload bandwidth."""
        return gib_per_s(self.transfer_bytes * self.repetitions, self.elapsed_ns)


class RdmaBandwidthTest:
    """ib_write_bw-style test between two SR-IOV VFs."""

    def __init__(self, engine: Engine, costs: CostModel):
        self.engine = engine
        self.costs = costs
        self.nic = InfinibandNic(engine, costs, num_vfs=2)

    def run(self, transfer_bytes: int, repetitions: int = 100):
        """Generator: ``repetitions`` RDMA writes of ``transfer_bytes``."""
        if repetitions < 1:
            raise ValueError("need at least one repetition")
        vf = self.nic.vf(0)
        o = obs.get()
        t0 = self.engine.now
        with o.span("cluster.rdma.bw_test", self.engine, track="nic",
                    nbytes=transfer_bytes, reps=repetitions):
            for _ in range(repetitions):
                yield from vf.rdma_write(transfer_bytes)
        o.counter("cluster.rdma.tests").inc()
        return RdmaResult(transfer_bytes, repetitions, self.engine.now - t0)
