"""Multi-node simulation: the §7 cluster, MPI collectives, RDMA baseline.

All nodes share one simulation engine (one global virtual clock); they
interact only through the MPI model's collectives, which is exactly the
noise-amplification channel the weak-scaling experiment exercises: every
CG iteration ends in an allreduce, so one slow node stalls the rest.
"""

from repro.cluster.mpi import MpiWorld
from repro.cluster.node import Cluster, ClusterConfig, ClusterResult
from repro.cluster.rdma import RdmaBandwidthTest

__all__ = [
    "MpiWorld",
    "Cluster",
    "ClusterConfig",
    "ClusterResult",
    "RdmaBandwidthTest",
]
