"""The §7 experimental cluster: 8 R420-class nodes over QDR InfiniBand.

Two per-node enclave compositions (§7.1):

* ``linux_only`` — both in situ components under one native Linux.
* ``multi_enclave`` — the HPC simulation inside a Palacios VM on an
  isolated Kitten co-kernel host; analytics under native Linux.

Every node runs its own XEMEM system (name server in its Linux enclave —
XEMEM is node-local; §7's cross-node traffic is MPI). The simulation
ranks join an :class:`~repro.cluster.mpi.MpiWorld` and allreduce after
every CG iteration, so per-node noise becomes cluster-wide time — the
paper's weak-scaling divergence mechanism.

The ``linux_only`` composition additionally carries *co-residency stall*
noise on the simulation cores: with 8 MPI ranks and 8 OpenMP analytics
threads sharing one kernel, the simulation occasionally loses tens of
milliseconds to scheduler/page-cache activity it cannot be isolated
from. The multi-enclave composition has no such source — that is the
isolation the paper is selling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.enclave import EnclaveSystem
from repro.hw import NodeHardware, R420_SPEC
from repro.hw.costs import CostModel, GB
from repro.kernels.noise import PeriodicNoise, attach_noise_profile
from repro.pisces import PiscesManager
from repro.sim import Engine
from repro.workloads.hpccg import HpccgProblem
from repro.workloads.insitu import InSituConfig, InSituResult, InSituWorkload
from repro.cluster.mpi import MpiWorld

#: Co-residency stall model (linux_only): roughly one stall per ~5 s of
#: execution, exponentially distributed around 80 ms.
CORESIDENCY_PERIOD_NS = 4_900_000_000
CORESIDENCY_BURST_NS = 80_000_000


@dataclass
class ClusterConfig:
    """One Fig. 9 experimental cell: node count, composition, workload."""
    nodes: int = 1
    enclave_mode: str = "linux_only"  # "linux_only" | "multi_enclave"
    attach: str = "one_time"
    iterations: int = 300
    comm_interval: int = 30
    data_bytes: int = 1 * GB
    problem: HpccgProblem = field(default_factory=lambda: HpccgProblem(172, 172, 172))
    sim_ncores: int = 8
    seed: int = 0

    def __post_init__(self):
        if self.enclave_mode not in ("linux_only", "multi_enclave"):
            raise ValueError(f"bad enclave mode {self.enclave_mode!r}")
        if self.nodes < 1:
            raise ValueError("need at least one node")


@dataclass
class ClusterResult:
    """Cluster completion time plus every node's in situ result."""
    completion_s: float
    per_node: List[InSituResult]
    config: ClusterConfig

    @property
    def mean_sim_time_s(self) -> float:
        """Average per-node simulation time."""
        return sum(r.sim_time_s for r in self.per_node) / len(self.per_node)


class Cluster:
    """N simulated nodes + one MPI world, in one engine."""

    def __init__(self, config: ClusterConfig, costs: Optional[CostModel] = None):
        self.config = config
        self.engine = Engine()
        self.costs = costs or CostModel()
        self.mpi = MpiWorld(self.engine, config.nodes, self.costs)
        self.workloads: List[InSituWorkload] = []
        for rank in range(config.nodes):
            self.workloads.append(self._build_node(rank))

    def _build_node(self, rank: int) -> InSituWorkload:
        cfg = self.config
        node = NodeHardware(self.engine, R420_SPEC, costs=self.costs, node_id=rank)
        pisces = PiscesManager(node)
        system = EnclaveSystem(node)
        node_seed = cfg.seed * 131 + rank

        if cfg.enclave_mode == "linux_only":
            linux = pisces.boot_linux(core_ids=range(0, 16), mem_bytes=14 * GB)
            sim_enclave = analytics_enclave = linux
            sim_vm_slowdown = 1.0
        else:
            linux = pisces.boot_linux(core_ids=range(0, 8), mem_bytes=12 * GB)
            kitten = pisces.boot_cokernel(
                core_ids=range(12, 14), mem_bytes=8 * GB, zone_id=1, name=f"kitten-n{rank}"
            )
            system.add_all(pisces.all_enclaves)
            vm = pisces.boot_vm(
                kitten, core_ids=range(14, 22), ram_bytes=6 * GB, name=f"sim-vm-n{rank}"
            )
            system.add_enclave(vm)
            sim_enclave, analytics_enclave = vm, linux
            sim_vm_slowdown = self.costs.vm_compute_overhead

        system.add_all(pisces.all_enclaves)
        system.designate_name_server(pisces.linux_enclave)
        from repro.xemem import install_xemem

        install_xemem(system)
        for enclave in system.enclaves:
            attach_noise_profile(enclave.kernel, seed=node_seed)
        if cfg.enclave_mode == "linux_only":
            # co-residency stalls on the simulation's cores
            for core in linux.kernel.cores[:cfg.sim_ncores]:
                linux.kernel.noise_sources[core.core_id].append(
                    PeriodicNoise(
                        CORESIDENCY_PERIOD_NS,
                        CORESIDENCY_BURST_NS,
                        tag="coresidency",
                        seed=node_seed * 17 + core.core_id,
                        jitter_frac=0.5,
                        exp_duration=True,
                    )
                )

        insitu = InSituConfig(
            execution="async",  # §7.2: async workflow only
            attach=cfg.attach,
            iterations=cfg.iterations,
            comm_interval=cfg.comm_interval,
            data_bytes=cfg.data_bytes,
            problem=cfg.problem,
            sim_ncores=cfg.sim_ncores,
            sim_vm_slowdown=sim_vm_slowdown,
            # §7.1 pins the components to separate NUMA domains, so the
            # same-kernel bandwidth interference of the single-socket
            # OptiPlex does not apply here; what Linux-only cannot avoid
            # is OS-level co-residency (the stall source above).
            colocated_interference=1.03,
            seed=node_seed,
        )

        # HPCCG's per-iteration communication: halo exchange with the
        # 1-D-decomposition neighbors (one z-face of doubles each way)
        # followed by the CG dot-product allreduce.
        face_bytes = cfg.problem.nx * cfg.problem.ny * 8
        nodes = cfg.nodes

        def hook(_iteration):
            for peer in (rank - 1, rank + 1):
                if 0 <= peer < nodes:
                    yield from self.mpi.exchange(rank, peer, face_bytes)
            yield from self.mpi.allreduce(16)

        return InSituWorkload(
            sim_enclave, analytics_enclave, insitu, iteration_hook=hook
        )

    def run(self) -> ClusterResult:
        """Start every node's workload; completion = last simulation done."""
        started = [w.start() for w in self.workloads]
        for sim_p, ana_p in started:
            self.engine.run_until_complete(sim_p)
            self.engine.run_until_complete(ana_p)
        per_node = [
            w.collect(sim_p) for w, (sim_p, _ana) in zip(self.workloads, started)
        ]
        completion = max(r.sim_time_s for r in per_node)
        return ClusterResult(completion, per_node, self.config)
