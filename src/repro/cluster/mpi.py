"""A latency–bandwidth MPI model over the InfiniBand interconnect.

Collectives are rendezvous points: every rank arrives, and all ranks are
released together at ``max(arrival times) + collective cost``, with the
cost following the standard Hockney/log-tree model
``ceil(log2 N) × (latency + bytes / bandwidth)``. This is deliberately
simple — the §7 experiments need the *synchronization* semantics (max
over nodes, the OS-noise amplification mechanism of the papers the
authors cite [9, 14]) far more than they need congestion modeling.
"""

from __future__ import annotations

import math

from repro.hw.costs import CostModel
from repro.sim.engine import Engine


class MpiWorld:
    """One communicator spanning the cluster's ranks."""

    def __init__(self, engine: Engine, nranks: int, costs: CostModel):
        if nranks < 1:
            raise ValueError(f"bad rank count {nranks}")
        self.engine = engine
        self.nranks = nranks
        self.costs = costs
        self._arrivals = 0
        self._release = engine.event("mpi-release")
        self._pairwise = {}
        self.collectives = 0
        self.exchanges = 0
        self.total_wait_ns = 0

    def collective_cost_ns(self, nbytes: int) -> int:
        """Hockney/log-tree wire cost of one collective."""
        stages = max(1, math.ceil(math.log2(self.nranks))) if self.nranks > 1 else 0
        per_stage = self.costs.mpi_latency_ns + int(
            nbytes * 1e9 / self.costs.mpi_bw_bytes_per_s
        )
        return stages * per_stage

    def allreduce(self, nbytes: int = 8):
        """Generator: one allreduce from the calling rank's perspective.

        Every rank must call this the same number of times; mismatched
        calls deadlock, exactly like real MPI.
        """
        arrived_at = self.engine.now
        self._arrivals += 1
        if self._arrivals == self.nranks:
            # last arrival: release everyone after the wire cost
            self._arrivals = 0
            release, self._release = self._release, self.engine.event("mpi-release")
            self.collectives += 1
            yield self.engine.sleep(self.collective_cost_ns(nbytes))
            release.trigger()
        else:
            release = self._release
            yield release
        self.total_wait_ns += self.engine.now - arrived_at
        return self.engine.now

    def barrier(self):
        """Generator: a zero-payload collective."""
        result = yield from self.allreduce(0)
        return result

    # -- point-to-point -----------------------------------------------------------

    def exchange(self, rank: int, peer: int, nbytes: int):
        """Generator: a paired halo exchange between ``rank`` and ``peer``.

        Both sides must call with the same pair; both are released at
        ``max(arrival) + latency + bytes/bandwidth`` (a symmetric
        sendrecv). Used by HPCCG's per-iteration boundary exchange.
        """
        if peer == rank:
            raise ValueError("cannot exchange with self")
        if not (0 <= peer < self.nranks and 0 <= rank < self.nranks):
            raise ValueError(f"rank pair ({rank}, {peer}) out of range")
        key = (min(rank, peer), max(rank, peer))
        arrived_at = self.engine.now
        waiting = self._pairwise.get(key)
        if waiting is None:
            event = self.engine.event(f"xchg:{key}")
            self._pairwise[key] = event
            yield event
        else:
            del self._pairwise[key]
            cost = self.costs.mpi_latency_ns + int(
                nbytes * 1e9 / self.costs.mpi_bw_bytes_per_s
            )
            yield self.engine.sleep(cost)
            waiting.trigger(None)
        self.exchanges += 1
        self.total_wait_ns += self.engine.now - arrived_at
        return self.engine.now
