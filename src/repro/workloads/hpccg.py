"""HPCCG (Mantevo) — the HPC simulation component of the in situ pair.

HPCCG is a conjugate-gradient solve on a 27-point stencil system: each
row couples a grid point to its 3×3×3 neighborhood, diagonal 27.0 and
off-diagonals −1.0 (diagonally dominant SPD). We implement the operator
matrix-free (padded-array shifts, no explicit sparse matrix) and a real
CG loop whose residual convergence the test suite asserts.

Time is modeled: one CG iteration is SpMV-dominated, costing
``rows × 27 × hpccg_ns_per_nnz / ncores`` on the virtual clock — the
memory-bound rate calibrated in the cost model — with MPI collectives
added by the cluster layer for multi-node runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.hw.costs import CostModel

STENCIL_DIAG = 27.0
STENCIL_OFF = -1.0
NNZ_PER_ROW = 27


@dataclass(frozen=True)
class HpccgProblem:
    """Problem dimensions (one node's subdomain in weak scaling)."""

    nx: int
    ny: int
    nz: int

    def __post_init__(self):
        if min(self.nx, self.ny, self.nz) < 2:
            raise ValueError("grid must be at least 2^3")

    @property
    def rows(self) -> int:
        """Grid points (matrix rows) in the subdomain."""
        return self.nx * self.ny * self.nz

    @property
    def nnz(self) -> int:
        """Matrix nonzeros (27 per row)."""
        return self.rows * NNZ_PER_ROW

    def iteration_ns(self, costs: CostModel, ncores: int = 1) -> int:
        """Modeled wall time of one CG iteration on ``ncores``."""
        if ncores < 1:
            raise ValueError(f"bad core count {ncores}")
        return int(self.nnz * costs.hpccg_ns_per_nnz / ncores)


class HpccgSolver:
    """A real conjugate-gradient solve on the 27-point stencil system."""

    def __init__(self, problem: HpccgProblem):
        self.problem = problem
        self.spmv_count = 0

    # -- the operator ------------------------------------------------------------

    def apply(self, x: np.ndarray) -> np.ndarray:
        """y = A x, matrix-free. ``x`` is flat of length ``rows``."""
        p = self.problem
        if x.shape != (p.rows,):
            raise ValueError(f"x must have shape ({p.rows},)")
        grid = x.reshape(p.nz, p.ny, p.nx)
        padded = np.zeros((p.nz + 2, p.ny + 2, p.nx + 2), dtype=np.float64)
        padded[1:-1, 1:-1, 1:-1] = grid
        acc = np.zeros_like(grid)
        for dz in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    if dz == dy == dx == 0:
                        continue
                    acc += padded[
                        1 + dz : 1 + dz + p.nz,
                        1 + dy : 1 + dy + p.ny,
                        1 + dx : 1 + dx + p.nx,
                    ]
        y = STENCIL_DIAG * grid + STENCIL_OFF * acc
        self.spmv_count += 1
        return y.reshape(-1)

    # -- CG ---------------------------------------------------------------------

    def solve(self, b: np.ndarray, tol: float = 1e-10, max_iters: int = 500,
              callback=None) -> Tuple[np.ndarray, List[float]]:
        """CG from x0 = 0. Returns (x, residual-norm history).

        ``callback(iteration, residual)`` fires after every iteration —
        the in situ driver hooks its communication intervals here.
        """
        p = self.problem
        if b.shape != (p.rows,):
            raise ValueError(f"b must have shape ({p.rows},)")
        x = np.zeros_like(b)
        r = b.copy()
        d = r.copy()
        rr = float(r @ r)
        b_norm = float(np.sqrt(b @ b)) or 1.0
        history: List[float] = []
        for it in range(1, max_iters + 1):
            ad = self.apply(d)
            alpha = rr / float(d @ ad)
            x += alpha * d
            r -= alpha * ad
            rr_new = float(r @ r)
            res = float(np.sqrt(rr_new)) / b_norm
            history.append(res)
            if callback is not None:
                callback(it, res)
            if res < tol:
                break
            d = r + (rr_new / rr) * d
            rr = rr_new
        return x, history

    def default_rhs(self, seed: int = 0) -> np.ndarray:
        """A seeded random right-hand side of the right length."""
        rng = np.random.default_rng(seed)
        return rng.standard_normal(self.problem.rows)


@dataclass
class HpccgTiming:
    """Modeled timing knobs for a simulated HPCCG run."""

    problem: HpccgProblem
    iterations: int
    ncores: int = 1
    #: Multiplier for virtualized execution (Palacios overhead is small).
    compute_slowdown: float = 1.0

    def iteration_ns(self, costs: CostModel) -> int:
        return int(
            self.problem.iteration_ns(costs, self.ncores) * self.compute_slowdown
        )

    def total_compute_ns(self, costs: CostModel) -> int:
        return self.iterations * self.iteration_ns(costs)
