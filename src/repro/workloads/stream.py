"""STREAM (HPC Challenge) — the analytics component of the in situ pair.

Per the paper's §6.1 workflow, the analytics program first copies the
shared region into a private array and then runs STREAM over it. We run
the four kernels (copy, scale, add, triad) for real on a size-capped
array — asserting the triad identity — while the modeled time covers the
configured region size: one copy-in at memcpy bandwidth plus the STREAM
pass's 10 array-sized accesses at STREAM bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.compute import noise_aware_compute

#: Array-size multiples of memory traffic in one pass of the four kernels
#: (copy 2, scale 2, add 3, triad 3).
STREAM_TRAFFIC_MULTIPLE = 10

#: Cap on the *real* computation size; the modeled time covers the full
#: region, the actual numerics run on at most this many float64s.
REAL_ELEMENTS_CAP = 1 << 18

SCALAR = 3.0


@dataclass
class StreamResult:
    """Outcome of one analytics STREAM pass (timing + verification)."""
    region_bytes: int
    elapsed_ns: int
    copy_in_ns: int
    checksum: float
    verified: bool

    @property
    def effective_bw_bytes_per_s(self) -> float:
        """Total traffic moved divided by elapsed time."""
        traffic = self.region_bytes * STREAM_TRAFFIC_MULTIPLE + self.region_bytes
        return traffic / (self.elapsed_ns / 1e9)


class StreamBenchmark:
    """One analytics STREAM pass over an attached shared region."""

    def __init__(self, kernel, proc):
        self.kernel = kernel
        self.proc = proc
        self.costs = kernel.costs
        self.engine = kernel.engine

    def _real_kernels(self, source: np.ndarray) -> tuple:
        """Run copy/scale/add/triad for real; returns (checksum, ok)."""
        a = source.astype(np.float64)
        if a.size == 0:
            raise ValueError("empty STREAM source")
        c = a.copy()                      # COPY:  c = a
        b = SCALAR * c                    # SCALE: b = q*c
        c = a + b                         # ADD:   c = a + b
        a2 = b + SCALAR * c               # TRIAD: a = b + q*c
        expected = SCALAR * a + SCALAR * (a + SCALAR * a)
        ok = bool(np.allclose(a2, expected))
        return float(a2.sum()), ok

    def run(self, attached_view, region_bytes: int, slowdown: float = 1.0):
        """Generator: copy the shared region private, STREAM over it.

        ``attached_view`` is any object with ``as_array()`` (an
        :class:`~repro.xemem.shmem.AttachedRegion` or a MappedRegion);
        only a capped prefix is actually materialized for the real math.
        Returns a :class:`StreamResult`.
        """
        if region_bytes <= 0:
            raise ValueError(f"bad region size {region_bytes}")
        t0 = self.engine.now
        # copy-in: shared -> private array (real, over the capped prefix)
        take_pages = min(
            attached_view.npages, max(1, REAL_ELEMENTS_CAP * 8 // 4096)
        )
        prefix = np.concatenate(
            [attached_view.page_view(i) for i in range(take_pages)]
        )
        source = prefix.view(np.float64)[:REAL_ELEMENTS_CAP]
        copy_ns = self.costs.memcpy_ns(region_bytes)
        yield from noise_aware_compute(self.kernel, self.proc, copy_ns, slowdown)
        copy_done = self.engine.now
        checksum, ok = self._real_kernels(source)
        stream_ns = int(
            region_bytes * STREAM_TRAFFIC_MULTIPLE * 1e9
            / self.costs.stream_bw_bytes_per_s
        )
        yield from noise_aware_compute(self.kernel, self.proc, stream_ns, slowdown)
        return StreamResult(
            region_bytes=region_bytes,
            elapsed_ns=self.engine.now - t0,
            copy_in_ns=copy_done - t0,
            checksum=checksum,
            verified=ok,
        )
