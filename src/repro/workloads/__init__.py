"""Benchmark workloads: HPCCG, STREAM, the composed in situ driver, and
the Selfish Detour noise benchmark (paper §5.5, §6).

Numerics are real (the CG solver converges on an actual 27-point stencil
system; STREAM's triad is checked element-wise); execution *time* is
modeled on the virtual clock via the cost model plus the kernels' noise
accounting — see :func:`repro.workloads.compute.noise_aware_compute`.
"""

from repro.workloads.stream import StreamBenchmark, StreamResult
from repro.workloads.hpccg import HpccgProblem, HpccgSolver, HpccgTiming
from repro.workloads.compute import noise_aware_compute
from repro.workloads.selfish import SelfishDetour, DetourEvent
from repro.workloads.insitu import (
    InSituConfig,
    InSituResult,
    InSituWorkload,
    SharedFlags,
)
from repro.workloads.sessions import ServeReport, SessionConfig, run_sessions

__all__ = [
    "ServeReport",
    "SessionConfig",
    "run_sessions",
    "StreamBenchmark",
    "StreamResult",
    "HpccgProblem",
    "HpccgSolver",
    "HpccgTiming",
    "noise_aware_compute",
    "SelfishDetour",
    "DetourEvent",
    "InSituConfig",
    "InSituResult",
    "InSituWorkload",
    "SharedFlags",
]
