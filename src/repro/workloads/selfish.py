"""The Selfish Detour noise benchmark (Beckman et al., ANL) — Fig. 7.

Selfish Detour spins reading the timestamp counter and records a
"detour" whenever consecutive reads gap by more than a threshold — i.e.
whenever the CPU ran something other than the benchmark. Against the
simulation we can enumerate detours *exactly*: the analytic noise
sources report every occurrence in the window, and the core's steal log
holds every actually-simulated interruption (XEMEM attachment service,
IRQ handlers). The union, clipped to the window and filtered by the
detection threshold, is precisely what a spinning benchmark would see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class DetourEvent:
    """One detected detour: when, how long, which source."""
    time_ns: int
    duration_ns: int
    source: str

    @property
    def duration_us(self) -> float:
        return self.duration_ns / 1e3


class SelfishDetour:
    """Detour detection over a window of one core's activity."""

    #: Below this, a gap is indistinguishable from benchmark self-time.
    DEFAULT_THRESHOLD_NS = 1_000

    def __init__(self, kernel, core_id: int,
                 threshold_ns: int = DEFAULT_THRESHOLD_NS):
        if threshold_ns <= 0:
            raise ValueError("threshold must be positive")
        self.kernel = kernel
        self.core_id = core_id
        self.threshold_ns = threshold_ns

    def detours(self, t0: int, t1: int,
                sources: Optional[Sequence[str]] = None) -> List[DetourEvent]:
        """All detours whose start lies in [t0, t1), longest-first-stable
        ordering by time. ``sources`` filters by tag prefix."""
        if t1 <= t0:
            raise ValueError(f"empty window [{t0}, {t1})")
        out: List[DetourEvent] = []
        for src in self.kernel.noise_sources.get(self.core_id, []):
            if sources is not None and not any(src.tag.startswith(s) for s in sources):
                continue
            for start, dur in src.events_in(t0, t1):
                if dur >= self.threshold_ns:
                    out.append(DetourEvent(start, dur, src.tag))
        core = self.kernel.node.core(self.core_id)
        for start, dur, tag in core.steal_log:
            if sources is not None and not any(tag.startswith(s) for s in sources):
                continue
            if t0 <= start < t1 and dur >= self.threshold_ns:
                out.append(DetourEvent(start, dur, tag))
        out.sort(key=lambda ev: ev.time_ns)
        return out

    def stolen_fraction(self, t0: int, t1: int) -> float:
        """Fraction of the window the CPU was away from the application."""
        return self.kernel.stolen_ns(self.core_id, t0, t1) / (t1 - t0)
