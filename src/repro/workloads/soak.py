"""Open-loop soak harness: drive the serving hot path through saturation.

``python -m repro soak`` ramps an *open-loop* arrival process (seeded
Poisson, per-step rates) over the PR-6 sessions flow — search → get →
attach → touch → detach → release — under an armed :class:`FaultPlan`,
and runs the whole ramp twice: once with overload protection armed
(:func:`repro.xemem.overload.arm_overload`) and once bare. The two runs
land in one ``BENCH_serving.json`` so the graceful-degradation claim is
checkable in a single artifact: past saturation the protected run keeps
goodput near its peak by rejecting the excess cheaply, while the
baseline's unbounded queues push latency past the request deadline and
its retry storm collapses goodput.

Open-loop is the point: a closed-loop driver slows down with the server
and can never push it past saturation; arrivals here keep coming at the
offered rate no matter how the server is doing, exactly like ingress
traffic at a serving stack.

Determinism: arrivals, think-free flows, fault injection, and every
retry-after hint draw from seeded streams consumed in virtual-clock
order — the report and the emitted JSON are byte-identical across
reruns at the same seed and across the FASTPATH/FIDELITY twins.
"""

from __future__ import annotations

import argparse
import json
import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.faults import reporting
from repro.faults.inject import arm
from repro.faults.plan import FaultPlan
from repro.hw.costs import PAGE_4K
from repro.obs import flightrec as flightrec_mod
from repro.obs.metrics import Histogram
from repro.workloads.sessions import ATTACH_BOUNDS
from repro.xemem import (
    XememError, XememOverload, XememTimeout, XpmemApi,
)
from repro.xemem.overload import (
    OverloadConfig, admission_totals, arm_overload,
)

#: Offered-load ramp, per virtual millisecond. True flow capacity of the
#: default 2-cokernel rig is ~120-150 flows/ms, so the ramp crosses
#: saturation around the middle and ends ~16x past it.
DEFAULT_RATES_PER_MS = (40, 80, 160, 320, 640, 1280, 2560)

#: The soak's chaos floor: lossy channels + a request deadline, so the
#: baseline's queue delay actually turns into timeouts and retries (an
#: empty plan would let baseline requests park forever and hide the
#: collapse). No scheduled crashes — overload, not failure, is on trial.
DEFAULT_PLAN_SPEC = "drop=0.02,dup=0.01,delay=0.03:20us,timeout=300us,retries=3"

#: Default protection: CoDel shedding on queue delay, two serve slots,
#: and a short queue — a waiter that would sit behind more than ~8
#: forwards is already deadline-dead, so parking it only manufactures
#: orphaned work; rejecting it early is what preserves goodput.
DEFAULT_OVERLOAD_SPEC = (
    "policy=codel,workers=2,qcap=8,codeltarget=40us,codelint=80us,"
    "retryafter=80us,jitter=20us,budget=32,budgetwin=500us,"
    "breaker=8,open=200us"
)

#: Span ring cap for the soak black box (same bound as chaos).
FLIGHTREC_TRACE_CAP = 512


@dataclass
class SoakConfig:
    """Shape of one soak run (all virtual-time deterministic)."""

    seed: int = 0
    cokernels: int = 2          #: exporting co-kernels (one segment each)
    pages: int = 4              #: pages per exported segment
    client_procs: int = 6       #: Linux client processes flows rotate over
    step_ns: int = 300_000      #: virtual duration of each load step
    rates_per_ms: Tuple[int, ...] = DEFAULT_RATES_PER_MS
    plan_spec: str = DEFAULT_PLAN_SPEC
    overload_spec: str = DEFAULT_OVERLOAD_SPEC
    #: discovery scraper period (a kitten-side ``xpmem_list`` loop — the
    #: traffic the degradation ladder sheds first)
    scrape_period_ns: int = 50_000
    # -- SLOs on the *protected* run ----------------------------------
    #: p99 attach latency bound at the final (past-saturation) step; an
    #: admitted attach may ride 1-2 paced retries, so the bound sits at
    #: ~1.5x the request deadline, not at the unloaded latency
    slo_p99_attach_ns: int = 500_000
    #: final-step goodput must stay within this fraction of peak
    slo_goodput_retention: float = 0.8


@dataclass
class StepStats:
    """One step window: ``offered`` counts flows that *arrived* during
    it; every other field counts flows that *settled* (and attaches that
    completed) inside its window, whatever their arrival cohort. Flows
    routinely outlive the step they arrived in once the ramp passes
    saturation, so settle-time attribution is what keeps per-step
    goodput an honest throughput reading — a cohort reading would credit
    the final step with completions that actually happened during the
    post-ramp drain."""

    rate_per_ms: int
    offered: int = 0
    ok: int = 0
    rejected: int = 0    # admission reject / breaker open / budget out
    shed: int = 0        # CoDel or ladder shed
    abandoned: int = 0   # request deadline + retries exhausted
    errors: int = 0
    goodput_per_ms: float = 0.0
    attach_p50_ns: float = 0.0
    attach_p95_ns: float = 0.0
    attach_p99_ns: float = 0.0

    @property
    def settled(self) -> int:
        return (self.ok + self.rejected + self.shed + self.abandoned
                + self.errors)

    def line(self, idx: int) -> str:
        return (
            f"  step {idx}: rate={self.rate_per_ms}/ms offered={self.offered} "
            f"ok={self.ok} rejected={self.rejected} shed={self.shed} "
            f"abandoned={self.abandoned} errors={self.errors} "
            f"goodput={self.goodput_per_ms:.1f}/ms "
            f"p99={self.attach_p99_ns / 1e3:.1f}us"
        )


@dataclass
class SoakReport:
    """One mode's full ramp; derived from sim state only, so a (config,
    mode) pair reproduces it byte-for-byte."""

    config: SoakConfig
    mode: str                  # "protected" | "baseline"
    end_ns: int = 0
    drained: bool = False
    exported: int = 0
    steps: List[StepStats] = field(default_factory=list)
    #: flows that settled after the last step ended (the ramp's wake)
    drain: StepStats = field(
        default_factory=lambda: StepStats(rate_per_ms=0)
    )
    scrape_ok: int = 0
    scrape_shed: int = 0
    scrape_errors: int = 0
    admission: Dict[str, int] = field(default_factory=dict)
    fault_counts: Dict[str, int] = field(default_factory=dict)
    saturation_step: int = 0
    peak_goodput_per_ms: float = 0.0
    final_goodput_per_ms: float = 0.0
    final_retention: float = 0.0
    final_p99_attach_ns: float = 0.0
    pre_saturation_step: int = 0
    pre_saturation_p99_ns: float = 0.0

    @property
    def offered_total(self) -> int:
        return sum(s.offered for s in self.steps)

    @property
    def ok_total(self) -> int:
        return sum(s.ok for s in self.steps) + self.drain.ok

    def outcome_counts(self) -> Dict[str, int]:
        buckets = list(self.steps) + [self.drain]
        return {
            "ok": sum(s.ok for s in buckets),
            "rejected": sum(s.rejected for s in buckets),
            "shed": sum(s.shed for s in buckets),
            "abandoned": sum(s.abandoned for s in buckets),
            "error": sum(s.errors for s in buckets),
        }

    def lines(self) -> List[str]:
        cfg = self.config
        out = [
            f"soak [{self.mode}] seed={cfg.seed} cokernels={cfg.cokernels} "
            f"pages={cfg.pages} step={cfg.step_ns}ns "
            f"rates={','.join(str(r) for r in cfg.rates_per_ms)}/ms",
            f"  end: {self.end_ns} ns  drained={self.drained}",
            reporting.ops_line(self.outcome_counts(), label="flows"),
        ]
        out.extend(s.line(i) for i, s in enumerate(self.steps))
        if self.drain.settled:
            out.append(
                f"  drain: ok={self.drain.ok} rejected={self.drain.rejected} "
                f"shed={self.drain.shed} abandoned={self.drain.abandoned} "
                f"errors={self.drain.errors}"
            )
        out.append(
            f"  saturation: step {self.saturation_step} "
            f"(peak {self.peak_goodput_per_ms:.1f}/ms); final step: "
            f"{self.final_goodput_per_ms:.1f}/ms "
            f"({self.final_retention * 100:.0f}% of peak), "
            f"p99={self.final_p99_attach_ns / 1e3:.1f}us"
        )
        if self.scrape_ok or self.scrape_shed or self.scrape_errors:
            out.append(
                f"  discovery scraper: {self.scrape_ok} ok, "
                f"{self.scrape_shed} shed, {self.scrape_errors} error"
            )
        out.extend(reporting.admission_lines(self.admission))
        out.extend(reporting.fault_lines(self.fault_counts))
        return out

    def verdicts(self) -> Dict[str, dict]:
        """SLO verdicts — meaningful on the protected run; the baseline
        is *expected* to fail them (that is the experiment)."""
        cfg = self.config
        return {
            "soak.goodput.retention": {
                "ok": self.final_retention >= cfg.slo_goodput_retention,
                "detail": (
                    f"final {self.final_goodput_per_ms:.1f}/ms is "
                    f"{self.final_retention * 100:.0f}% of peak "
                    f"{self.peak_goodput_per_ms:.1f}/ms "
                    f"(floor {cfg.slo_goodput_retention * 100:.0f}%)"
                ),
            },
            "soak.attach.p99": {
                "ok": self.final_p99_attach_ns <= cfg.slo_p99_attach_ns,
                "detail": (
                    f"final-step p99 {self.final_p99_attach_ns / 1e3:.1f}us "
                    f"vs bound {cfg.slo_p99_attach_ns / 1e3:.1f}us"
                ),
            },
        }

    @property
    def slo_ok(self) -> bool:
        return all(v["ok"] for v in self.verdicts().values())


def run_soak(config: Optional[SoakConfig] = None, protected: bool = True,
             **overrides) -> SoakReport:
    """Run one ramp (one rig, one engine); returns a :class:`SoakReport`.

    ``protected=False`` runs the no-protection baseline: same seed, same
    fault plan, same arrivals — only :func:`arm_overload` is skipped.
    """
    from repro.bench.configs import build_cokernel_system

    cfg = config if config is not None else SoakConfig(**overrides)
    mode = "protected" if protected else "baseline"
    report = SoakReport(config=cfg, mode=mode)
    plan = FaultPlan.parse(cfg.plan_spec, seed=cfg.seed)
    rig = build_cokernel_system(num_cokernels=cfg.cokernels, seed=cfg.seed)
    if protected:
        arm_overload(rig, OverloadConfig.parse(cfg.overload_spec,
                                               seed=cfg.seed))

    eng = rig.engine
    linux_kernel = rig.linux.kernel
    steps = [StepStats(rate_per_ms=rate) for rate in cfg.rates_per_ms]
    attach_hists = [
        Histogram(f"soak.attach.step{i}", ATTACH_BOUNDS)
        for i in range(len(steps) + 1)  # +1: the drain bucket
    ]
    scrape = {"ok": 0, "shed": 0, "error": 0}
    stop = {"flag": False}
    ramp = {"start": 0}

    def bucket_index() -> int:
        """Settle-time attribution: which step window is *now* in
        (``len(steps)`` once the ramp has ended — the drain bucket)."""
        idx = (eng.now - ramp["start"]) // cfg.step_ns
        return min(idx, len(steps))

    def settle_stats() -> StepStats:
        idx = bucket_index()
        return report.drain if idx == len(steps) else steps[idx]

    def count_overload(err: XememOverload) -> None:
        step = settle_stats()
        if err.verdict == "shed":
            step.shed += 1
        else:
            step.rejected += 1

    def rollback(api: XpmemApi, att, apid):
        """Best-effort detach/release so failed flows never pin grants
        (release-class traffic always admits, so this converges even
        under full overload — the anti-livelock property)."""
        try:
            if att is not None and not att.detached:
                yield from api.xpmem_detach(att)
            if apid is not None:
                yield from api.xpmem_release(apid)
        except (XememTimeout, XememError):
            pass

    def flow(api: XpmemApi, name: str):
        apid = None
        att = None
        try:
            segid = yield from api.xpmem_search(name)
            if segid is None:
                settle_stats().errors += 1
                return
            apid = yield from api.xpmem_get(segid)
            t0 = eng.now
            att = yield from api.xpmem_attach(apid, 0, cfg.pages * PAGE_4K)
            attach_hists[bucket_index()].observe(eng.now - t0)
            if not att.detached:
                att.read(0, 8)
            yield from api.xpmem_detach(att)
            att = None
            yield from api.xpmem_release(apid)
            settle_stats().ok += 1
        except XememOverload as err:
            count_overload(err)
            yield from rollback(api, att, apid)
        except XememTimeout:
            settle_stats().abandoned += 1
            yield from rollback(api, att, apid)
        except XememError:
            settle_stats().errors += 1
            yield from rollback(api, att, apid)

    def scraper(api: XpmemApi):
        """Discovery load: the traffic the ladder sheds first."""
        while not stop["flag"]:
            try:
                yield from api.xpmem_list("soak/")
                scrape["ok"] += 1
            except XememOverload:
                scrape["shed"] += 1
            except (XememTimeout, XememError):
                scrape["error"] += 1
            yield eng.sleep(cfg.scrape_period_ns)

    def scenario():
        # Export phase (pre-ramp, fault plan already armed).
        names = []
        for enclave in rig.cokernels:
            kernel = enclave.kernel
            if cfg.pages > kernel.heap_pages:
                kernel.heap_pages = cfg.pages
            proc = kernel.create_process(f"svc-{enclave.name}")
            heap = kernel.heap_region(proc)
            api = XpmemApi(proc)
            name = f"soak/{enclave.name}"
            try:
                yield from api.xpmem_make(
                    heap.start, cfg.pages * PAGE_4K, name=name
                )
            except (XememTimeout, XememError):
                continue
            names.append(name)
            report.exported += 1
        if not names:
            return
        # Client pool: flows rotate over a fixed set of processes.
        pool = []
        for i in range(cfg.client_procs):
            proc = linux_kernel.create_process(
                f"soak-{i}", core_id=1 + i % 4
            )
            pool.append(XpmemApi(proc))
        # Discovery scraper on the first co-kernel (remote from the NS,
        # so its list_names rides the protocol and can be shed).
        scraper_proc = rig.cokernels[0].kernel.create_process("scraper")
        eng.spawn(scraper(XpmemApi(scraper_proc)), name="scraper")
        # The ramp: seeded-Poisson open-loop arrivals, per-step rates.
        arrival_rng = random.Random(f"soak-arrivals:{cfg.seed}")
        flows = []
        flow_id = 0
        ramp["start"] = eng.now
        for idx, rate in enumerate(cfg.rates_per_ms):
            step = steps[idx]
            step_end = ramp["start"] + (idx + 1) * cfg.step_ns
            mean_gap_ns = 1e6 / rate
            while True:
                gap = max(1, int(arrival_rng.expovariate(1.0 / mean_gap_ns)))
                if eng.now + gap >= step_end:
                    remaining = step_end - eng.now
                    if remaining > 0:
                        yield eng.sleep(remaining)
                    break
                yield eng.sleep(gap)
                step.offered += 1
                api = pool[flow_id % len(pool)]
                name = names[flow_id % len(names)]
                flows.append(eng.spawn(
                    flow(api, name), name=f"flow:{flow_id}"
                ))
                flow_id += 1
        stop["flag"] = True
        if flows:
            yield eng.all_of(flows)

    injector = arm(rig, plan)
    eng.run_process(scenario(), name="soak")
    eng.run()  # drain stragglers (late responses, retransmit timers)

    report.end_ns = eng.now
    report.drained = eng.queue_len == 0
    report.scrape_ok = scrape["ok"]
    report.scrape_shed = scrape["shed"]
    report.scrape_errors = scrape["error"]
    report.admission = admission_totals(rig)
    report.fault_counts = dict(injector.counts)
    for step, hist in zip(steps, attach_hists):
        step.goodput_per_ms = step.ok * 1e6 / cfg.step_ns
        step.attach_p50_ns = hist.quantile(0.50)
        step.attach_p95_ns = hist.quantile(0.95)
        step.attach_p99_ns = hist.quantile(0.99)
    report.steps = steps
    goodputs = [s.goodput_per_ms for s in steps]
    peak = max(goodputs) if goodputs else 0.0
    report.peak_goodput_per_ms = peak
    report.saturation_step = goodputs.index(peak) if goodputs else 0
    if steps:
        report.final_goodput_per_ms = steps[-1].goodput_per_ms
        report.final_p99_attach_ns = steps[-1].attach_p99_ns
        report.final_retention = (
            report.final_goodput_per_ms / peak if peak else 0.0
        )
        report.pre_saturation_step = max(report.saturation_step - 1, 0)
        report.pre_saturation_p99_ns = (
            steps[report.pre_saturation_step].attach_p99_ns
        )
    return report


# -- the protected/baseline pair and its artifact ---------------------------


def bench_doc(protected: SoakReport, baseline: SoakReport) -> Dict[str, object]:
    """The flat ``BENCH_serving.json`` dict for :mod:`repro.obs.bench`.

    Key naming is load-bearing: ``*_goodput_rate`` gates higher-is-
    better, ``*_latency_ns`` lower-is-better; bare counts are identity
    keys that must reproduce exactly."""
    cfg = protected.config
    doc: Dict[str, object] = {
        "benchmark": "soak-serving",
        "seed": cfg.seed,
        "cokernels": cfg.cokernels,
        "pages": cfg.pages,
        "step_ns_config": cfg.step_ns,
        "rates_per_ms_spec": ",".join(str(r) for r in cfg.rates_per_ms),
        "plan": cfg.plan_spec,
        "overload": cfg.overload_spec,
        "saturation_step": protected.saturation_step,
        "pre_saturation_p99_attach_latency_ns": round(
            protected.pre_saturation_p99_ns, 3),
        "protected_peak_goodput_rate": round(
            protected.peak_goodput_per_ms, 3),
        "protected_final_goodput_rate": round(
            protected.final_goodput_per_ms, 3),
        "protected_retention_rate": round(protected.final_retention, 4),
        "protected_slo_ok": protected.slo_ok,
        "baseline_peak_goodput_rate": round(baseline.peak_goodput_per_ms, 3),
        "baseline_final_goodput_rate": round(
            baseline.final_goodput_per_ms, 3),
        "baseline_retention": round(baseline.final_retention, 4),
    }
    for mode, report in (("protected", protected), ("baseline", baseline)):
        for i, step in enumerate(report.steps):
            prefix = f"{mode}_step{i}"
            doc[f"{prefix}_offered"] = step.offered
            doc[f"{prefix}_ok"] = step.ok
            doc[f"{prefix}_rejected"] = step.rejected
            doc[f"{prefix}_shed"] = step.shed
            doc[f"{prefix}_abandoned"] = step.abandoned
            doc[f"{prefix}_goodput_rate"] = round(step.goodput_per_ms, 3)
            doc[f"{prefix}_p50_attach_latency_ns"] = round(
                step.attach_p50_ns, 3)
            doc[f"{prefix}_p95_attach_latency_ns"] = round(
                step.attach_p95_ns, 3)
            doc[f"{prefix}_p99_attach_latency_ns"] = round(
                step.attach_p99_ns, 3)
    for key in sorted(protected.admission):
        doc[f"admission_{key}"] = protected.admission[key]
    return doc


def run_soak_pair(config: Optional[SoakConfig] = None,
                  **overrides) -> Tuple[SoakReport, SoakReport]:
    """Run the protected ramp and the no-protection baseline (same seed,
    same plan, same arrivals)."""
    cfg = config if config is not None else SoakConfig(**overrides)
    protected = run_soak(cfg, protected=True)
    baseline = run_soak(cfg, protected=False)
    return protected, baseline


# -- CLI --------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro soak",
        description=(
            "Ramp open-loop load over the serving hot path through "
            "saturation, protected and baseline, under an armed fault "
            "plan; emit BENCH_serving.json and SLO verdicts."
        ),
    )
    p.add_argument("--seed", type=int, default=0,
                   help="arrival/fault/overload RNG seed (default 0)")
    p.add_argument("--cokernels", type=int, default=2,
                   help="exporting co-kernels (default 2)")
    p.add_argument("--pages", type=int, default=4,
                   help="pages per exported segment (default 4)")
    p.add_argument("--step-ns", type=int, default=300_000,
                   help="virtual duration of each load step (default 300000)")
    p.add_argument("--rates", default=None, metavar="R1,R2,...",
                   help="arrival rates per virtual ms "
                        f"(default {','.join(str(r) for r in DEFAULT_RATES_PER_MS)})")
    p.add_argument("--plan", default=DEFAULT_PLAN_SPEC, metavar="SPEC",
                   help="fault plan armed for both modes (docs/FAULTS.md)")
    p.add_argument("--overload", default=DEFAULT_OVERLOAD_SPEC, metavar="SPEC",
                   help="overload config for the protected mode "
                        "(docs/OVERLOAD.md)")
    p.add_argument("--slo-p99-ns", type=int, default=None, metavar="NS",
                   help="override the final-step p99 attach latency bound")
    p.add_argument("--slo-retention", type=float, default=None, metavar="F",
                   help="override the goodput retention floor (fraction)")
    p.add_argument("--out", metavar="PATH",
                   help="write the flat BENCH_serving.json here")
    p.add_argument("--bundle-dir", metavar="DIR",
                   help="flight-recorder incident bundle on SLO breach")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    rates = (
        tuple(int(r) for r in args.rates.split(","))
        if args.rates else DEFAULT_RATES_PER_MS
    )
    cfg = SoakConfig(
        seed=args.seed, cokernels=args.cokernels, pages=args.pages,
        step_ns=args.step_ns, rates_per_ms=rates,
        plan_spec=args.plan, overload_spec=args.overload,
    )
    if args.slo_p99_ns is not None:
        cfg.slo_p99_attach_ns = args.slo_p99_ns
    if args.slo_retention is not None:
        cfg.slo_goodput_retention = args.slo_retention
    # One observability scope per mode would split the black box; the
    # soak flies both ramps under a single scope so breadcrumbs from the
    # protected run land in the breach bundle.
    with obs.observing(trace=True, metrics=True,
                       max_trace_events=FLIGHTREC_TRACE_CAP,
                       flightrec=True) as ctx:
        protected, baseline = run_soak_pair(cfg)
        recorder = ctx.flightrec
        verdicts = protected.verdicts()
        for name in sorted(verdicts):
            if not verdicts[name]["ok"]:
                recorder.note("slo.violation", protected.end_ns, slo=name,
                              detail=verdicts[name]["detail"])
        breached = [n for n in sorted(verdicts) if not verdicts[n]["ok"]]
        if breached:
            recorder.trigger("slo.violation", protected.end_ns,
                             slo=breached[0],
                             detail=verdicts[breached[0]]["detail"])

    for report in (protected, baseline):
        print("\n".join(report.lines()))
        print()
    print("SLOs (protected):")
    print("\n".join(reporting.slo_lines(verdicts)))

    if args.out:
        doc = bench_doc(protected, baseline)
        out_dir = os.path.dirname(args.out)
        if out_dir:
            os.makedirs(out_dir, exist_ok=True)
        text = json.dumps(doc, sort_keys=True, indent=2) + "\n"
        with open(args.out, "w") as fp:
            fp.write(text)
        print(f"\n[BENCH_serving.json: {len(text)} bytes -> {args.out}]")

    if breached:
        if args.bundle_dir:
            bundle_path = flightrec_mod.write_bundle(
                os.path.join(args.bundle_dir, "incident-slo"),
                recorder.last_trigger,
                recorder=recorder,
                config={
                    "command": "soak",
                    "seed": cfg.seed,
                    "plan": cfg.plan_spec,
                    "overload": cfg.overload_spec,
                    "breached": breached,
                },
            )
            print("\n".join(reporting.bundle_line(bundle_path)))
        return 4
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
