"""Closed-loop serving sessions: the load generator behind ``serve-report``.

The first slice of the ROADMAP-4 load generator: the standard co-kernel
rig runs as a *service* — every co-kernel exports one named segment, and
a fleet of Linux-side client sessions runs the closed loop

    search → get → attach → touch → detach → release → think

``ops`` times each. Closed-loop means a session issues its next round
only after the previous one completed plus an exponentially distributed
think time (seeded per session, so the interleaving is deterministic and
byte-identical run-to-run while still exercising concurrency).

Attach latency is measured client-side on the virtual clock into a
local :class:`~repro.obs.metrics.Histogram`, so the
:class:`ServeReport` carries interpolated p50/p95/p99 even when the
global observability context is dark. Under ``obs.observing(...)`` the
same run additionally yields the full telemetry pipeline (spans with
journey tags, time-series windows, SLO verdicts) — that is what
``python -m repro serve-report`` wires together.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.hw.costs import PAGE_4K
from repro.obs.metrics import Histogram
from repro.xemem import XememError, XememTimeout, XpmemApi

#: Histogram bounds for client-observed attach latency (ns): 2 µs .. 5 ms.
ATTACH_BOUNDS = (
    2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
    200_000, 500_000, 1_000_000, 5_000_000,
)


@dataclass
class SessionConfig:
    """Shape of one serving run (all virtual-time deterministic)."""

    seed: int = 0
    sessions: int = 6          #: concurrent client sessions
    ops: int = 8               #: closed-loop rounds per session
    cokernels: int = 2         #: exporting co-kernels (one segment each)
    pages: int = 16            #: pages per exported segment
    mean_think_ns: int = 20_000  #: mean think time between rounds


@dataclass
class ServeReport:
    """What a serving run did; derived from sim state only, so one
    config reproduces it byte-for-byte."""

    config: SessionConfig
    end_ns: int = 0
    drained: bool = False
    exported: int = 0
    ops_ok: int = 0
    ops_error: int = 0
    attach_count: int = 0
    attach_p50_ns: float = 0.0
    attach_p95_ns: float = 0.0
    attach_p99_ns: float = 0.0
    attach_max_ns: float = 0.0
    segment_names: List[str] = field(default_factory=list)

    @property
    def ops_total(self) -> int:
        return self.ops_ok + self.ops_error

    def lines(self) -> List[str]:
        cfg = self.config
        return [
            f"serve seed={cfg.seed} sessions={cfg.sessions} ops={cfg.ops} "
            f"cokernels={cfg.cokernels} pages={cfg.pages}",
            f"  end: {self.end_ns} ns  drained={self.drained}",
            f"  exports: {self.exported} "
            f"({', '.join(self.segment_names)})",
            f"  ops: {self.ops_total} total = {self.ops_ok} ok + "
            f"{self.ops_error} error",
            f"  attach latency ({self.attach_count} samples): "
            f"p50={self.attach_p50_ns / 1e3:.1f}us "
            f"p95={self.attach_p95_ns / 1e3:.1f}us "
            f"p99={self.attach_p99_ns / 1e3:.1f}us "
            f"max={self.attach_max_ns / 1e3:.1f}us",
        ]


def run_sessions(config: Optional[SessionConfig] = None,
                 **overrides) -> ServeReport:
    """Run the closed-loop serving scenario; returns a :class:`ServeReport`.

    Accepts either a :class:`SessionConfig` or its fields as keyword
    arguments. Builds the standard rig internally, so running inside an
    ``obs.observing(...)`` scope attaches the full telemetry pipeline
    (the engine is created inside the scope and picks up the hooks).
    """
    # Imported here: repro.bench.configs itself imports repro.workloads
    # (for the in situ driver), so a module-level import would be circular.
    from repro.bench.configs import build_cokernel_system

    cfg = config if config is not None else SessionConfig(**overrides)
    rig = build_cokernel_system(num_cokernels=cfg.cokernels, seed=cfg.seed)
    report = ServeReport(config=cfg)

    eng = rig.engine
    linux_kernel = rig.linux.kernel
    attach_ns = Histogram("serve.attach.ns", ATTACH_BOUNDS)
    counts = {"ok": 0, "error": 0}

    def session(api: XpmemApi, name: str, rng: random.Random):
        """One closed-loop client session against one named segment."""
        for _ in range(cfg.ops):
            try:
                segid = yield from api.xpmem_search(name)
                if segid is None:
                    counts["error"] += 1
                    continue
                apid = yield from api.xpmem_get(segid)
                t0 = eng.now
                att = yield from api.xpmem_attach(
                    apid, 0, cfg.pages * PAGE_4K
                )
                attach_ns.observe(eng.now - t0)
                yield from linux_kernel.touch_pages(
                    api.proc, att.vaddr, cfg.pages
                )
                yield from api.xpmem_detach(att)
                yield from api.xpmem_release(apid)
                counts["ok"] += 1
            except (XememTimeout, XememError):
                counts["error"] += 1
            think = int(rng.expovariate(1.0 / cfg.mean_think_ns))
            if think:
                yield eng.sleep(think)

    def scenario():
        # Export phase: every co-kernel publishes one named segment.
        names = []
        for enclave in rig.cokernels:
            kernel = enclave.kernel
            if cfg.pages > kernel.heap_pages:
                kernel.heap_pages = cfg.pages
            proc = kernel.create_process(f"svc-{enclave.name}")
            heap = kernel.heap_region(proc)
            api = XpmemApi(proc)
            name = f"svc/{enclave.name}"
            yield from api.xpmem_make(
                heap.start, cfg.pages * PAGE_4K, name=name
            )
            names.append(name)
            report.exported += 1
        report.segment_names = names
        # Serving phase: sessions fan out round-robin over the segments.
        clients = []
        for i in range(cfg.sessions):
            proc = linux_kernel.create_process(
                f"session-{i}", core_id=1 + i % 4
            )
            rng = random.Random((cfg.seed << 16) ^ i)
            clients.append(
                eng.spawn(
                    session(XpmemApi(proc), names[i % len(names)], rng),
                    name=f"session:{i}",
                )
            )
        if clients:
            yield eng.all_of(clients)

    eng.run_process(scenario(), name="serve")
    eng.run()  # drain stragglers (retransmit timers, heartbeat daemons)

    report.end_ns = eng.now
    report.drained = eng.queue_len == 0
    report.ops_ok = counts["ok"]
    report.ops_error = counts["error"]
    report.attach_count = attach_ns.count
    report.attach_p50_ns = attach_ns.quantile(0.50)
    report.attach_p95_ns = attach_ns.quantile(0.95)
    report.attach_p99_ns = attach_ns.quantile(0.99)
    report.attach_max_ns = attach_ns.stats.max if attach_ns.count else 0.0
    return report
