"""Noise-aware compute: turning base work into wall-clock on a noisy core.

A compute phase of ``base_ns`` on a core does not finish in ``base_ns``:
the OS steals time (ticks, daemons, SMIs, XEMEM service). Rather than
simulating every 1 kHz tick as an event, the kernels expose analytic
noise accounting (:meth:`repro.kernels.base.KernelBase.stolen_ns`), and
this helper finds the fixed point

    elapsed = base_ns + stolen(t0, t0 + elapsed)

by sleeping the base first and then extending the sleep until the account
balances. Converges in a few rounds because noise fractions are ≪ 1.
This is what amplifies into the Fig. 8/9 Linux-only variance: the daemon
bursts are heavy-tailed and differently seeded per run.
"""

from __future__ import annotations


def noise_aware_compute(kernel, proc, base_ns: int, slowdown: float = 1.0):
    """Generator: run ``base_ns`` of application work on ``proc``'s core.

    ``slowdown`` scales the base work (co-location interference,
    virtualization overhead). Returns the actual elapsed nanoseconds.
    """
    if base_ns < 0:
        raise ValueError(f"negative compute {base_ns}")
    engine = kernel.engine
    target_base = int(base_ns * slowdown)
    t0 = engine.now
    yield engine.sleep(target_base)
    while True:
        stolen = kernel.stolen_ns(proc.core_id, t0, engine.now)
        target = target_base + stolen
        done = engine.now - t0
        if done >= target:
            return done
        yield engine.sleep(target - done)
