"""The composed in situ workload (paper §6.1–6.2).

A modified-HPCCG *simulation* and a STREAM *analytics* program, coupled
exactly as the paper describes: stop/go signals are variables in shared
memory (a small control segment exported by the simulation), the
analytics side polls them, and the simulation's data region reaches the
analytics program through XEMEM.

Workflow parameters (§6.2):

* **synchronous** — at each communication interval the simulation blocks
  until the analytics program finishes STREAM and acks;
  **asynchronous** — the analytics program acks immediately after
  (optionally) attaching, then runs STREAM while the simulation resumes.
* **one-time** — the simulation exports one data region up front and the
  analytics program attaches once;
  **recurring** — a fresh region is exported at every interval and
  attached (and detached) every time.

Interference is explicit and seeded: while the analytics program is
actively streaming, a concurrently executing simulation is slowed by a
memory-bandwidth contention factor — large when both run under the same
kernel (the Linux-only configuration), small across enclave boundaries.
OS noise enters through the kernels' noise profiles via
:func:`~repro.workloads.compute.noise_aware_compute`.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.hw.costs import MB, PAGE_4K
from repro.kernels.noise import splitmix64
from repro.workloads.compute import noise_aware_compute
from repro.workloads.hpccg import HpccgProblem, HpccgSolver
from repro.workloads.stream import StreamBenchmark
from repro.xemem.api import XpmemApi
from repro.xemem.ids import SegmentId

#: Control-segment layout (offsets of uint64 words).
CTL_SEQ = 0        # simulation -> analytics: "go" counter
CTL_ACK = 8        # analytics -> simulation: completion counter
CTL_DATA_SEGID = 16  # segid of the current data region
CTL_BYTES = 4096

POLL_START_NS = 1_000
POLL_CAP_NS = 1_000_000


def write_u64(view, offset: int, value: int) -> None:
    """Store one little-endian u64 into a shared view."""
    view.write(offset, struct.pack("<Q", value))


def read_u64(view, offset: int) -> int:
    """Load one little-endian u64 from a shared view."""
    return struct.unpack("<Q", view.read(offset, 8))[0]


class SharedFlags:
    """Typed accessor for the control segment's stop/go words.

    The paper's applications poll "variables in shared memory"; this
    wraps a control-segment view with named accessors for those words.
    """

    def __init__(self, view):
        self.view = view

    @property
    def seq(self) -> int:
        return read_u64(self.view, CTL_SEQ)

    @seq.setter
    def seq(self, value: int) -> None:
        write_u64(self.view, CTL_SEQ, value)

    @property
    def ack(self) -> int:
        return read_u64(self.view, CTL_ACK)

    @ack.setter
    def ack(self, value: int) -> None:
        write_u64(self.view, CTL_ACK, value)

    @property
    def data_segid(self) -> int:
        return read_u64(self.view, CTL_DATA_SEGID)

    @data_segid.setter
    def data_segid(self, value: int) -> None:
        write_u64(self.view, CTL_DATA_SEGID, value)


def poll_u64_at_least(engine, view, offset: int, target: int):
    """Generator: poll a shared word until it reaches ``target``.

    Exponential backoff keeps the event count bounded; the paper's
    workloads poll continuously, and at the capped 1 ms granularity the
    detection-latency difference is invisible at the 150 s scale.
    """
    interval = POLL_START_NS
    while read_u64(view, offset) < target:
        yield engine.sleep(interval)
        interval = min(interval * 2, POLL_CAP_NS)


@dataclass
class InSituConfig:
    """One experimental cell of §6 (a bar of Fig. 8 / a point of Fig. 9)."""

    execution: str = "sync"         # "sync" | "async"
    attach: str = "one_time"        # "one_time" | "recurring"
    iterations: int = 600
    comm_interval: int = 40
    data_bytes: int = 512 * MB
    problem: HpccgProblem = field(default_factory=lambda: HpccgProblem(100, 100, 100))
    sim_ncores: int = 1
    #: HPCCG slowdown while virtualized (Palacios is lightweight).
    sim_vm_slowdown: float = 1.0
    #: STREAM slowdown of the analytics environment (1.0 native;
    #: Palacios-on-Linux guests pay the most, §6.4).
    analytics_slowdown: float = 1.0
    #: "poll" = the paper's stop/go variables polled in shared memory;
    #: "notify" = the event-notification extension (kernel doorbells,
    #: §6.1 future work — ablation E compares the two).
    signal_mode: str = "poll"
    #: Simulation slowdown while analytics streams under the SAME kernel
    #: (Linux-only co-location: STREAM contends for the socket's memory
    #: bandwidth and the shared scheduler). Calibrated to the paper's
    #: ≈2.5 s async-mode gap between Linux-only and Kitten/Linux.
    colocated_interference: float = 1.18
    #: ... and across enclave boundaries (separate kernels, shared DRAM).
    isolated_interference: float = 1.04
    seed: int = 0
    verify_numerics: bool = False

    def __post_init__(self):
        if self.execution not in ("sync", "async"):
            raise ValueError(f"bad execution model {self.execution!r}")
        if self.attach not in ("one_time", "recurring"):
            raise ValueError(f"bad attach model {self.attach!r}")
        if self.signal_mode not in ("poll", "notify"):
            raise ValueError(f"bad signal mode {self.signal_mode!r}")
        if self.iterations % self.comm_interval:
            raise ValueError("iterations must be a multiple of comm_interval")

    @property
    def comm_points(self) -> int:
        """Number of simulation/analytics communication intervals."""
        return self.iterations // self.comm_interval


@dataclass
class InSituResult:
    """Outcome of one composed run (timings, faults, verification)."""
    sim_time_s: float
    stream_times_s: List[float]
    attach_times_s: List[float]
    analytics_faults: int
    data_marks_verified: bool
    numerics_verified: Optional[bool]
    config: InSituConfig


class InSituWorkload:
    """Drives one full composed run on an assembled enclave system."""

    def __init__(self, sim_enclave, analytics_enclave, config: InSituConfig,
                 iteration_hook: Optional[Callable] = None):
        self.sim_enclave = sim_enclave
        self.analytics_enclave = analytics_enclave
        self.config = config
        self.engine = sim_enclave.engine
        #: Optional generator factory called as ``iteration_hook(it)`` after
        #: every simulation iteration (the cluster layer's MPI allreduce).
        self.iteration_hook = iteration_hook
        self._analytics_streaming = False
        self._marks_ok = True
        self._rng_draw = 0

    # -- interference -----------------------------------------------------------

    def _sim_slowdown(self) -> float:
        """Per-iteration simulation slowdown from concurrent analytics."""
        cfg = self.config
        if not self._analytics_streaming:
            return cfg.sim_vm_slowdown
        base = (
            cfg.colocated_interference
            if self.sim_enclave is self.analytics_enclave
            else cfg.isolated_interference
        )
        # seeded jitter: contention is bursty, not constant
        self._rng_draw += 1
        u = splitmix64(cfg.seed * 7919 + self._rng_draw) / 2**64
        jitter = 1.0 + 0.15 * (u - 0.5)
        return cfg.sim_vm_slowdown * base * jitter

    # -- the two program halves -----------------------------------------------------

    def _sim_main(self, proc, api: XpmemApi, ctl_view, data_state):
        cfg = self.config
        kernel = proc.kernel
        iter_ns = cfg.problem.iteration_ns(kernel.costs, cfg.sim_ncores)
        t_start = self.engine.now
        seq = 0
        for it in range(1, cfg.iterations + 1):
            yield from noise_aware_compute(
                kernel, proc, iter_ns, slowdown=self._sim_slowdown()
            )
            if self.iteration_hook is not None:
                yield from self.iteration_hook(it)
            if it % cfg.comm_interval == 0:
                seq += 1
                if cfg.attach == "recurring" and seq > 1:
                    yield from self._sim_reexport(proc, api, data_state)
                # stamp the data region so analytics can verify real bytes
                data_state["view"].write(0, struct.pack("<Q", 0xC0FFEE00 + seq))
                write_u64(ctl_view, CTL_DATA_SEGID, int(data_state["segid"]))
                write_u64(ctl_view, CTL_SEQ, seq)
                if cfg.signal_mode == "notify":
                    yield from api.xpmem_signal(data_state["ctl_segid"])
                    yield from api.xpmem_wait(data_state["ack_segid"])
                else:
                    # wait for the ack word (sync: after STREAM; async:
                    # immediate) by polling shared memory, §6.1
                    yield from poll_u64_at_least(
                        self.engine, ctl_view, CTL_ACK, seq
                    )
        return (self.engine.now - t_start) / 1e9

    def _sim_reexport(self, proc, api: XpmemApi, data_state):
        """Recurring model: retire the old segid, register a fresh one.

        The simulation's data buffer itself persists (it is the solver's
        working set); what recurs is the *registration* — so the exporter
        pays a name-server round trip per interval, and the attacher pays
        a fresh attach (with, on Linux, fresh demand-paging faults over
        the new lazy VMA — the §6.4 mechanism).
        """
        yield from api.xpmem_remove(data_state["segid"])
        segid = yield from api.xpmem_make(data_state["vaddr"], self.config.data_bytes)
        data_state["segid"] = segid
        data_state["view"] = api.segment(segid).view()

    def _analytics_main(self, proc, api: XpmemApi, segids, result):
        cfg = self.config
        ctl_segid, ack_segid = segids
        kernel = proc.kernel
        stream = StreamBenchmark(kernel, proc)
        ctl_apid = yield from api.xpmem_get(ctl_segid)
        ctl_att = yield from api.xpmem_attach(ctl_apid)
        if cfg.signal_mode == "notify":
            yield from api.xpmem_subscribe(ctl_segid)
        attached = None
        data_apid = None
        for point in range(1, cfg.comm_points + 1):
            if cfg.signal_mode == "notify":
                yield from api.xpmem_wait(ctl_segid)
            else:
                yield from poll_u64_at_least(
                    self.engine, ctl_att.view, CTL_SEQ, point
                )
            if attached is None or cfg.attach == "recurring":
                if attached is not None:
                    yield from api.xpmem_detach(attached)
                    yield from api.xpmem_release(data_apid)
                segid = SegmentId(read_u64(ctl_att.view, CTL_DATA_SEGID))
                t0 = self.engine.now
                data_apid = yield from api.xpmem_get(segid)
                attached = yield from api.xpmem_attach(data_apid)
                result["attach_times"].append((self.engine.now - t0) / 1e9)
            # verify the simulation's stamp through the shared mapping
            mark = struct.unpack("<Q", attached.read(0, 8))[0]
            if mark != 0xC0FFEE00 + point:
                self._marks_ok = False
            if cfg.execution == "async":
                yield from self._ack(api, ctl_att, ack_segid, point)
            # the attacher touches the region (faults on lazy local maps)
            if attached.kind != "smartmap":
                faults = yield from kernel.touch_pages(
                    proc, attached.vaddr, attached.npages
                )
                result["faults"] += faults
            self._analytics_streaming = True
            sres = yield from stream.run(
                attached.view, cfg.data_bytes, slowdown=cfg.analytics_slowdown
            )
            self._analytics_streaming = False
            result["stream_times"].append(sres.elapsed_ns / 1e9)
            if cfg.execution == "sync":
                yield from self._ack(api, ctl_att, ack_segid, point)
        return result

    def _ack(self, api: XpmemApi, ctl_att, ack_segid, point: int):
        write_u64(ctl_att.view, CTL_ACK, point)
        if self.config.signal_mode == "notify":
            yield from api.xpmem_signal(ack_segid)

    # -- setup + drive ---------------------------------------------------------------

    def start(self):
        """Spawn the simulation and analytics processes; returns
        ``(sim_proc, analytics_proc)`` without driving the engine.

        Multi-node runs (Fig. 9) start one workload per node in a shared
        engine and then drive them together; :meth:`run` is the
        single-workload convenience wrapper.
        """
        cfg = self.config
        engine = self.engine
        sim_kernel = self.sim_enclave.kernel
        ana_kernel = self.analytics_enclave.kernel
        data_pages = -(-cfg.data_bytes // PAGE_4K)
        if sim_kernel.kernel_type == "kitten":
            sim_kernel.heap_pages = data_pages + 2  # data + control slack
        sim_proc = sim_kernel.create_process("hpccg-sim")
        ana_core = ana_kernel.cores[min(1, len(ana_kernel.cores) - 1)].core_id
        ana_proc = ana_kernel.create_process("analytics", core_id=ana_core)
        result = {"stream_times": [], "attach_times": [], "faults": 0}

        def setup_and_sim():
            api = XpmemApi(sim_proc)
            if sim_kernel.kernel_type == "linux":
                ctl_region = yield from sim_kernel.mmap_anonymous(sim_proc, CTL_BYTES)
                yield from sim_kernel.touch_pages(sim_proc, ctl_region.start, 1)
                data_region = yield from sim_kernel.mmap_anonymous(
                    sim_proc, cfg.data_bytes, "data"
                )
                yield from sim_kernel.touch_pages(
                    sim_proc, data_region.start, data_region.npages
                )
                ctl_vaddr, data_vaddr = ctl_region.start, data_region.start
            else:
                heap = sim_kernel.heap_region(sim_proc)
                data_vaddr = heap.start
                ctl_vaddr = heap.start + data_pages * PAGE_4K
                data_region = heap
            ctl_segid = yield from api.xpmem_make(
                ctl_vaddr, CTL_BYTES, name=f"insitu-ctl-{cfg.seed}"
            )
            # a second registration of the control page serves as the
            # simulation-side doorbell in notify mode
            ack_segid = yield from api.xpmem_make(ctl_vaddr, CTL_BYTES)
            data_segid = yield from api.xpmem_make(data_vaddr, cfg.data_bytes)
            ctl_view = api.segment(ctl_segid).view()
            data_state = {
                "segid": data_segid,
                "vaddr": data_vaddr,
                "region": data_region,
                "view": api.segment(data_segid).view(),
                "ctl_segid": ctl_segid,
                "ack_segid": ack_segid,
            }
            ready.trigger((ctl_segid, ack_segid))
            sim_time = yield from self._sim_main(sim_proc, api, ctl_view, data_state)
            return sim_time

        def analytics():
            segids = yield ready
            api = XpmemApi(ana_proc)
            yield from self._analytics_main(ana_proc, api, segids, result)

        ready = engine.event("insitu-ready")
        sim_p = engine.spawn(setup_and_sim(), name="sim")
        ana_p = engine.spawn(analytics(), name="analytics")
        self._result_state = result
        return sim_p, ana_p

    def collect(self, sim_p) -> InSituResult:
        """Build the result record once both processes have finished."""
        cfg = self.config
        result = self._result_state
        numerics = None
        if cfg.verify_numerics:
            solver = HpccgSolver(HpccgProblem(24, 24, 24))
            _x, hist = solver.solve(solver.default_rhs(cfg.seed), tol=1e-8,
                                    max_iters=200)
            numerics = hist[-1] < 1e-8
        return InSituResult(
            sim_time_s=sim_p.result,
            stream_times_s=result["stream_times"],
            attach_times_s=result["attach_times"],
            analytics_faults=result["faults"],
            data_marks_verified=self._marks_ok,
            numerics_verified=numerics,
            config=cfg,
        )

    def run(self) -> InSituResult:
        """Start and drive one workload to completion."""
        sim_p, ana_p = self.start()
        self.engine.run_until_complete(sim_p)
        self.engine.run_until_complete(ana_p)
        return self.collect(sim_p)
