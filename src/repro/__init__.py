"""XEMEM reproduction: cross-enclave shared memory for composed applications.

This package reproduces *XEMEM: Efficient Shared Memory for Composed
Applications on Multi-OS/R Exascale Systems* (Kocoloski & Lange, HPDC 2015)
on a deterministic, discrete-event simulated exascale node.

Layering (bottom to top):

``repro.sim``
    Discrete-event engine: virtual clock, generator processes, resources.
``repro.hw``
    Hardware substrate: physical frames over a real numpy backing store,
    NUMA topology, IPIs, the InfiniBand NIC, and the calibrated cost model.
``repro.kernels``
    Enclave operating systems: 4-level page tables, address spaces, the
    Linux fullweight kernel and the Kitten lightweight kernel models.
``repro.virt``
    The Palacios lightweight VMM: red-black-tree memory map, virtual PCI
    device, guest Linux enclaves.
``repro.pisces``
    The Pisces co-kernel architecture: node partitioning and the IPI-based
    cross-enclave kernel channel.
``repro.enclave``
    Enclave abstraction and hierarchical topologies with name-server
    discovery and routing (paper section 3.2).
``repro.xemem``
    The paper's contribution: the XPMEM-compatible API, the centralized
    name server, the command routing protocol, and the per-enclave XEMEM
    module that walks page tables and installs cross-enclave mappings.
``repro.workloads``
    HPCCG-style conjugate gradient, STREAM, the composed in situ driver,
    and the Selfish Detour noise benchmark.
``repro.cluster``
    Multi-node simulation, the MPI collectives model, and the RDMA verbs
    baseline.
``repro.bench``
    Experiment drivers that regenerate every figure and table in the
    paper's evaluation.
"""

__version__ = "1.0.0"

from repro.sim.engine import Engine
from repro.hw.costs import CostModel

__all__ = ["Engine", "CostModel", "__version__"]
