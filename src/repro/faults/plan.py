"""Fault plans: seeded, declarative descriptions of what goes wrong.

A :class:`FaultPlan` is pure data — probabilities for per-message channel
faults and IPI loss, scheduled :class:`FaultEvent`\\ s (enclave crash,
name-server restart), the request deadline/retry policy that lets the
protocol recover, and the heartbeat/lease policy that lets the name
server garbage-collect a dead enclave's segids.

Determinism contract: an armed plan drives *all* randomness through one
``random.Random(plan.seed)`` owned by the injector, consumed strictly in
virtual-clock event order — so the same plan + seed reproduces the same
run byte for byte. A plan with nothing in it (``plan.empty``) consumes
no randomness, schedules nothing, and arms no deadlines, which is what
makes an armed-but-empty plan byte-identical to the unarmed baseline.

Plans can also be parsed from a compact CLI spec string::

    drop=0.02,dup=0.01,delay=0.05:20us,corrupt=0.01,ipiloss=0.02,
    timeout=2ms,retries=4,hb=200us,lease=1ms,horizon=50ms,
    crash=kitten1@5ms,nsrestart=@10ms:500us

Times accept ``ns``/``us``/``ms``/``s`` suffixes (bare numbers are ns).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

#: Scheduled event actions.
CRASH = "crash"
NS_RESTART = "ns_restart"

_ACTIONS = (CRASH, NS_RESTART)

_UNITS = {"ns": 1, "us": 1_000, "ms": 1_000_000, "s": 1_000_000_000}


def parse_ns(text: str) -> int:
    """``"20us"`` → 20000. Bare numbers are nanoseconds."""
    text = text.strip()
    for suffix, scale in _UNITS.items():
        if text.endswith(suffix) and not text[: -len(suffix)].endswith("n"):
            number = text[: -len(suffix)]
            if number:
                return int(float(number) * scale)
    return int(float(text))


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``action`` on ``target`` at ``at_ns``."""

    at_ns: int
    action: str
    target: Optional[str] = None  # enclave name for CRASH; unused for NS_RESTART
    duration_ns: int = 0          # NS_RESTART: outage window

    def __post_init__(self):
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.at_ns < 0 or self.duration_ns < 0:
            raise ValueError(f"negative time in {self!r}")
        if self.action == CRASH and not self.target:
            raise ValueError("crash event needs a target enclave name")


@dataclass
class FaultPlan:
    """Everything a chaos run injects, plus the recovery policy."""

    seed: int = 0

    # -- probabilistic per-message channel faults (mutually exclusive
    # outcomes of one uniform draw per delivery) --------------------------
    drop_prob: float = 0.0
    dup_prob: float = 0.0
    delay_prob: float = 0.0
    delay_ns: int = 20_000
    corrupt_prob: float = 0.0

    # -- IPI loss ----------------------------------------------------------
    ipi_loss_prob: float = 0.0
    ipi_retransmit_ns: int = 10_000

    # -- request deadline / retry policy (active whenever the armed plan
    # is non-empty; XememModule falls back to parking forever otherwise) --
    request_timeout_ns: int = 2_000_000
    max_retries: int = 4
    backoff_factor: int = 2

    # -- heartbeat / lease GC ----------------------------------------------
    heartbeats: bool = False
    heartbeat_period_ns: int = 200_000
    lease_ns: int = 1_000_000
    #: Heartbeat daemons stop at the horizon so the engine always drains.
    horizon_ns: Optional[int] = None

    # -- scheduled events --------------------------------------------------
    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self):
        for name in ("drop_prob", "dup_prob", "delay_prob", "corrupt_prob",
                     "ipi_loss_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name}={p} outside [0, 1]")
        total = self.drop_prob + self.dup_prob + self.delay_prob + self.corrupt_prob
        if total > 1.0:
            raise ValueError(
                f"channel fault probabilities sum to {total} > 1 "
                "(outcomes are mutually exclusive)"
            )
        if self.request_timeout_ns <= 0 or self.max_retries < 0:
            raise ValueError("request policy needs a positive timeout and "
                             "a non-negative retry count")
        if self.backoff_factor < 1:
            raise ValueError(f"backoff_factor {self.backoff_factor} < 1")
        if self.heartbeats:
            if self.horizon_ns is None:
                raise ValueError(
                    "heartbeats need horizon_ns: unbounded beacon daemons "
                    "would keep the event queue from ever draining"
                )
            if self.heartbeat_period_ns <= 0 or self.lease_ns <= 0:
                raise ValueError("heartbeat period and lease must be positive")
            if self.lease_ns <= self.heartbeat_period_ns:
                raise ValueError(
                    f"lease_ns={self.lease_ns} must exceed "
                    f"heartbeat_period_ns={self.heartbeat_period_ns} or every "
                    "live enclave expires between beacons"
                )
        self.events = sorted(self.events, key=lambda ev: (ev.at_ns, ev.action,
                                                          ev.target or ""))

    @property
    def affects_messages(self) -> bool:
        return (self.drop_prob or self.dup_prob or self.delay_prob
                or self.corrupt_prob) > 0.0

    @property
    def empty(self) -> bool:
        """True when arming this plan must change nothing at all."""
        return (
            not self.affects_messages
            and not self.ipi_loss_prob
            and not self.events
            and not self.heartbeats
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """Copy of this plan under a different seed."""
        return replace(self, seed=seed, events=list(self.events))

    # -- CLI spec parsing ---------------------------------------------------

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Build a plan from the compact ``key=value,...`` spec string."""
        fields: dict = {"seed": seed, "events": []}
        for item in filter(None, (s.strip() for s in spec.split(","))):
            if "=" not in item:
                raise ValueError(f"bad fault spec item {item!r} (want key=value)")
            key, _, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if key == "drop":
                fields["drop_prob"] = float(value)
            elif key == "dup":
                fields["dup_prob"] = float(value)
            elif key == "delay":
                prob, _, dur = value.partition(":")
                fields["delay_prob"] = float(prob)
                if dur:
                    fields["delay_ns"] = parse_ns(dur)
            elif key == "corrupt":
                fields["corrupt_prob"] = float(value)
            elif key == "ipiloss":
                fields["ipi_loss_prob"] = float(value)
            elif key == "timeout":
                fields["request_timeout_ns"] = parse_ns(value)
            elif key == "retries":
                fields["max_retries"] = int(value)
            elif key == "backoff":
                fields["backoff_factor"] = int(value)
            elif key == "hb":
                fields["heartbeats"] = True
                fields["heartbeat_period_ns"] = parse_ns(value)
            elif key == "lease":
                fields["lease_ns"] = parse_ns(value)
            elif key == "horizon":
                fields["horizon_ns"] = parse_ns(value)
            elif key == "crash":
                target, _, at = value.partition("@")
                if not at:
                    raise ValueError(f"crash needs target@time, got {value!r}")
                fields["events"].append(
                    FaultEvent(at_ns=parse_ns(at), action=CRASH, target=target)
                )
            elif key == "nsrestart":
                at, _, outage = value.lstrip("@").partition(":")
                fields["events"].append(
                    FaultEvent(
                        at_ns=parse_ns(at), action=NS_RESTART,
                        duration_ns=parse_ns(outage) if outage else 0,
                    )
                )
            else:
                raise ValueError(f"unknown fault spec key {key!r}")
        return cls(**fields)
