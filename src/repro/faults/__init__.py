"""Deterministic fault injection for the XEMEM reproduction.

Following gem5-style reproducible-simulation discipline, failures are
*seeded simulation inputs*, not nondeterministic accidents:

* :class:`~repro.faults.plan.FaultPlan` — declarative plan: probabilistic
  channel faults (drop/duplicate/delay/corrupt), IPI loss, scheduled
  enclave crashes and name-server restarts, plus the retry and
  heartbeat/lease recovery policy.
* :func:`~repro.faults.inject.arm` — install a
  :class:`~repro.faults.inject.FaultInjector` on a rig's engine. Every
  hook in the simulator is one attribute check when nothing is armed.
* :func:`~repro.faults.chaos.run_chaos` — the seeded chaos scenario
  behind ``python -m repro chaos``.

Same plan + same seed → byte-identical trace and virtual end time; an
empty or disarmed plan is byte-identical to the fault-free baseline.
See ``docs/FAULTS.md`` for the fault model and determinism contract.
"""

from repro.faults.inject import FaultInjector, arm, disarm
from repro.faults.plan import CRASH, NS_RESTART, FaultEvent, FaultPlan, parse_ns

__all__ = [
    "FaultPlan",
    "FaultEvent",
    "FaultInjector",
    "arm",
    "disarm",
    "parse_ns",
    "CRASH",
    "NS_RESTART",
]
