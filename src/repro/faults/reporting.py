"""Shared report rendering for the resilience CLIs.

``python -m repro chaos`` and ``python -m repro soak`` both end in the
same shape of story: an operation tally, fault-injection counts, and —
when overload protection is armed — the admission/backpressure ledger
and SLO verdicts. This module is the single renderer both use, so the
two reports stay comparable line-for-line and a new overload counter
shows up in both tools at once.

Pure formatting: everything here takes plain dicts derived from sim
state, returns lists of lines, and touches no simulator objects.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Admission-ledger keys rendered (in this order) when present.
_ADMISSION_KEYS = (
    "offered", "admitted", "rejected", "shed", "aborted",
    "completed", "peak_waiting",
)

#: Degradation/backpressure keys rendered on the second ledger line.
_PRESSURE_KEYS = (
    "stale_hits", "gc_deferred", "budget_exhausted", "breaker_opens",
    "level_transitions",
)


def ops_line(counts: Dict[str, int], label: str = "ops") -> str:
    """``ops: N total = a ok + b timeout + ...`` from an outcome dict."""
    total = sum(counts.values())
    parts = " + ".join(
        f"{counts[key]} {key}" for key in counts
    )
    return f"  {label}: {total} total = {parts}"


def fault_lines(fault_counts: Dict[str, int]) -> List[str]:
    """The non-zero injector counters, one compact line."""
    shown = ", ".join(
        f"{k}={v}" for k, v in sorted(fault_counts.items()) if v
    )
    return [f"  faults: {shown}"] if shown else []


def admission_lines(totals: Optional[Dict[str, int]]) -> List[str]:
    """The overload-protection ledger (empty when nothing was armed)."""
    if not totals:
        return []
    main = ", ".join(
        f"{key}={totals[key]}" for key in _ADMISSION_KEYS if key in totals
    )
    out = [f"  admission: {main}"]
    pressure = ", ".join(
        f"{key}={totals[key]}" for key in _PRESSURE_KEYS
        if totals.get(key)
    )
    if pressure:
        out.append(f"  degradation: {pressure}")
    return out


def slo_lines(verdicts: Dict[str, dict]) -> List[str]:
    """SLO verdicts: one ``OK``/``VIOLATED`` line per objective.

    Each verdict is ``{"ok": bool, "detail": str}``; the rendering
    matches ``repro.obs.slo.SloReport.lines()`` closely enough that
    serve-report and soak read the same way.
    """
    out = []
    for name in sorted(verdicts):
        verdict = verdicts[name]
        status = "OK" if verdict["ok"] else "VIOLATED"
        out.append(f"  {status}: {name} — {verdict['detail']}")
    return out


def bundle_line(bundle_path: str) -> List[str]:
    """The incident-bundle pointer (serve-report's convention)."""
    return [f"  incident bundle: {bundle_path}"] if bundle_path else []
