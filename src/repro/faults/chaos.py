"""The seeded chaos scenario behind ``python -m repro chaos``.

Builds the standard co-kernel rig, arms a :class:`FaultPlan`, and runs a
fixed shared-memory workload against it: every co-kernel exports one
named segment, and Linux-side clients hammer the full Table 1 cycle
(search → get → attach → read → detach → release) against each of them.
Everything that can fail under the plan — drops, duplicates, delays,
corruption, IPI loss, mid-attach enclave crashes, name-server restarts —
is expected to surface as :class:`XememError`/:class:`XememTimeout` on
individual operations, never as a hang or an engine blowup.

Same seed + same plan → byte-identical report; the determinism property
tests rely on this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.bench.configs import build_cokernel_system
from repro.faults import reporting
from repro.faults.inject import arm
from repro.faults.plan import FaultPlan
from repro.hw.costs import PAGE_4K
from repro.obs import flightrec as flightrec_mod
from repro.xemem import XememError, XememOverload, XememTimeout, XpmemApi
from repro.xemem.overload import OverloadConfig, admission_totals, arm_overload

#: The default plan: lossy channels, lossy IPIs, one mid-run crash, one
#: name-server restart — with a retry budget that still converges.
DEFAULT_PLAN_SPEC = (
    "drop=0.03,dup=0.03,delay=0.05:20us,corrupt=0.02,ipiloss=0.02,"
    "timeout=300us,retries=5,crash=kitten1@2ms,nsrestart=@4ms:200us"
)

#: Pages per exported chaos segment.
SEGMENT_PAGES = 16

#: Span ring cap for the chaos black box: enough tail to reconstruct the
#: faulting window, bounded so the recorder stays cheap.
FLIGHTREC_TRACE_CAP = 512


@dataclass
class ChaosReport:
    """What a chaos run did; every field is derived from sim state only
    (virtual clock, counters), so a (seed, plan) pair reproduces it."""

    seed: int
    plan_spec: str
    #: overload-protection spec armed for the run ("" = unprotected)
    overload_spec: str = ""
    end_ns: int = 0
    drained: bool = False
    live_processes: int = 0
    exported: int = 0
    ops_ok: int = 0
    ops_timeout: int = 0
    #: ops refused by admission control / backpressure (overload armed)
    ops_rejected: int = 0
    ops_error: int = 0
    fault_counts: dict = field(default_factory=dict)
    #: summed admission-controller ledger (empty when not armed)
    admission: dict = field(default_factory=dict)
    ns_live_segments: int = 0
    surviving_enclaves: list = field(default_factory=list)
    crashes: int = 0
    #: Segids the name server still lists under a *crashed* owner after
    #: the run drained — crash state the reclamation paths never cleaned.
    unreclaimed_segids: list = field(default_factory=list)
    #: Incident bundle emitted by the run's flight recorder ("" = none).
    bundle_path: str = ""

    @property
    def ops_total(self) -> int:
        return (self.ops_ok + self.ops_timeout + self.ops_rejected
                + self.ops_error)

    @property
    def reclaimed(self) -> bool:
        """True when the run left no unreclaimed crash state behind."""
        return (
            not self.unreclaimed_segids
            and self.drained
            and self.live_processes == 0
        )

    def lines(self) -> list:
        """Human-readable summary (virtual-clock facts only), rendered
        through the shared :mod:`repro.faults.reporting` helpers so
        chaos and soak reports stay comparable line-for-line."""
        ops = {"ok": self.ops_ok, "timeout": self.ops_timeout,
               "error": self.ops_error}
        if self.overload_spec:
            ops["rejected"] = self.ops_rejected
        out = [
            f"chaos seed={self.seed}",
            f"  plan: {self.plan_spec}",
        ]
        if self.overload_spec:
            out.append(f"  overload: {self.overload_spec}")
        out += [
            f"  end: {self.end_ns} ns  drained={self.drained} "
            f"live_processes={self.live_processes}",
            f"  exports: {self.exported}",
            reporting.ops_line(ops),
        ]
        out.extend(reporting.fault_lines(self.fault_counts))
        out.extend(reporting.admission_lines(self.admission))
        out += [
            f"  name server: {self.ns_live_segments} live segment(s)",
            f"  survivors: {', '.join(self.surviving_enclaves)}",
        ]
        if not self.reclaimed:
            leftovers = ", ".join(str(s) for s in self.unreclaimed_segids)
            out.append(
                "  UNRECLAIMED crash state: "
                f"segids [{leftovers}] still registered to dead owner(s)"
                if self.unreclaimed_segids
                else "  UNRECLAIMED crash state: run did not quiesce"
            )
        out.extend(reporting.bundle_line(self.bundle_path))
        return out


def run_chaos(seed: int = 0, plan_spec: Optional[str] = None,
              cokernels: int = 3, ops: int = 25,
              with_audit: Optional[bool] = None,
              flightrec_dir: Optional[str] = None,
              overload_spec: Optional[str] = None) -> ChaosReport:
    """Run the chaos scenario; returns a :class:`ChaosReport`.

    ``ops`` is the number of full get/attach/detach/release rounds each
    Linux-side client runs against its co-kernel's segment.
    ``overload_spec`` additionally arms the admission/backpressure layer
    of :mod:`repro.xemem.overload` on every module, so chaos faults and
    overload protection soak together; rejected operations are counted
    separately from errors and the admission ledger joins the report.

    Every chaos run flies with the black box armed: a ring-capped span
    tail, a metrics registry, and a :class:`~repro.obs.flightrec.
    FlightRecorder` fed by the fault injector and the crash paths. With
    ``flightrec_dir`` set, a run that crashed an enclave (or ended with
    unreclaimed crash state) freezes the box into an incident bundle
    there — byte-identical for the same (seed, plan) in every
    fastpath/fidelity mode.
    """
    spec = DEFAULT_PLAN_SPEC if plan_spec is None else plan_spec
    plan = FaultPlan.parse(spec, seed=seed)
    report = ChaosReport(seed=seed, plan_spec=spec,
                         overload_spec=overload_spec or "")
    with obs.observing(trace=True, metrics=True,
                       max_trace_events=FLIGHTREC_TRACE_CAP,
                       flightrec=True) as ctx:
        _run_scenario(report, plan, cokernels, ops, with_audit,
                      ctx, flightrec_dir)
    return report


def _run_scenario(report: ChaosReport, plan: FaultPlan, cokernels: int,
                  ops: int, with_audit: Optional[bool], ctx,
                  flightrec_dir: Optional[str]) -> None:
    rig = build_cokernel_system(num_cokernels=cokernels, with_audit=with_audit)
    protected = bool(report.overload_spec)
    if protected:
        arm_overload(rig, OverloadConfig.parse(report.overload_spec,
                                               seed=report.seed))

    eng = rig.engine
    linux_kernel = rig.linux.kernel
    counts = {"ok": 0, "timeout": 0, "rejected": 0, "error": 0}

    def client(api: XpmemApi, name: str):
        """One Linux client: the full Table 1 cycle, ``ops`` times.

        Every protocol failure is absorbed per operation; partially
        completed rounds roll their handles back so refcounts stay
        balanced on the survivor side.
        """
        for _ in range(ops):
            try:
                segid = yield from api.xpmem_search(name)
                if segid is None:
                    counts["error"] += 1
                    continue
                apid = yield from api.xpmem_get(segid)
            except XememOverload:
                counts["rejected"] += 1
                continue
            except XememTimeout:
                counts["timeout"] += 1
                continue
            except XememError:
                counts["error"] += 1
                continue
            att = None
            try:
                att = yield from api.xpmem_attach(
                    apid, 0, SEGMENT_PAGES * PAGE_4K
                )
                if not att.detached:  # may be crash-invalidated already
                    att.read(0, 8)
                yield from api.xpmem_detach(att)
                att = None
                yield from api.xpmem_release(apid)
                counts["ok"] += 1
            except XememTimeout:
                counts["timeout"] += 1
            except XememError as err:
                # rejection or error: roll back so the grant does not
                # pin state (release-class always admits, so the
                # rollback converges even under full overload)
                counts["rejected" if isinstance(err, XememOverload)
                       else "error"] += 1
                try:
                    if att is not None and not att.detached:
                        yield from api.xpmem_detach(att)
                    yield from api.xpmem_release(apid)
                except XememError:
                    pass

    def scenario():
        # Export phase: each co-kernel publishes one named segment. Runs
        # under the armed plan too, so exports themselves may time out.
        names = []
        for enclave in rig.cokernels:
            kernel = enclave.kernel
            proc = kernel.create_process(f"exp-{enclave.name}")
            heap = kernel.heap_region(proc)
            api = XpmemApi(proc)
            name = f"chaos/{enclave.name}"
            try:
                yield from api.xpmem_make(
                    heap.start, SEGMENT_PAGES * PAGE_4K, name=name
                )
            except (XememTimeout, XememError):
                continue
            names.append(name)
            report.exported += 1
        # Client phase: one concurrent Linux client per exported segment.
        clients = []
        for i, name in enumerate(names):
            proc = linux_kernel.create_process(
                f"client-{i}", core_id=1 + i % 4
            )
            clients.append(
                eng.spawn(client(XpmemApi(proc), name), name=f"client:{name}")
            )
        if clients:
            yield eng.all_of(clients)

    injector = arm(rig, plan)
    recorder = ctx.flightrec
    try:
        eng.run_process(scenario(), name="chaos")
        eng.run()  # drain stragglers (retransmit timers, heartbeat daemons)
    finally:
        # Fill the report (and dump the black box) even when the run dies
        # on an AuditViolation — that is precisely when the bundle matters.
        report.end_ns = eng.now
        report.drained = eng.queue_len == 0
        report.live_processes = len(eng.live_processes)
        report.ops_ok = counts["ok"]
        report.ops_timeout = counts["timeout"]
        report.ops_rejected = counts["rejected"]
        report.ops_error = counts["error"]
        report.fault_counts = dict(injector.counts)
        if protected:
            report.admission = admission_totals(rig)
        report.crashes = injector.counts.get("crashes", 0)
        ns = rig.system.name_server_enclave.module.nameserver
        report.ns_live_segments = ns.live_segments
        report.surviving_enclaves = [e.name for e in rig.system.enclaves]
        crashed_ids = {
            int(e.enclave_id) for e in rig.cokernels
            if e.module is not None and e.module.crashed
            and e.enclave_id is not None
        }
        report.unreclaimed_segids = sorted(
            int(sid) for sid, rec in ns.segids.items()
            if rec.owner_enclave_id in crashed_ids
        )
        if flightrec_dir is not None and (
            report.crashes or not report.reclaimed
            or recorder.last_trigger is not None
        ):
            report.bundle_path = _dump_bundle(
                flightrec_dir, report, recorder, eng
            )


def _dump_bundle(out_dir: str, report: ChaosReport, recorder,
                 engine) -> str:
    """Freeze the run's black box into ``out_dir``; returns the path."""
    if not report.reclaimed:
        recorder.note(
            "chaos.unreclaimed", engine.now,
            segids=list(report.unreclaimed_segids),
            drained=report.drained,
            live_processes=report.live_processes,
        )
    trigger = recorder.last_trigger
    if trigger is None:
        kind = "chaos.unreclaimed" if not report.reclaimed else "chaos.end"
        trigger = recorder.trigger(
            kind, engine.now, crashes=report.crashes,
            unreclaimed=len(report.unreclaimed_segids),
        )
    return flightrec_mod.write_bundle(
        out_dir, trigger, recorder=recorder,
        config={
            "command": "chaos",
            "seed": report.seed,
            "plan": report.plan_spec,
            "ops_completed": report.ops_total,
        },
    )
