"""The fault injector: arms a :class:`FaultPlan` on a rig's engine.

``arm(rig, plan)`` installs a :class:`FaultInjector` as ``engine.faults``.
Every hook site in the simulator (channel delivery, IPI send, the XEMEM
request path) does one attribute load + ``None`` check when no plan is
armed — the zero-cost contract — and consults the injector otherwise.

All randomness flows through the injector's private
``random.Random(plan.seed)``, consumed in virtual-clock event order, so
a (plan, seed) pair is a complete, reproducible description of the run.
An *empty* plan (no probabilities, no events, no heartbeats) never
touches the RNG, schedules nothing, and keeps ``active`` False, which
the protocol layer reads as "no deadlines" — arming it is byte-identical
to not arming anything.
"""

from __future__ import annotations

import random
from typing import Optional

from repro import obs
from repro.faults.plan import CRASH, NS_RESTART, FaultEvent, FaultPlan


class FaultInjector:
    """Runtime companion of one armed :class:`FaultPlan`."""

    #: A lost IPI is retransmitted at most this many times per send, so
    #: even ``ipiloss=1.0`` cannot wedge a sender forever.
    MAX_IPI_RETRANSMITS = 8

    def __init__(self, plan: FaultPlan, engine, system=None, pisces=None):
        self.plan = plan
        self.engine = engine
        self.system = system
        self.pisces = pisces
        self.rng = random.Random(plan.seed)
        #: True when the plan can actually do something; the protocol
        #: layer only arms request deadlines while this is set.
        self.active = not plan.empty
        #: The ambient flight recorder, captured at arm time (None when
        #: no black box is armed). Fault draws are exactly the events a
        #: post-mortem needs, so the injector is a natural feed point —
        #: and it already sits off the per-event hot path.
        self.flightrec = obs.get().flightrec
        #: Plain-int fault accounting (deterministic, always on).
        self.counts = {
            "msgs_dropped": 0,
            "msgs_duplicated": 0,
            "msgs_delayed": 0,
            "msgs_corrupted": 0,
            "ipi_lost": 0,
            "crashes": 0,
            "ns_restarts": 0,
            "events_skipped": 0,
            "heartbeats_sent": 0,
        }

    # -- probabilistic faults ---------------------------------------------

    @property
    def affects_messages(self) -> bool:
        return self.active and self.plan.affects_messages

    @property
    def affects_ipi(self) -> bool:
        return self.active and self.plan.ipi_loss_prob > 0.0

    def message_verdict(self, channel, msg):
        """One uniform draw → ('deliver'|'drop'|'dup'|'delay'|'corrupt', delay)."""
        plan = self.plan
        u = self.rng.random()
        edge = plan.drop_prob
        if u < edge:
            self.counts["msgs_dropped"] += 1
            self._breadcrumb("fault.msg.drop")
            return "drop", 0
        edge += plan.dup_prob
        if u < edge:
            self.counts["msgs_duplicated"] += 1
            self._breadcrumb("fault.msg.dup")
            return "dup", 0
        edge += plan.delay_prob
        if u < edge:
            self.counts["msgs_delayed"] += 1
            self._breadcrumb("fault.msg.delay", delay_ns=plan.delay_ns)
            return "delay", plan.delay_ns
        edge += plan.corrupt_prob
        if u < edge:
            self.counts["msgs_corrupted"] += 1
            self._breadcrumb("fault.msg.corrupt")
            return "corrupt", 0
        if self.flightrec is not None:
            self.flightrec.tick(self.engine.now)
        return "deliver", 0

    def ipi_lost(self) -> bool:
        """One draw per (re)transmission attempt."""
        if self.rng.random() < self.plan.ipi_loss_prob:
            self.counts["ipi_lost"] += 1
            self._breadcrumb("fault.ipi.lost")
            return True
        return False

    def _breadcrumb(self, kind: str, **detail) -> None:
        """Note a fired fault into the black box (and snapshot on cadence)."""
        if self.flightrec is not None:
            self.flightrec.note(kind, self.engine.now, **detail)
            self.flightrec.tick(self.engine.now)

    # -- scheduled events ---------------------------------------------------

    def _schedule_events(self) -> None:
        # Plans are usually written against t=0 but armed after discovery
        # already advanced the clock; past deadlines fire immediately.
        for event in self.plan.events:
            self.engine.call_at(
                max(event.at_ns, self.engine.now), self._fire, event
            )

    def _fire(self, event: FaultEvent) -> None:
        self._breadcrumb("fault.event", action=event.action,
                         target=event.target or "")
        if event.action == CRASH:
            enclave = self._enclave_by_name(event.target)
            if enclave is None or self.pisces is None:
                self.counts["events_skipped"] += 1
                obs.get().counter("faults.events.skipped").inc()
                return
            from repro.pisces.pisces import PartitionError

            # Lease-based GC is the *distributed* failure detector; only
            # fall back to direct name-server notification (the management
            # enclave noticing the dead partition) when no heartbeats run.
            try:
                self.pisces.crash_enclave(
                    enclave,
                    system=self.system,
                    notify_nameserver=not self.plan.heartbeats,
                )
            except PartitionError:
                # not a crashable co-kernel (e.g. the management enclave)
                self.counts["events_skipped"] += 1
                obs.get().counter("faults.events.skipped").inc()
                return
            self.counts["crashes"] += 1
            obs.get().counter("faults.crashes").inc()
            return
        if event.action == NS_RESTART:
            module = self._ns_module()
            if module is None:
                self.counts["events_skipped"] += 1
                return
            module.restart_nameserver(outage_ns=event.duration_ns)
            self.counts["ns_restarts"] += 1
            obs.get().counter("faults.ns_restarts").inc()

    def _enclave_by_name(self, name: str):
        if self.system is None:
            return None
        for enclave in self.system.enclaves:
            if enclave.name == name:
                return enclave
        return None

    def _ns_module(self):
        if self.system is None or self.system.name_server_enclave is None:
            return None
        return self.system.name_server_enclave.module

    # -- heartbeats ---------------------------------------------------------

    def _start_heartbeats(self) -> None:
        if not self.plan.heartbeats or self.system is None:
            return
        for enclave in self.system.enclaves:
            module = enclave.module
            if module is None or module.is_name_server:
                continue
            self.engine.spawn(
                self._heartbeat_loop(module), name=f"heartbeat:{enclave.name}"
            )

    def _heartbeat_loop(self, module):
        """Bounded beacon daemon: one liveness message per period until the
        horizon (or the enclave itself dies)."""
        from repro.enclave.enclave import ChannelClosedError
        from repro.xemem import commands as C
        from repro.xemem.ids import XememError
        from repro.xemem.routing import RoutingError

        plan = self.plan
        while self.engine.now + plan.heartbeat_period_ns <= plan.horizon_ns:
            yield self.engine.sleep(plan.heartbeat_period_ns)
            if module.crashed or not module.routing.discovered:
                return
            beacon = C.make_command(C.ENCLAVE_HEARTBEAT, module.my_id, None)
            try:
                yield from module._send(beacon)
            except (RoutingError, ChannelClosedError, XememError):
                return
            self.counts["heartbeats_sent"] += 1


def arm(rig, plan: FaultPlan) -> FaultInjector:
    """Arm ``plan`` on a rig (anything with ``engine``/``system``/``pisces``).

    Returns the installed :class:`FaultInjector`. Arming an empty plan
    installs an inactive injector: nothing is scheduled, no RNG is ever
    consumed, and the run is byte-identical to a disarmed one.
    """
    engine = getattr(rig, "engine", rig)
    if engine.faults is not None:
        raise RuntimeError("a fault plan is already armed on this engine")
    injector = FaultInjector(
        plan,
        engine,
        system=getattr(rig, "system", None),
        pisces=getattr(rig, "pisces", None),
    )
    engine.faults = injector
    if injector.flightrec is not None:
        injector.flightrec.attach(engine=engine, injector=injector)
    if injector.active:
        injector._schedule_events()
        injector._start_heartbeats()
    return injector


def disarm(rig) -> Optional[FaultInjector]:
    """Remove the armed injector (already-scheduled events still fire)."""
    engine = getattr(rig, "engine", rig)
    injector, engine.faults = engine.faults, None
    return injector
