"""Engine instrumentation: event counts, queue depth, process accounting.

An :class:`EngineObserver` plugs into :class:`repro.sim.engine.Engine` as
its optional ``obs`` sink. It records, entirely from deterministic
simulation state:

* **events executed** — every popped queue entry;
* **queue-depth samples** — the queue length every ``sample_every``
  events (sampling is event-indexed, not wallclock, so it is
  reproducible);
* **process records** — spawn/finish counts and each finished process's
  virtual runtime, with a ring-capped record list for diagnostics.

Separately — and only when ``profile=True`` — it keeps a **host
wallclock hot-path profile**: cumulative ``perf_counter`` seconds and
call counts per callback site, for finding *simulator* bottlenecks. The
profile is the single place host time is allowed; it never feeds traces
or metric snapshots, so those stay byte-identical across runs.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.obs.tracer import RingBuffer
from repro.sim.record import SeriesStats


def _callback_site(callback) -> str:
    """A stable label for where an event callback was defined."""
    func = getattr(callback, "__func__", callback)
    qualname = getattr(func, "__qualname__", None)
    if qualname is None:
        qualname = type(callback).__name__
    module = getattr(func, "__module__", "") or ""
    return f"{module}:{qualname}"


class EngineObserver:
    """Sink for :class:`~repro.sim.engine.Engine` instrumentation hooks."""

    def __init__(self, sample_every: int = 1024, profile: bool = False,
                 max_process_records: Optional[int] = 4096):
        if sample_every <= 0:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        self.sample_every = sample_every
        self.profile_enabled = profile
        self.events_executed = 0
        self.queue_depth = SeriesStats()
        self.processes_spawned = 0
        self.processes_finished = 0
        self.process_runtime_ns = SeriesStats()
        #: (name, started_at, finished_at) per finished process, ring-capped.
        self.process_records = RingBuffer(max_process_records)
        #: site -> [calls, cumulative wallclock seconds] (profile mode only).
        self._profile: Dict[str, List[float]] = {}

    # -- engine hooks ---------------------------------------------------------

    def run_event(self, engine, callback, args=()) -> None:
        """Execute one popped event on the engine's behalf, instrumented."""
        self.events_executed += 1
        if self.events_executed % self.sample_every == 0:
            self.queue_depth.add(engine.queue_len)
        if not self.profile_enabled:
            callback(*args)
            return
        t0 = time.perf_counter()
        try:
            callback(*args)
        finally:
            elapsed = time.perf_counter() - t0
            cell = self._profile.setdefault(_callback_site(callback), [0, 0.0])
            cell[0] += 1
            cell[1] += elapsed

    def on_spawn(self, engine, proc) -> None:
        """A process was spawned."""
        self.processes_spawned += 1

    def on_finish(self, engine, proc) -> None:
        """A process finished; record its virtual runtime."""
        self.processes_finished += 1
        if proc.finished_at is not None:
            self.process_runtime_ns.add(proc.finished_at - proc.started_at)
        self.process_records.append((proc.name, proc.started_at, proc.finished_at))

    # -- reporting ------------------------------------------------------------

    def hot_sites(self, top: int = 15) -> List[Tuple[str, int, float, float]]:
        """Profile rows ``(site, calls, seconds, events_per_sec)``, hottest
        first. Empty unless constructed with ``profile=True``."""
        rows = [
            (site, int(calls), secs, (calls / secs) if secs > 0 else float("inf"))
            for site, (calls, secs) in self._profile.items()
        ]
        rows.sort(key=lambda r: r[2], reverse=True)
        return rows[:top]

    def publish(self, metrics) -> None:
        """Fold the deterministic engine stats into a metrics registry."""
        metrics.counter("engine.events.executed").inc(self.events_executed)
        metrics.counter("engine.processes.spawned").inc(self.processes_spawned)
        metrics.counter("engine.processes.finished").inc(self.processes_finished)
        if self.queue_depth.count:
            metrics.gauge("engine.queue_depth.mean").set(self.queue_depth.mean)
            metrics.gauge("engine.queue_depth.max").set(self.queue_depth.max)
        if self.process_runtime_ns.count:
            metrics.gauge("engine.process.runtime_ns.mean").set(
                self.process_runtime_ns.mean
            )
            metrics.gauge("engine.process.runtime_ns.max").set(
                self.process_runtime_ns.max
            )
