"""Deterministic exporters: Prometheus text, folded stacks, HTML dashboard.

Three render-only surfaces over already-recorded observability state —
none of them touch simulation state, all of them emit byte-identical
output for identical runs (sorted iteration everywhere, no wallclock):

* :func:`prometheus_text` — Prometheus text exposition (version 0.0.4)
  of a :class:`~repro.obs.metrics.MetricsRegistry`: counters, gauges,
  and histograms with cumulative ``_bucket{le=...}`` series plus
  ``_count``/``_sum``. Dot-paths become underscore names
  (``xemem.attach.ns`` → ``xemem_attach_ns``).
* :func:`folded_stacks` — the folded single-line-per-stack format
  consumed by ``flamegraph.pl`` and speedscope: one
  ``root;child;leaf <value>`` line per distinct span path, the value
  being **exclusive virtual nanoseconds** summed over every occurrence
  of the path (so the flame graph's widths add up to total attributed
  time with no double counting).
* :func:`dashboard_html` — a single self-contained HTML file (inline
  JSON + vanilla JS + inline SVG, no network, no external assets)
  rendering the time-series quantile chart, the SLO verdict table, and
  the top request journeys.
"""

from __future__ import annotations

import json
import re
from typing import Dict, IO, List, Tuple, Union

from repro.obs.analysis import TraceData, SpanNode, exclusive_ns
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return _NAME_RE.sub("_", name)


def _prom_value(value: float) -> str:
    """Canonical number rendering: integral floats print as integers."""
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def prometheus_text(metrics: MetricsRegistry,
                    exclude_prefixes: Tuple[str, ...] = ()) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for name in metrics.names():
        if any(name.startswith(p) for p in exclude_prefixes):
            continue
        metric = metrics._metrics[name]
        pname = _prom_name(name)
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {pname} counter")
            lines.append(f"{pname} {metric.value}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {_prom_value(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {pname} histogram")
            cum = 0
            for bound, count in zip(metric.bounds, metric.bucket_counts):
                cum += count
                lines.append(
                    f'{pname}_bucket{{le="{_prom_value(float(bound))}"}} {cum}'
                )
            cum += metric.bucket_counts[-1]
            lines.append(f'{pname}_bucket{{le="+Inf"}} {cum}')
            lines.append(f"{pname}_count {metric.stats.count}")
            total = metric.stats.mean * metric.stats.count
            lines.append(f"{pname}_sum {_prom_value(total)}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- folded stacks -------------------------------------------------------------


def _fold(node: SpanNode, path: Tuple[str, ...],
          acc: Dict[Tuple[str, ...], int]) -> None:
    here = path + (node.name,)
    excl = exclusive_ns(node)
    if excl:
        acc[here] = acc.get(here, 0) + excl
    for child in node.children:
        _fold(child, here, acc)


def folded_stacks(trace: TraceData) -> str:
    """Aggregate a span forest into ``flamegraph.pl`` folded lines.

    Each line is ``name;name;... <exclusive_ns>``; identical paths from
    different operations merge, and lines are emitted in sorted path
    order so the output is deterministic.
    """
    acc: Dict[Tuple[str, ...], int] = {}
    for root in trace.roots:
        if root.duration_ns == 0 and not root.children:
            continue  # instants carry no time
        _fold(root, (), acc)
    lines = [
        ";".join(path) + f" {ns}"
        for path, ns in sorted(acc.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


# -- HTML dashboard ------------------------------------------------------------

_DASHBOARD_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>__TITLE__</title>
<style>
  body { font-family: ui-monospace, Menlo, Consolas, monospace;
         margin: 24px; background: #11141a; color: #d8dee9; }
  h1 { font-size: 18px; } h2 { font-size: 14px; margin-top: 28px; }
  .meta { color: #7a869a; font-size: 12px; }
  table { border-collapse: collapse; font-size: 12px; margin-top: 8px; }
  th, td { border: 1px solid #2c3340; padding: 4px 10px; text-align: right; }
  th { background: #1a1f29; } td.l, th.l { text-align: left; }
  .ok { color: #7fd18c; } .bad { color: #ef6b73; font-weight: bold; }
  svg { background: #161a22; border: 1px solid #2c3340; margin-top: 8px; }
  .legend span { margin-right: 18px; font-size: 12px; }
</style>
</head>
<body>
<h1>__TITLE__</h1>
<div class="meta" id="meta"></div>
<h2>time-series (per-window latency quantiles, virtual time)</h2>
<div id="chart"></div>
<h2>SLO verdicts</h2>
<div id="slo"></div>
<h2>top journeys</h2>
<div id="journeys"></div>
<script id="data" type="application/json">__DATA__</script>
<script>
"use strict";
const DOC = JSON.parse(document.getElementById("data").textContent);
const fmtUs = ns => (ns / 1000).toFixed(1) + "us";

function el(tag, attrs, text) {
  const e = document.createElement(tag);
  for (const k in (attrs || {})) e.setAttribute(k, attrs[k]);
  if (text !== undefined) e.textContent = text;
  return e;
}

function table(headers, rows, leftCols) {
  const t = el("table");
  const hr = el("tr");
  headers.forEach((h, i) =>
    hr.appendChild(el("th", i < leftCols ? {class: "l"} : {}, h)));
  t.appendChild(hr);
  rows.forEach(row => {
    const tr = el("tr");
    row.forEach((c, i) => {
      const td = el("td", i < leftCols ? {class: "l"} : {});
      if (c && typeof c === "object") {
        td.textContent = c.text;
        td.className += " " + c.cls;
      } else td.textContent = c;
      tr.appendChild(td);
    });
    t.appendChild(tr);
  });
  return t;
}

// -- meta line ---------------------------------------------------------------
const metaBits = Object.keys(DOC.meta).sort().map(
  k => k + "=" + DOC.meta[k]);
document.getElementById("meta").textContent = metaBits.join("  ");

// -- quantile chart (inline SVG, no dependencies) ----------------------------
(function chart() {
  const series = DOC.timeseries.windows;
  const metric = DOC.chart_metric;
  const pts = [];
  series.forEach(w => {
    const h = w.histograms[metric];
    if (h) pts.push({t: w.end_ns, p50: h.p50, p95: h.p95, p99: h.p99});
  });
  const host = document.getElementById("chart");
  if (!pts.length) {
    host.appendChild(el("div", {class: "meta"},
      "no windows recorded samples for " + metric));
    return;
  }
  const W = 900, H = 260, PAD = 48;
  const t0 = DOC.timeseries.windows[0].start_ns;
  const t1 = pts[pts.length - 1].t;
  const ymax = Math.max(...pts.map(p => p.p99)) * 1.15 || 1;
  const X = t => PAD + (W - 2 * PAD) * (t - t0) / Math.max(t1 - t0, 1);
  const Y = v => H - PAD + (PAD * 2 - H) * v / ymax;
  const svg = el("svg", {width: W, height: H,
                         viewBox: "0 0 " + W + " " + H});
  for (let g = 0; g <= 4; g++) {
    const v = ymax * g / 4;
    svg.appendChild(el("line", {x1: PAD, x2: W - PAD, y1: Y(v), y2: Y(v),
                                stroke: "#2c3340"}));
    const lbl = el("text", {x: 4, y: Y(v) + 4, fill: "#7a869a",
                            "font-size": "10"});
    lbl.textContent = fmtUs(v);
    svg.appendChild(lbl);
  }
  const colors = {p50: "#7fd18c", p95: "#e5c07b", p99: "#ef6b73"};
  ["p50", "p95", "p99"].forEach(q => {
    const d = pts.map(p => X(p.t).toFixed(1) + "," + Y(p[q]).toFixed(1))
                 .join(" ");
    svg.appendChild(el("polyline", {points: d, fill: "none",
                                    stroke: colors[q], "stroke-width": 1.5}));
  });
  host.appendChild(svg);
  const legend = el("div", {class: "legend"});
  ["p50", "p95", "p99"].forEach(q => {
    const s = el("span", {style: "color:" + colors[q]},
                 q + " " + metric);
    legend.appendChild(s);
  });
  host.appendChild(legend);
})();

// -- SLO table ---------------------------------------------------------------
(function slo() {
  const rows = DOC.slo.specs.map(spec => {
    const bad = DOC.slo.violations.filter(v => v.slo === spec);
    const judged = DOC.slo.windows_evaluated[spec] || 0;
    const verdict = bad.length
      ? {text: "VIOLATED x" + bad.length, cls: "bad"}
      : {text: "OK", cls: "ok"};
    const worst = bad.length
      ? bad.map(v => v.observed).sort((a, b) => b - a)[0].toFixed(1)
      : "-";
    const offenders = bad.length && bad[0].journey_ids.length
      ? bad[0].journey_ids.slice(0, 3).join(", ") : "-";
    return [spec, verdict, judged, worst, offenders];
  });
  document.getElementById("slo").appendChild(
    table(["objective", "verdict", "windows", "worst observed",
           "offending journeys"], rows, 1));
})();

// -- journeys table ----------------------------------------------------------
(function journeys() {
  const rows = DOC.journeys.map(j => [
    j.req_id, j.op, j.start_ns, fmtUs(j.duration_ns), j.span_count,
    Object.keys(j.by_subsystem).sort(
      (a, b) => j.by_subsystem[b] - j.by_subsystem[a]
    ).slice(0, 3).map(k => k + "=" + fmtUs(j.by_subsystem[k])).join(" "),
  ]);
  document.getElementById("journeys").appendChild(
    table(["req_id", "op", "start ns", "duration", "spans",
           "top subsystems (exclusive)"], rows, 2));
})();
</script>
</body>
</html>
"""


def dashboard_html(doc: dict, title: str = "repro serve-report") -> str:
    """Render the self-contained dashboard around an inline JSON doc.

    ``doc`` must carry ``meta`` (run parameters), ``timeseries`` (a
    :meth:`~repro.obs.timeseries.TimeSeriesRecorder.to_doc` rendering),
    ``chart_metric`` (the histogram the chart plots), ``slo`` (an
    :meth:`~repro.obs.slo.SloReport.to_doc` rendering), and ``journeys``
    (a list of journey docs). The JSON is embedded with sorted keys so
    the file is byte-deterministic.
    """
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    # A '</script>' inside a JSON string would end the inline data block.
    payload = payload.replace("</", "<\\/")
    return (
        _DASHBOARD_TEMPLATE
        .replace("__TITLE__", title)
        .replace("__DATA__", payload)
    )


def write_text(path_or_fp: Union[str, IO[str]], text: str) -> None:
    """Write an export, path or file object alike."""
    if isinstance(path_or_fp, str):
        with open(path_or_fp, "w") as fp:
            fp.write(text)
    else:
        path_or_fp.write(text)
