"""Virtual-time time-series: tumbling-window metric aggregation.

A :class:`TimeSeriesRecorder` turns the cumulative counters, gauges, and
histograms of a :class:`~repro.obs.metrics.MetricsRegistry` into
per-window snapshots on the **virtual clock**: window ``i`` covers
``[i * window_ns, (i + 1) * window_ns)`` and reports what changed inside
it (counter deltas, histogram delta-bucket quantiles, current gauge
levels). This is what lets the SLO engine (:mod:`repro.obs.slo`) answer
"what was p99 attach latency *over time*" instead of only end-of-run.

Windows close from inside the event loop via :class:`TimeSeriesHook`, an
engine-observer adapter in the same mold as
:class:`repro.obs.audit.AuditHook`: before each popped event runs, every
window ending at or before ``engine.now`` is closed, so an event at
virtual time ``t`` always lands in the window containing ``t``. The
driver calls :meth:`TimeSeriesRecorder.finish` once at the end to flush
the final partial window.

Everything observed is deterministic simulation state and every
container iterates in sorted-name order, so two identical runs produce
byte-identical window streams (:meth:`TimeSeriesRecorder.to_json`).
Like the tracer's ring buffer, the window store is ring-capped
(``max_windows``) with a visible :attr:`~TimeSeriesRecorder.dropped`
count — and the whole facility is default-off, costing nothing unless a
recorder is constructed and hooked.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, IO, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import RingBuffer

#: Default tumbling-window width: one simulated millisecond.
DEFAULT_WINDOW_NS = 1_000_000

#: Default ring cap on retained windows (like TraceRecorder's event cap).
DEFAULT_MAX_WINDOWS = 4096


def bucket_quantile(bounds: Sequence[float], counts: Sequence[int],
                    q: float) -> float:
    """Quantile estimate from bucket counts alone (no exact min/max).

    Linear interpolation inside the bucket holding the q-th sample,
    Prometheus ``histogram_quantile`` style: the first bucket
    interpolates up from 0, the ``+inf`` overflow bucket clamps to the
    last finite bound. Used for per-window delta buckets, where the
    streaming min/max of the cumulative histogram does not apply.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    n = sum(counts)
    if n == 0:
        return 0.0
    rank = q * n
    cum = 0
    for i, count in enumerate(counts):
        if count == 0:
            continue
        if cum + count >= rank:
            lo = float(bounds[i - 1]) if i > 0 else 0.0
            hi = float(bounds[i]) if i < len(bounds) else float(bounds[-1])
            if hi < lo:
                hi = lo
            frac = (rank - cum) / count
            return lo + (hi - lo) * frac
        cum += count
    return float(bounds[-1])


@dataclass
class HistWindow:
    """One histogram's activity inside one window (delta over cumulative)."""

    count: int
    total: float                 #: sum of samples in the window
    bounds: Tuple[float, ...]
    bucket_deltas: Tuple[int, ...]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        return bucket_quantile(self.bounds, self.bucket_deltas, q)


@dataclass
class WindowSnapshot:
    """Everything that happened in one tumbling window."""

    index: int
    start_ns: int
    end_ns: int
    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistWindow] = field(default_factory=dict)

    def to_doc(self, exclude_prefixes: Tuple[str, ...] = ()) -> dict:
        """Plain-dict rendering (sorted keys) for JSON/dashboard export."""

        def keep(name: str) -> bool:
            return not any(name.startswith(p) for p in exclude_prefixes)

        return {
            "index": self.index,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "counters": {k: v for k, v in sorted(self.counters.items()) if keep(k)},
            "gauges": {k: v for k, v in sorted(self.gauges.items()) if keep(k)},
            "histograms": {
                name: {
                    "count": hw.count,
                    "mean": hw.mean,
                    "p50": hw.quantile(0.50),
                    "p95": hw.quantile(0.95),
                    "p99": hw.quantile(0.99),
                }
                for name, hw in sorted(self.histograms.items())
                if keep(name)
            },
        }


class TimeSeriesRecorder:
    """Tumbling-window aggregation over a live metrics registry."""

    def __init__(self, metrics: MetricsRegistry,
                 window_ns: int = DEFAULT_WINDOW_NS,
                 max_windows: Optional[int] = DEFAULT_MAX_WINDOWS):
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        self.metrics = metrics
        self.window_ns = window_ns
        self._buf = RingBuffer(max_windows)
        self._start_ns = 0
        #: End of the currently filling window — the hot-path guard
        #: (:class:`TimeSeriesHook` compares it per event to skip the
        #: advance call entirely until a window boundary passes).
        self.next_close_ns = window_ns
        self._index = 0
        #: name -> counter value at the last window close.
        self._prev_counters: Dict[str, int] = {}
        #: name -> (bucket counts, count, total) at the last window close.
        self._prev_hists: Dict[str, Tuple[Tuple[int, ...], int, float]] = {}

    # -- recording -----------------------------------------------------------

    def advance(self, now_ns: int) -> None:
        """Close every window that ends at or before ``now_ns``."""
        while self._start_ns + self.window_ns <= now_ns:
            self._close(self._start_ns + self.window_ns)

    def finish(self, now_ns: int) -> None:
        """Close full windows up to ``now_ns`` plus the final partial one.

        Idempotent for a given ``now_ns`` (the partial close moves the
        window origin up to ``now_ns``); call it when the run ends so the
        tail of the series is not silently discarded.
        """
        self.advance(now_ns)
        if now_ns > self._start_ns:
            self._close(now_ns)

    def _close(self, end_ns: int) -> None:
        window = WindowSnapshot(
            index=self._index, start_ns=self._start_ns, end_ns=end_ns
        )
        for name in self.metrics.names():
            metric = self.metrics._metrics[name]
            if isinstance(metric, Counter):
                delta = metric.value - self._prev_counters.get(name, 0)
                self._prev_counters[name] = metric.value
                if delta:
                    window.counters[name] = delta
            elif isinstance(metric, Gauge):
                window.gauges[name] = metric.value
            elif isinstance(metric, Histogram):
                buckets = tuple(metric.bucket_counts)
                count = metric.stats.count
                total = metric.stats.mean * count
                pb, pc, pt = self._prev_hists.get(
                    name, ((0,) * len(buckets), 0, 0.0)
                )
                self._prev_hists[name] = (buckets, count, total)
                if count - pc:
                    window.histograms[name] = HistWindow(
                        count=count - pc,
                        total=total - pt,
                        bounds=metric.bounds,
                        bucket_deltas=tuple(
                            b - p for b, p in zip(buckets, pb)
                        ),
                    )
        self._buf.append(window)
        self._start_ns = end_ns
        self.next_close_ns = end_ns + self.window_ns
        self._index += 1

    # -- introspection -------------------------------------------------------

    @property
    def windows(self) -> List[WindowSnapshot]:
        """All retained windows, oldest first."""
        return list(self._buf)

    @property
    def dropped(self) -> int:
        """Windows evicted by the ring cap."""
        return self._buf.dropped

    def __len__(self) -> int:
        return len(self._buf)

    # -- export --------------------------------------------------------------

    def to_doc(self, exclude_prefixes: Tuple[str, ...] = ()) -> dict:
        """Deterministic plain-dict rendering of the whole series."""
        return {
            "window_ns": self.window_ns,
            "dropped_windows": self.dropped,
            "windows": [w.to_doc(exclude_prefixes) for w in self._buf],
        }

    def to_json(self, fp: Union[str, IO[str], None] = None,
                exclude_prefixes: Tuple[str, ...] = ()) -> str:
        """Serialize the series deterministically; optionally write it."""
        text = json.dumps(self.to_doc(exclude_prefixes), sort_keys=True,
                          indent=2)
        if isinstance(fp, str):
            with open(fp, "w") as f:
                f.write(text)
        elif fp is not None:
            fp.write(text)
        return text


class TimeSeriesHook:
    """Engine-observer adapter closing time-series windows on the clock.

    Installs as ``engine.obs`` (the same hook point as
    :class:`repro.obs.audit.AuditHook`), optionally wrapping an inner
    :class:`~repro.obs.engine_hooks.EngineObserver` so time-series,
    engine stats, and profiling compose. Windows are closed *before*
    each popped event executes, so the metric writes of an event at
    virtual time ``t`` are attributed to the window containing ``t``.
    """

    def __init__(self, recorder: TimeSeriesRecorder, inner=None):
        self.recorder = recorder
        self.inner = inner

    def run_event(self, engine, callback, args=()) -> None:
        # Inline boundary check: one attribute compare per event; the
        # window-closing machinery only runs when a boundary passed.
        recorder = self.recorder
        if recorder.next_close_ns <= engine.now:
            recorder.advance(engine.now)
        if self.inner is not None:
            self.inner.run_event(engine, callback, args)
        else:
            callback(*args)

    def on_spawn(self, engine, proc) -> None:
        if self.inner is not None:
            self.inner.on_spawn(engine, proc)

    def on_finish(self, engine, proc) -> None:
        if self.inner is not None:
            self.inner.on_finish(engine, proc)

    # -- EngineObserver surface pass-through (used by ctx.snapshot and
    # the CLI's --profile rendering) ------------------------------------------

    @property
    def events_executed(self) -> int:
        return self.inner.events_executed if self.inner is not None else 0

    def hot_sites(self, top: int = 15):
        return self.inner.hot_sites(top) if self.inner is not None else []

    def publish(self, metrics) -> None:
        if self.inner is not None:
            self.inner.publish(metrics)
