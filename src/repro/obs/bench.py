"""Perf-regression gating over ``BENCH_*.json`` artifacts.

Benchmarks (``benchmarks/``) emit flat JSON result files — wall-clock
seconds, speedups, per-phase attribution. This module diffs a current
result file against a committed baseline with configurable tolerances,
so CI can fail a build on a real regression instead of someone noticing
a slower Fig. 5 run three PRs later.

Direction is inferred from the metric name: ``*_seconds``/``*_ns``/
``*overhead*`` regress when they grow; ``speedup``/``*gib_s``/
``*throughput*`` regress when they shrink. Configuration-identity keys
(page counts, cycle counts, benchmark names) must match exactly —
comparing runs of different shapes is an error, not a pass.

CLI (wired into ``make bench-compare`` and the CI gate)::

    python -m repro.obs.bench baseline.json current.json [--tolerance 0.15]

Exit status 1 on any regression beyond tolerance (default 15%). When
the gate fails and both sides have a trace capture — either passed
explicitly (``--trace-baseline``/``--trace-current``) or found by the
sibling convention ``BENCH_x.json`` → ``BENCH_x.trace.json`` — the
:mod:`repro.obs.diff` attribution table is printed automatically, so a
red gate arrives already annotated with *which subsystem and span names*
moved.
"""

from __future__ import annotations

import argparse
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Name fragments marking a metric where LOWER is better.
_LOWER_BETTER = ("_seconds", "_ns", "_ms", "overhead", "latency")
#: Name fragments marking a metric where HIGHER is better.
_HIGHER_BETTER = ("speedup", "gib_s", "gb_s", "throughput", "rate")


def direction_of(key: str) -> Optional[str]:
    """``"lower"``/``"higher"`` for perf metrics, None for identity keys."""
    lowered = key.lower()
    if any(frag in lowered for frag in _HIGHER_BETTER):
        return "higher"
    if any(frag in lowered for frag in _LOWER_BETTER):
        return "lower"
    return None


@dataclass
class Delta:
    """One compared metric."""

    key: str
    baseline: float
    current: float
    ratio: float       # current / baseline
    direction: str     # "lower" | "higher"
    regressed: bool

    @property
    def change_pct(self) -> float:
        return (self.ratio - 1.0) * 100.0


@dataclass
class Comparison:
    """The full diff of two benchmark result files."""

    deltas: List[Delta]
    mismatched: List[Tuple[str, object, object]]  # identity keys that differ
    missing: List[str]                            # keys absent from current

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.mismatched and not self.missing


def compare(baseline: Dict, current: Dict, tolerance: float = 0.15,
            tolerances: Optional[Dict[str, float]] = None) -> Comparison:
    """Diff two flat benchmark dicts.

    ``tolerance`` is the default allowed relative change in the *bad*
    direction; ``tolerances`` overrides it per key. Non-numeric and
    direction-less numeric keys (npages, cycles, benchmark name) are
    identity keys and must be equal.
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    tolerances = tolerances or {}
    deltas: List[Delta] = []
    mismatched: List[Tuple[str, object, object]] = []
    missing: List[str] = []
    for key in sorted(baseline):
        base_val = baseline[key]
        if key not in current:
            missing.append(key)
            continue
        cur_val = current[key]
        direction = direction_of(key) if isinstance(base_val, (int, float)) \
            and not isinstance(base_val, bool) else None
        if direction is None:
            if base_val != cur_val:
                mismatched.append((key, base_val, cur_val))
            continue
        base_f, cur_f = float(base_val), float(cur_val)
        if base_f == 0:
            ratio = 1.0 if cur_f == 0 else float("inf")
        else:
            ratio = cur_f / base_f
        allowed = tolerances.get(key, tolerance)
        if direction == "lower":
            regressed = ratio > 1.0 + allowed
        else:
            regressed = ratio < 1.0 - allowed
        deltas.append(
            Delta(key=key, baseline=base_f, current=cur_f, ratio=ratio,
                  direction=direction, regressed=regressed)
        )
    return Comparison(deltas=deltas, mismatched=mismatched, missing=missing)


def compare_files(baseline_path: str, current_path: str,
                  tolerance: float = 0.15,
                  tolerances: Optional[Dict[str, float]] = None) -> Comparison:
    """File-path wrapper around :func:`compare`."""
    with open(baseline_path) as fp:
        baseline = json.load(fp)
    with open(current_path) as fp:
        current = json.load(fp)
    return compare(baseline, current, tolerance=tolerance,
                   tolerances=tolerances)


def render(comparison: Comparison, tolerance: float) -> str:
    """Human-readable diff table plus a verdict line."""
    from repro.bench.report import render_table

    rows = [
        (
            d.key,
            f"{d.baseline:.4g}",
            f"{d.current:.4g}",
            f"{d.change_pct:+.1f}%",
            d.direction,
            "REGRESSED" if d.regressed else "ok",
        )
        for d in comparison.deltas
    ]
    parts = [
        render_table(
            ["metric", "baseline", "current", "change", "better", "verdict"],
            rows,
            title=f"benchmark comparison (tolerance {tolerance * 100:.0f}%):",
        )
    ]
    for key, base_val, cur_val in comparison.mismatched:
        parts.append(
            f"MISMATCH: {key}: baseline ran {base_val!r}, current ran "
            f"{cur_val!r} — not the same benchmark shape"
        )
    for key in comparison.missing:
        parts.append(f"MISSING: {key} absent from the current results")
    if comparison.ok:
        parts.append("PASS: no regression beyond tolerance")
    else:
        parts.append(
            f"FAIL: {len(comparison.regressions)} regression(s), "
            f"{len(comparison.mismatched)} mismatch(es), "
            f"{len(comparison.missing)} missing key(s)"
        )
    return "\n".join(parts)


def _sibling_trace(result_path: str) -> Optional[str]:
    """``BENCH_x.json`` → ``BENCH_x.trace.json`` when that file exists."""
    root, ext = os.path.splitext(result_path)
    if ext != ".json" or root.endswith(".trace"):
        return None
    candidate = root + ".trace.json"
    return candidate if os.path.exists(candidate) else None


def attribution_text(baseline_trace: str, current_trace: str,
                     top: int = 10) -> str:
    """The perf-diff table for a failed gate (never raises on bad input)."""
    from repro.obs import diff as diff_mod

    try:
        result = diff_mod.diff_files(baseline_trace, current_trace)
    except (OSError, ValueError, KeyError, TypeError,
            json.JSONDecodeError) as exc:
        return (f"(perf-diff skipped: cannot attribute "
                f"{baseline_trace} vs {current_trace}: {exc})")
    return (f"attribution ({baseline_trace} -> {current_trace}):\n"
            + diff_mod.render_diff(result, top=top))


def main(argv=None) -> int:
    """CLI entry point; exit 1 on regression/mismatch."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="Gate BENCH_*.json results against a baseline.",
    )
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced JSON")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative change (default 0.15 = 15%%)")
    parser.add_argument("--trace-baseline", metavar="PATH",
                        help="baseline trace capture for failure attribution "
                             "(default: sibling <baseline>.trace.json)")
    parser.add_argument("--trace-current", metavar="PATH",
                        help="current trace capture for failure attribution "
                             "(default: sibling <current>.trace.json)")
    args = parser.parse_args(argv)
    try:
        comparison = compare_files(args.baseline, args.current,
                                   tolerance=args.tolerance)
    except OSError as exc:
        raise SystemExit(f"bench-compare: cannot read {exc.filename}: "
                         f"{exc.strerror}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"bench-compare: invalid JSON ({exc})")
    print(render(comparison, args.tolerance))
    if not comparison.ok:
        trace_base = args.trace_baseline or _sibling_trace(args.baseline)
        trace_cur = args.trace_current or _sibling_trace(args.current)
        if trace_base and trace_cur:
            print()
            print(attribution_text(trace_base, trace_cur))
    return 0 if comparison.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
