"""Named counters, gauges, and fixed-bucket histograms.

Metric names are hierarchical dot paths (``xemem.make.count``,
``pisces.channel.bytes``, ``nic.rdma.msgs``) so a snapshot groups
naturally by subsystem. Instrumentation sites fetch metrics through the
:class:`MetricsRegistry`; when the registry is disabled every accessor
returns a shared null object, so disabled metrics cost one attribute
check and allocate nothing.

Histograms reuse :class:`repro.sim.record.SeriesStats` for the moment
summary and add fixed upper-bound buckets (Prometheus-style cumulative
counts are derivable from the per-bucket counts in the snapshot).

Everything recorded here is derived from deterministic simulation state,
so :meth:`MetricsRegistry.snapshot` is reproducible run-to-run.
"""

from __future__ import annotations

import bisect
import json
from typing import Dict, IO, List, Optional, Sequence, Union

from repro.sim.record import SeriesStats

#: Default histogram buckets (ns-oriented: 1 µs .. 100 ms, then +inf).
DEFAULT_BUCKETS = (
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
)


class Counter:
    """Monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n

    def reset(self) -> None:
        """Zero the counter (used by :meth:`MetricsRegistry.clear`)."""
        self.value = 0


class Gauge:
    """Last-write-wins named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value

    def reset(self) -> None:
        """Zero the gauge (used by :meth:`MetricsRegistry.clear`)."""
        self.value = 0.0


class Histogram:
    """Fixed-bucket distribution with a streaming moment summary."""

    __slots__ = ("name", "bounds", "bucket_counts", "stats")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} bounds must be ascending")
        self.name = name
        self.bounds = tuple(bounds)
        #: counts[i] observations fell in (bounds[i-1], bounds[i]];
        #: counts[-1] is the +inf overflow bucket.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.stats = SeriesStats()

    def observe(self, x: float) -> None:
        """Fold one sample into the buckets and the moment summary."""
        self.bucket_counts[bisect.bisect_left(self.bounds, x)] += 1
        self.stats.add(x)

    @property
    def count(self) -> int:
        """Total observations."""
        return self.stats.count

    def reset(self) -> None:
        """Forget every observation (used by :meth:`MetricsRegistry.clear`)."""
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.stats = SeriesStats()

    def quantile(self, q: float) -> float:
        """Bucket-interpolated quantile estimate in ``[0, 1]``.

        Linear interpolation inside the bucket holding the q-th sample
        (Prometheus ``histogram_quantile`` style), clamped to the exact
        observed ``[min, max]`` so the estimate never leaves the data's
        range; the overflow bucket interpolates toward the observed max.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        n = self.stats.count
        if n == 0:
            return 0.0
        rank = q * n
        cum = 0
        for i, count in enumerate(self.bucket_counts):
            if count == 0:
                continue
            if cum + count >= rank:
                lo = self.bounds[i - 1] if i > 0 else min(self.stats.min, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else self.stats.max
                if hi < lo:
                    hi = lo
                frac = (rank - cum) / count
                est = lo + (hi - lo) * frac
                return min(max(est, self.stats.min), self.stats.max)
            cum += count
        return self.stats.max


class _NullMetric:
    """Shared sink for all metric writes while the registry is disabled."""

    __slots__ = ()
    value = 0
    count = 0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, x: float) -> None:
        pass


NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Hierarchically named metrics, snapshotable to a dict or JSON."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        if not self.enabled:
            return NULL_METRIC
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        if not self.enabled:
            return NULL_METRIC
        return self._get(name, Gauge)

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        if not self.enabled:
            return NULL_METRIC
        return self._get(name, Histogram, bounds)

    # -- snapshot -------------------------------------------------------------

    def names(self, prefix: str = "") -> List[str]:
        """Sorted metric names, optionally filtered by dot-path prefix."""
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def snapshot(self) -> Dict[str, object]:
        """Name-sorted dict of every metric's current value.

        Counters and gauges map to their scalar value; histograms map to
        ``{count, mean, min, max, stdev, p50, p95, p99, buckets}`` where
        ``buckets`` maps each upper bound (and ``"+inf"``) to its bucket
        count and the percentiles are bucket-interpolated estimates
        (exact min/max come from the streaming summary), so snapshots
        from different runs are directly comparable.
        """
        out: Dict[str, object] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                buckets = {
                    str(bound): count
                    for bound, count in zip(metric.bounds, metric.bucket_counts)
                }
                buckets["+inf"] = metric.bucket_counts[-1]
                summary = metric.stats.summary()
                summary["p50"] = metric.quantile(0.50)
                summary["p95"] = metric.quantile(0.95)
                summary["p99"] = metric.quantile(0.99)
                summary["buckets"] = buckets
                out[name] = summary
            else:
                out[name] = metric.value
        return out

    def to_json(self, fp: Union[str, IO[str], None] = None) -> str:
        """Serialize the snapshot deterministically; optionally write it."""
        text = json.dumps(self.snapshot(), sort_keys=True, indent=2)
        if isinstance(fp, str):
            with open(fp, "w") as f:
                f.write(text)
        elif fp is not None:
            fp.write(text)
        return text

    def clear(self) -> None:
        """Reset every registered metric to zero, **in place**.

        Metric objects handed out by :meth:`counter`/:meth:`gauge`/
        :meth:`histogram` stay registered and keep feeding the registry
        after a clear — instrumentation sites that cached a reference are
        never silently orphaned. (Previously this dropped the registry
        dict, so cached references kept counting into objects no snapshot
        would ever see.) Use :meth:`drop_all` for the old behaviour.
        """
        for metric in self._metrics.values():
            metric.reset()

    def drop_all(self) -> None:
        """Forget every metric entirely (cached references detach)."""
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)
