"""Named counters, gauges, and fixed-bucket histograms.

Metric names are hierarchical dot paths (``xemem.make.count``,
``pisces.channel.bytes``, ``nic.rdma.msgs``) so a snapshot groups
naturally by subsystem. Instrumentation sites fetch metrics through the
:class:`MetricsRegistry`; when the registry is disabled every accessor
returns a shared null object, so disabled metrics cost one attribute
check and allocate nothing.

Histograms reuse :class:`repro.sim.record.SeriesStats` for the moment
summary and add fixed upper-bound buckets (Prometheus-style cumulative
counts are derivable from the per-bucket counts in the snapshot).

Everything recorded here is derived from deterministic simulation state,
so :meth:`MetricsRegistry.snapshot` is reproducible run-to-run.
"""

from __future__ import annotations

import bisect
import json
from typing import Dict, IO, List, Optional, Sequence, Union

from repro.sim.record import SeriesStats

#: Default histogram buckets (ns-oriented: 1 µs .. 100 ms, then +inf).
DEFAULT_BUCKETS = (
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
)


class Counter:
    """Monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be non-negative) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {n})")
        self.value += n


class Gauge:
    """Last-write-wins named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value


class Histogram:
    """Fixed-bucket distribution with a streaming moment summary."""

    __slots__ = ("name", "bounds", "bucket_counts", "stats")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} bounds must be ascending")
        self.name = name
        self.bounds = tuple(bounds)
        #: counts[i] observations fell in (bounds[i-1], bounds[i]];
        #: counts[-1] is the +inf overflow bucket.
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.stats = SeriesStats()

    def observe(self, x: float) -> None:
        """Fold one sample into the buckets and the moment summary."""
        self.bucket_counts[bisect.bisect_left(self.bounds, x)] += 1
        self.stats.add(x)

    @property
    def count(self) -> int:
        """Total observations."""
        return self.stats.count


class _NullMetric:
    """Shared sink for all metric writes while the registry is disabled."""

    __slots__ = ()
    value = 0
    count = 0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, x: float) -> None:
        pass


NULL_METRIC = _NullMetric()


class MetricsRegistry:
    """Hierarchically named metrics, snapshotable to a dict or JSON."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        if not self.enabled:
            return NULL_METRIC
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        if not self.enabled:
            return NULL_METRIC
        return self._get(name, Gauge)

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        if not self.enabled:
            return NULL_METRIC
        return self._get(name, Histogram, bounds)

    # -- snapshot -------------------------------------------------------------

    def names(self, prefix: str = "") -> List[str]:
        """Sorted metric names, optionally filtered by dot-path prefix."""
        return sorted(n for n in self._metrics if n.startswith(prefix))

    def snapshot(self) -> Dict[str, object]:
        """Name-sorted dict of every metric's current value.

        Counters and gauges map to their scalar value; histograms map to
        ``{count, mean, min, max, stdev, buckets}`` where ``buckets``
        maps each upper bound (and ``"+inf"``) to its bucket count.
        """
        out: Dict[str, object] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                buckets = {
                    str(bound): count
                    for bound, count in zip(metric.bounds, metric.bucket_counts)
                }
                buckets["+inf"] = metric.bucket_counts[-1]
                summary = metric.stats.summary()
                summary["buckets"] = buckets
                out[name] = summary
            else:
                out[name] = metric.value
        return out

    def to_json(self, fp: Union[str, IO[str], None] = None) -> str:
        """Serialize the snapshot deterministically; optionally write it."""
        text = json.dumps(self.snapshot(), sort_keys=True, indent=2)
        if isinstance(fp, str):
            with open(fp, "w") as f:
                f.write(text)
        elif fp is not None:
            fp.write(text)
        return text

    def clear(self) -> None:
        """Drop every registered metric."""
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)
