"""Post-hoc cost attribution over exported span traces.

The tracer (:mod:`repro.obs.tracer`) records *what happened*; this module
answers *where the time went*. It reconstructs the span tree of each
logical operation (``xemem.make`` / ``xemem.attach`` / channel round
trips / demand faults) from a Chrome-trace or JSONL export — or straight
from a live :class:`~repro.obs.tracer.Tracer` — and computes:

* **exclusive time** per span: duration minus the union of child
  intervals clipped to the parent, so nothing is double-counted;
* **per-subsystem breakdowns** (pagetable walk / map install / channel
  marshalling / IPI rounds / NIC / xemem bookkeeping / noise), the
  Table-2-style decomposition the paper's evaluation hinges on;
* **critical paths**: the longest root-to-leaf chain of each operation.

``pisces.transfer`` spans carry a ``marshal_ns`` attribute (closed-form
per-PFN copy time); attribution splits the span's exclusive time into
``channel`` (marshalling) and ``ipi`` (handler rounds) with it, so the
IPI share is visible even though per-round IPIs record no spans of their
own (keeping fast/slow trace parity).

Everything here is pure post-processing: loading or attributing a trace
never touches simulation state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, List, Optional, Tuple, Union

#: Attribution bucket names, in report order.
SUBSYSTEMS = (
    "pagetable",
    "map_install",
    "channel",
    "ipi",
    "nic",
    "xemem",
    "noise",
    "other",
)

#: span-name prefix -> subsystem bucket (first match wins, longest first).
_PREFIX_RULES: Tuple[Tuple[str, str], ...] = (
    ("kernel.pagetable", "pagetable"),
    ("kernel.map_remote", "map_install"),
    ("linux.map_remote", "map_install"),
    ("kernel.fault", "map_install"),
    ("pisces.transfer", "channel"),  # split channel/ipi via marshal_ns
    ("pisces", "channel"),
    ("nic.", "nic"),
    ("cluster.rdma", "nic"),
    ("xemem", "xemem"),
    ("noise", "noise"),
    ("smi", "noise"),
    ("detour", "noise"),
)


def subsystem_of(name: str) -> str:
    """Map a span name onto its attribution bucket."""
    for prefix, bucket in _PREFIX_RULES:
        if name.startswith(prefix):
            return bucket
    return "other"


@dataclass
class SpanNode:
    """One span in a reconstructed tree."""

    span_id: Optional[int]
    parent_id: Optional[int]
    name: str
    track: str
    start_ns: int
    end_ns: int
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns


@dataclass
class TraceData:
    """A loaded trace: every span plus the reconstructed forest."""

    spans: List[SpanNode]
    roots: List[SpanNode]
    dropped: int = 0

    def __len__(self) -> int:
        return len(self.spans)


def _link(spans: List[SpanNode]) -> List[SpanNode]:
    """Attach children to parents; return the parentless roots."""
    by_id = {s.span_id: s for s in spans if s.span_id is not None}
    roots: List[SpanNode] = []
    for s in spans:
        parent = by_id.get(s.parent_id) if s.parent_id is not None else None
        if parent is not None and parent is not s:
            parent.children.append(s)
        else:
            roots.append(s)
    for s in spans:
        s.children.sort(key=lambda c: (c.start_ns, c.span_id or 0))
    return roots


def from_tracer(tracer) -> TraceData:
    """Build a :class:`TraceData` straight from a live tracer."""
    spans = [
        SpanNode(
            span_id=s.span_id,
            parent_id=s.parent_id,
            name=s.name,
            track=s.track,
            start_ns=s.start_ns,
            end_ns=s.end_ns if s.end_ns is not None else s.start_ns,
            attrs=dict(s.attrs),
        )
        for s in tracer.spans
    ]
    return TraceData(spans=spans, roots=_link(spans), dropped=tracer.dropped)


def load_trace(path: Union[str, IO[str]]) -> TraceData:
    """Read a Chrome-trace or JSONL export into a span forest.

    Chrome exports carry span identity in each event's ``args``
    (``span_id``/``parent_id``); traces from before that scheme still
    load, they just come back as a flat forest of roots.
    """
    if isinstance(path, str):
        with open(path) as fp:
            text = fp.read()
    else:
        text = path.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict):  # Chrome trace format
        return _load_chrome(doc)
    return _load_jsonl(text)


def _load_chrome(doc: dict) -> TraceData:
    events = doc.get("traceEvents", [])
    threads = {
        ev.get("tid"): ev.get("args", {}).get("name")
        for ev in events
        if ev.get("ph") == "M" and ev.get("name") == "thread_name"
    }
    spans: List[SpanNode] = []
    for ev in events:
        if ev.get("ph") != "X":
            continue
        args = dict(ev.get("args") or {})
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        start_ns = int(round(ev.get("ts", 0) * 1000))
        spans.append(
            SpanNode(
                span_id=span_id,
                parent_id=parent_id,
                name=ev["name"],
                track=threads.get(ev.get("tid"), str(ev.get("tid"))),
                start_ns=start_ns,
                end_ns=start_ns + int(round(ev.get("dur", 0) * 1000)),
                attrs=args,
            )
        )
    dropped = int(doc.get("otherData", {}).get("dropped_spans", 0) or 0)
    return TraceData(spans=spans, roots=_link(spans), dropped=dropped)


def _load_jsonl(text: str) -> TraceData:
    spans: List[SpanNode] = []
    dropped = 0
    for line in text.splitlines():
        if not line.strip():
            continue
        rec = json.loads(line)
        if "meta" in rec:  # trailing drop-count record
            dropped = int(rec["meta"].get("dropped", 0))
            continue
        start = int(rec.get("start_ns", 0))
        end = rec.get("end_ns")
        spans.append(
            SpanNode(
                span_id=rec.get("id"),
                parent_id=rec.get("parent"),
                name=rec["name"],
                track=rec.get("track", "main"),
                start_ns=start,
                end_ns=int(end) if end is not None else start,
                attrs=dict(rec.get("attrs") or {}),
            )
        )
    return TraceData(spans=spans, roots=_link(spans), dropped=dropped)


# -- attribution ---------------------------------------------------------------


def _child_union_ns(node: SpanNode) -> int:
    """Total time covered by children, clipped to the parent, overlaps
    merged — the amount of ``node``'s duration that is *not* exclusive."""
    intervals = []
    for c in node.children:
        lo = max(c.start_ns, node.start_ns)
        hi = min(c.end_ns, node.end_ns)
        if hi > lo:
            intervals.append((lo, hi))
    if not intervals:
        return 0
    intervals.sort()
    covered = 0
    cur_lo, cur_hi = intervals[0]
    for lo, hi in intervals[1:]:
        if lo > cur_hi:
            covered += cur_hi - cur_lo
            cur_lo, cur_hi = lo, hi
        else:
            cur_hi = max(cur_hi, hi)
    covered += cur_hi - cur_lo
    return covered


def exclusive_ns(node: SpanNode) -> int:
    """Span duration not covered by any child (self time)."""
    return max(node.duration_ns - _child_union_ns(node), 0)


def _split_buckets(node: SpanNode) -> Dict[str, int]:
    """Exclusive time of one span, split across subsystem buckets."""
    excl = exclusive_ns(node)
    bucket = subsystem_of(node.name)
    if node.name == "pisces.transfer":
        marshal = int(node.attrs.get("marshal_ns", 0) or 0)
        copy = min(marshal, excl)
        return {"channel": copy, "ipi": excl - copy}
    return {bucket: excl}


@dataclass
class OperationBreakdown:
    """Attribution for one class of root operation (e.g. ``xemem.attach``)."""

    name: str
    count: int
    total_ns: int
    by_subsystem: Dict[str, int]
    critical_path: List[Tuple[str, int]]  # (span name, inclusive ns)

    @property
    def attributed_ns(self) -> int:
        return sum(self.by_subsystem.values())


@dataclass
class Attribution:
    """Whole-trace attribution summary."""

    operations: List[OperationBreakdown]
    by_subsystem: Dict[str, int]
    total_ns: int
    dropped: int = 0

    @property
    def attributed_ns(self) -> int:
        return sum(self.by_subsystem.values())

    @property
    def coverage(self) -> float:
        """Fraction of root span time the buckets account for."""
        if self.total_ns == 0:
            return 1.0
        return self.attributed_ns / self.total_ns


def _walk_buckets(node: SpanNode, acc: Dict[str, int]) -> None:
    for bucket, ns in _split_buckets(node).items():
        if ns:
            acc[bucket] = acc.get(bucket, 0) + ns
    for child in node.children:
        _walk_buckets(child, acc)


def critical_path(root: SpanNode) -> List[Tuple[str, int]]:
    """Longest-child chain from the root down (name, inclusive ns)."""
    path = []
    node = root
    while node is not None:
        path.append((node.name, node.duration_ns))
        node = max(node.children, key=lambda c: c.duration_ns, default=None)
    return path


def attribute(trace: TraceData) -> Attribution:
    """Per-operation and per-subsystem cost attribution for a trace."""
    ops: Dict[str, Dict[str, Any]] = {}
    total_by_subsystem: Dict[str, int] = {}
    total_ns = 0
    best_root: Dict[str, SpanNode] = {}
    for root in trace.roots:
        if root.duration_ns == 0 and not root.children:
            # Instant events (noise detours, msg markers) carry no time.
            continue
        total_ns += root.duration_ns
        buckets: Dict[str, int] = {}
        _walk_buckets(root, buckets)
        agg = ops.setdefault(
            root.name, {"count": 0, "total_ns": 0, "by_subsystem": {}}
        )
        agg["count"] += 1
        agg["total_ns"] += root.duration_ns
        for bucket, ns in buckets.items():
            agg["by_subsystem"][bucket] = agg["by_subsystem"].get(bucket, 0) + ns
            total_by_subsystem[bucket] = total_by_subsystem.get(bucket, 0) + ns
        prev = best_root.get(root.name)
        if prev is None or root.duration_ns > prev.duration_ns:
            best_root[root.name] = root
    operations = [
        OperationBreakdown(
            name=name,
            count=agg["count"],
            total_ns=agg["total_ns"],
            by_subsystem=dict(
                sorted(agg["by_subsystem"].items(), key=lambda kv: -kv[1])
            ),
            critical_path=critical_path(best_root[name]),
        )
        for name, agg in sorted(
            ops.items(), key=lambda kv: -kv[1]["total_ns"]
        )
    ]
    return Attribution(
        operations=operations,
        by_subsystem=dict(
            sorted(total_by_subsystem.items(), key=lambda kv: -kv[1])
        ),
        total_ns=total_ns,
        dropped=trace.dropped,
    )


# -- request journeys ----------------------------------------------------------


@dataclass
class Journey:
    """Everything one request did, reassembled across enclaves.

    Protocol sites tag their spans with the request's ``req_id``
    (allocated once per request by the xemem module and carried in every
    command/response payload); untagged descendants inherit the nearest
    tagged ancestor's id. A journey is the set of spans sharing one id —
    client op, channel transfers, owner/NS serving — regardless of which
    enclave or process recorded them.
    """

    req_id: str
    op: str                       #: name of the earliest tagged span
    start_ns: int
    end_ns: int
    span_count: int
    #: Exclusive time of member spans, split by subsystem bucket.
    by_subsystem: Dict[str, int]
    #: Time-ordered (name, inclusive ns) of the journey's phase roots —
    #: member spans whose parent is outside the journey.
    critical_path: List[Tuple[str, int]]

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def to_doc(self) -> dict:
        """Plain-dict rendering (sorted keys inside) for JSON export."""
        return {
            "req_id": self.req_id,
            "op": self.op,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "span_count": self.span_count,
            "by_subsystem": dict(
                sorted(self.by_subsystem.items(), key=lambda kv: (-kv[1], kv[0]))
            ),
            "critical_path": [[name, ns] for name, ns in self.critical_path],
        }


def journeys(trace: TraceData) -> List[Journey]:
    """Group a trace's spans into per-request journeys by ``req_id``.

    Returns journeys sorted by (start, req_id); spans with no tag
    anywhere on their ancestor chain belong to no journey.
    """
    members: Dict[str, List[SpanNode]] = {}
    tagged: Dict[str, List[SpanNode]] = {}

    def walk(node: SpanNode, inherited: Optional[str]) -> None:
        own = node.attrs.get("req_id")
        rid = own if isinstance(own, str) and own else inherited
        if rid is not None:
            members.setdefault(rid, []).append(node)
            if own == rid and own is not None:
                tagged.setdefault(rid, []).append(node)
        for child in node.children:
            walk(child, rid)

    for root in trace.roots:
        walk(root, None)

    out: List[Journey] = []
    for rid, nodes in members.items():
        in_journey = set(id(n) for n in nodes)  # repro: noqa[REP104] reason=process-local membership set for span-tree nodes within one pass; ids never leave this function
        explicit = tagged.get(rid, nodes)
        primary = min(explicit, key=lambda n: (n.start_ns, n.span_id or 0))
        by_subsystem: Dict[str, int] = {}
        for node in nodes:
            for bucket, ns in _split_buckets(node).items():
                if ns:
                    by_subsystem[bucket] = by_subsystem.get(bucket, 0) + ns
        phase_roots = sorted(
            (n for n in nodes
             if not any(
                 id(p) in in_journey for p in _ancestors(n, trace)  # repro: noqa[REP104] reason=membership test against the process-local set built above; same-pass identity only
             )),
            key=lambda n: (n.start_ns, n.span_id or 0),
        )
        out.append(
            Journey(
                req_id=rid,
                op=primary.name,
                start_ns=min(n.start_ns for n in nodes),
                end_ns=max(n.end_ns for n in nodes),
                span_count=len(nodes),
                by_subsystem=by_subsystem,
                critical_path=[(n.name, n.duration_ns) for n in phase_roots],
            )
        )
    out.sort(key=lambda j: (j.start_ns, j.req_id))
    return out


def _ancestors(node: SpanNode, trace: TraceData):
    """Parent chain of a node (via span ids), root-most last."""
    by_id = getattr(trace, "_by_id", None)
    if by_id is None:
        by_id = {s.span_id: s for s in trace.spans if s.span_id is not None}
        trace._by_id = by_id
    seen = set()
    cur = node
    while cur.parent_id is not None and cur.parent_id not in seen:
        seen.add(cur.parent_id)
        parent = by_id.get(cur.parent_id)
        if parent is None:
            return
        yield parent
        cur = parent


def render_journeys(journeys_list: List[Journey], top: int = 10) -> str:
    """Plain-text table of the biggest journeys."""
    from repro.bench.report import render_table

    biggest = sorted(
        journeys_list, key=lambda j: (-j.duration_ns, j.req_id)
    )[:top]
    rows = []
    for j in biggest:
        subsys = " ".join(
            f"{bucket}={ns / 1e3:.1f}us"
            for bucket, ns in sorted(
                j.by_subsystem.items(), key=lambda kv: (-kv[1], kv[0])
            )[:3]
        )
        rows.append(
            (j.req_id, j.op, j.start_ns, f"{j.duration_ns / 1e3:.1f}",
             j.span_count, subsys)
        )
    return render_table(
        ["req_id", "op", "start ns", "duration us", "spans",
         "top subsystems (exclusive)"],
        rows,
        title=(
            f"top {len(biggest)} of {len(journeys_list)} request "
            "journeys (by duration):"
        ),
    )


# -- rendering -----------------------------------------------------------------


def _pct(part: int, whole: int) -> str:
    return f"{100.0 * part / whole:.1f}%" if whole else "-"


def render_report(attribution: Attribution, source: str = "trace") -> str:
    """Table-2-style plain-text breakdown of an attribution."""
    from repro.bench.report import render_table

    parts: List[str] = []
    if attribution.dropped:
        parts.append(
            f"WARNING: {attribution.dropped} spans were dropped by the ring "
            "cap — this breakdown summarizes a TRUNCATED trace. Re-record "
            "with a larger --trace buffer (max_trace_events) for full "
            "attribution."
        )
    total = attribution.total_ns
    rows = [
        (bucket, f"{ns / 1e6:.3f}", _pct(ns, total))
        for bucket, ns in attribution.by_subsystem.items()
    ]
    rows.append(("TOTAL (attributed)",
                 f"{attribution.attributed_ns / 1e6:.3f}",
                 _pct(attribution.attributed_ns, total)))
    parts.append(
        render_table(
            ["subsystem", "virtual ms", "share"],
            rows,
            title=(
                f"{source}: per-subsystem cost attribution "
                f"({total / 1e6:.3f} ms across "
                f"{sum(op.count for op in attribution.operations)} operations, "
                f"coverage {attribution.coverage * 100:.1f}%)"
            ),
        )
    )
    for op in attribution.operations:
        op_rows = [
            (bucket, f"{ns / 1e6:.3f}", _pct(ns, op.total_ns))
            for bucket, ns in op.by_subsystem.items()
        ]
        parts.append(
            render_table(
                ["subsystem", "virtual ms", "share"],
                op_rows,
                title=(
                    f"{op.name} x{op.count}: {op.total_ns / 1e6:.3f} ms "
                    f"(mean {op.total_ns / op.count / 1e3:.1f} us)"
                ),
            )
        )
        chain = " -> ".join(
            f"{name} ({ns / 1e3:.1f}us)" for name, ns in op.critical_path
        )
        parts.append(f"  critical path: {chain}")
    return "\n\n".join(parts)
