"""Declarative SLOs evaluated against the virtual-time time-series.

An :class:`SloSpec` is parsed from a compact one-line grammar::

    <metric>.<agg> <op> <threshold>[unit] [over <duration>[ windows]]

    xemem.attach.ns.p99 < 25us over 1ms
    xemem.req.timeouts.count < 1 over 2ms
    pisces.channel.msgs.rate > 1000

* ``metric`` is a registry dot-path (``xemem.attach.ns``); the last
  component of the spec is the aggregator.
* ``agg`` — over histograms: ``p50``/``p95``/``p99`` (delta-bucket
  interpolated), ``mean``, ``count``; over counters: ``count`` (window
  delta) and ``rate`` (delta per simulated second); over gauges:
  ``value`` (level at window close).
* ``threshold`` takes ``ns``/``us``/``ms``/``s`` suffixes (normalized to
  ns) or is a bare number.
* ``over`` widens evaluation from single tumbling windows to **burn
  windows**: consecutive base windows grouped to cover the duration,
  with histogram delta-buckets merged before the quantile is taken (so a
  p99 over 1 ms really is the p99 of every sample in that millisecond,
  not an average of window p99s).

Evaluation (:func:`evaluate`) is pure post-processing over the recorded
:class:`~repro.obs.timeseries.WindowSnapshot` stream — deterministic,
no simulation state touched. Objectives with no samples in a window are
skipped for quantile/mean aggregators (no data is not a violation) while
``count``/``rate`` treat absence as zero. Each failed window produces an
:class:`SloViolation` carrying the same context shape as
:class:`repro.obs.audit.AuditViolation` — what was in flight — plus the
ids of the journeys (:func:`repro.obs.analysis.journeys`) overlapping
the violated window, biggest first, so a verdict points straight at the
requests that blew the objective.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.timeseries import HistWindow, WindowSnapshot, bucket_quantile

#: Threshold unit suffixes, normalized to nanoseconds.
_UNITS = {"ns": 1, "us": 1_000, "ms": 1_000_000, "s": 1_000_000_000}

#: Aggregators applicable per metric kind.
_HIST_AGGS = ("p50", "p95", "p99", "mean", "count")
_COUNTER_AGGS = ("count", "rate")
_GAUGE_AGGS = ("value",)

_SPEC_RE = re.compile(
    r"^\s*([A-Za-z0-9_.]+)\.(p50|p95|p99|mean|count|rate|value)"
    r"\s*(<=|>=|<|>)\s*"
    r"([0-9]+(?:\.[0-9]+)?)\s*(ns|us|ms|s)?"
    r"(?:\s+over\s+([0-9]+(?:\.[0-9]+)?)\s*(ns|us|ms|s)(?:\s+windows?)?)?"
    r"\s*$"
)

_OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class SloSpec:
    """One parsed objective."""

    raw: str
    metric: str
    agg: str
    op: str
    threshold: float
    over_ns: Optional[int] = None  #: burn-window duration (None = per window)

    @classmethod
    def parse(cls, text: str) -> "SloSpec":
        m = _SPEC_RE.match(text)
        if m is None:
            raise ValueError(
                f"cannot parse SLO {text!r}; expected "
                "'<metric>.<agg> <op> <threshold>[ns|us|ms|s] "
                "[over <duration>]', e.g. 'xemem.attach.ns.p99 < 25us over 1ms'"
            )
        metric, agg, op, value, unit, over, over_unit = m.groups()
        threshold = float(value) * (_UNITS[unit] if unit else 1)
        over_ns = int(float(over) * _UNITS[over_unit]) if over else None
        if over_ns is not None and over_ns <= 0:
            raise ValueError(f"SLO {text!r}: 'over' duration must be positive")
        return cls(raw=text.strip(), metric=metric, agg=agg, op=op,
                   threshold=threshold, over_ns=over_ns)

    def describe(self) -> str:
        return self.raw


class SloViolation(AssertionError):
    """One objective failed in one (burn) window.

    Mirrors :class:`repro.obs.audit.AuditViolation`: a machine-readable
    record (objective, window, observed vs threshold) plus the span and
    journey context needed to chase the offenders.
    """

    def __init__(self, slo: str, detail: str, time_ns: int = 0,
                 window: Tuple[int, int] = (0, 0), observed: float = 0.0,
                 threshold: float = 0.0, journey_ids: tuple = (),
                 open_spans: tuple = (), recent_spans: tuple = ()):
        self.slo = slo
        self.detail = detail
        self.time_ns = time_ns
        self.window = tuple(window)
        self.observed = observed
        self.threshold = threshold
        #: req-ids of the journeys overlapping the window, biggest first.
        self.journey_ids = tuple(journey_ids)
        #: Names of spans still open at the window's end.
        self.open_spans = tuple(open_spans)
        #: (name, start_ns) of spans completed just before the window end.
        self.recent_spans = tuple(recent_spans)
        ctx = ""
        if self.journey_ids:
            ctx += f" | journeys: {', '.join(self.journey_ids)}"
        if self.open_spans:
            ctx += f" | in flight: {', '.join(self.open_spans)}"
        if self.recent_spans:
            ctx += " | recent: " + ", ".join(
                f"{name}@{start}" for name, start in self.recent_spans
            )
        super().__init__(f"[{slo}] t={time_ns}ns: {detail}{ctx}")

    def to_doc(self) -> dict:
        """Plain-dict rendering for JSON export."""
        return {
            "slo": self.slo,
            "detail": self.detail,
            "time_ns": self.time_ns,
            "window": list(self.window),
            "observed": self.observed,
            "threshold": self.threshold,
            "journey_ids": list(self.journey_ids),
            "open_spans": list(self.open_spans),
        }


@dataclass
class SloReport:
    """Every objective's verdict over a run."""

    specs: List[SloSpec]
    violations: List[SloViolation] = field(default_factory=list)
    #: spec raw -> number of (burn) windows that had data and were judged.
    windows_evaluated: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def lines(self) -> List[str]:
        out = []
        for spec in self.specs:
            bad = [v for v in self.violations if v.slo == spec.raw]
            judged = self.windows_evaluated.get(spec.raw, 0)
            verdict = "OK" if not bad else f"VIOLATED x{len(bad)}"
            out.append(f"  [{verdict:>12}] {spec.raw}  "
                       f"({judged} window(s) evaluated)")
            for v in bad[:3]:
                out.append(f"      window [{v.window[0]},{v.window[1]})ns: "
                           f"observed {v.observed:.1f} vs {v.threshold:.1f}"
                           + (f"; journeys {', '.join(v.journey_ids[:3])}"
                              if v.journey_ids else ""))
            if len(bad) > 3:
                out.append(f"      ... and {len(bad) - 3} more window(s)")
        return out

    def to_doc(self) -> dict:
        return {
            "specs": [s.raw for s in self.specs],
            "ok": self.ok,
            "windows_evaluated": dict(sorted(self.windows_evaluated.items())),
            "violations": [v.to_doc() for v in self.violations],
        }


# -- evaluation ----------------------------------------------------------------


def _merge_hist(parts: List[HistWindow]) -> Optional[HistWindow]:
    """Merge per-window delta buckets so burn-window quantiles are exact."""
    parts = [p for p in parts if p.count]
    if not parts:
        return None
    bounds = parts[0].bounds
    deltas = [0] * len(parts[0].bucket_deltas)
    count = 0
    total = 0.0
    for p in parts:
        count += p.count
        total += p.total
        for i, d in enumerate(p.bucket_deltas):
            deltas[i] += d
    return HistWindow(count=count, total=total, bounds=bounds,
                      bucket_deltas=tuple(deltas))


def _observe(spec: SloSpec, group: List[WindowSnapshot]) -> Optional[float]:
    """The spec's observed value over a group of base windows.

    Returns None when the aggregator has no data to judge (quantiles and
    means of empty windows); ``count``/``rate``/``value`` always judge.
    """
    if spec.agg in ("count", "rate"):
        # counter first; a histogram's sample count also answers "count"
        delta = sum(w.counters.get(spec.metric, 0) for w in group)
        if delta == 0:
            delta = sum(
                w.histograms[spec.metric].count
                for w in group if spec.metric in w.histograms
            )
        if spec.agg == "count":
            return float(delta)
        span_ns = group[-1].end_ns - group[0].start_ns
        return delta * 1e9 / span_ns if span_ns else 0.0
    if spec.agg == "value":
        for w in reversed(group):
            if spec.metric in w.gauges:
                return float(w.gauges[spec.metric])
        return None
    merged = _merge_hist(
        [w.histograms[spec.metric] for w in group
         if spec.metric in w.histograms]
    )
    if merged is None:
        return None
    if spec.agg == "mean":
        return merged.mean
    q = {"p50": 0.50, "p95": 0.95, "p99": 0.99}[spec.agg]
    return bucket_quantile(merged.bounds, merged.bucket_deltas, q)


def _group(windows: List[WindowSnapshot], window_ns: int,
           over_ns: Optional[int]) -> List[List[WindowSnapshot]]:
    """Base windows, or consecutive runs covering the burn duration."""
    if over_ns is None or over_ns <= window_ns:
        return [[w] for w in windows]
    k = -(-over_ns // window_ns)  # ceil: windows per burn group
    return [windows[i:i + k] for i in range(0, len(windows), k)]


def _window_journeys(journeys, start_ns: int, end_ns: int,
                     metric: str, limit: int = 5) -> Tuple[str, ...]:
    """Req-ids of journeys overlapping the window, biggest first.

    Journeys whose operation matches the metric's dot-path prefix (e.g.
    ``xemem.attach`` for ``xemem.attach.ns``) are preferred; when none
    match, any overlapping journey is named.
    """
    hits = [j for j in journeys
            if j.start_ns < end_ns and j.end_ns > start_ns]
    matching = [j for j in hits if metric.startswith(j.op)]
    pool = matching if matching else hits
    pool = sorted(pool, key=lambda j: (-j.duration_ns, j.req_id))
    return tuple(j.req_id for j in pool[:limit])


def _span_context(trace, end_ns: int) -> Tuple[tuple, tuple]:
    """(open spans, recently completed spans) at a virtual instant."""
    if trace is None:
        return (), ()
    open_spans = tuple(
        s.name for s in sorted(
            (s for s in trace.spans
             if s.start_ns < end_ns and s.end_ns > end_ns),
            key=lambda s: (s.start_ns, s.span_id or 0),
        )
    )[:8]
    done = sorted(
        (s for s in trace.spans if s.end_ns <= end_ns),
        key=lambda s: (s.end_ns, s.span_id or 0),
    )
    recent = tuple((s.name, s.start_ns) for s in done[-4:])
    return open_spans, recent


def evaluate(specs: Sequence[SloSpec], recorder, journeys=None,
             trace=None) -> SloReport:
    """Judge every spec against a recorder's window stream.

    ``recorder`` is a :class:`~repro.obs.timeseries.TimeSeriesRecorder`
    (or anything with ``windows`` and ``window_ns``); ``journeys`` and
    ``trace`` (a :class:`~repro.obs.analysis.TraceData`) enrich
    violations with offender context when provided.
    """
    report = SloReport(specs=list(specs))
    windows = recorder.windows
    journeys = journeys or []
    for spec in report.specs:
        judged = 0
        for group in _group(windows, recorder.window_ns, spec.over_ns):
            if not group:
                continue
            observed = _observe(spec, group)
            if observed is None:
                continue
            judged += 1
            if _OPS[spec.op](observed, spec.threshold):
                continue
            start_ns = group[0].start_ns
            end_ns = group[-1].end_ns
            open_spans, recent = _span_context(trace, end_ns)
            report.violations.append(
                SloViolation(
                    slo=spec.raw,
                    detail=(
                        f"{spec.metric}.{spec.agg} = {observed:.1f}, "
                        f"objective {spec.op} {spec.threshold:.1f}"
                    ),
                    time_ns=end_ns,
                    window=(start_ns, end_ns),
                    observed=observed,
                    threshold=spec.threshold,
                    journey_ids=_window_journeys(
                        journeys, start_ns, end_ns, spec.metric
                    ),
                    open_spans=open_spans,
                    recent_spans=recent,
                )
            )
        report.windows_evaluated[spec.raw] = judged
    return report
