"""``python -m repro serve-report``: the serving-telemetry pipeline, end to end.

Runs the closed-loop session driver
(:func:`repro.workloads.sessions.run_sessions`) under the full
observability stack — span tracing with request-journey tags,
tumbling-window time-series, declarative SLO evaluation — and renders
every exporter:

* ``dashboard.html`` — self-contained single-file dashboard
  (:func:`repro.obs.export.dashboard_html`);
* ``flamegraph.folded`` — folded stacks for ``flamegraph.pl``/speedscope;
* ``metrics.prom`` — Prometheus text exposition;
* ``timeseries.json`` / ``slo.json`` / ``journeys.json`` — the raw
  window stream, verdicts, and per-request journeys;
* ``incident-slo/`` — a :mod:`repro.obs.flightrec` bundle, written only
  when an objective was violated (the earliest breach is the trigger).

Everything runs on the virtual clock: two invocations with the same
arguments produce byte-identical files, and toggling the simulation
fast paths (``REPRO_FASTPATH=0``) changes nothing — the export excludes
the two metric families (``engine.*``, ``fastpath.*``) that legitimately
differ between paths; the differential contract covers the rest.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import List, Optional

from repro import obs
from repro.obs import analysis
from repro.obs import flightrec as flightrec_mod
from repro.obs.export import (
    dashboard_html,
    folded_stacks,
    prometheus_text,
    write_text,
)
from repro.obs.slo import SloSpec, evaluate
from repro.workloads.sessions import SessionConfig, run_sessions

#: Metric prefixes excluded from every export: the two families that
#: legitimately differ between the fast and slow simulation paths.
EXPORT_EXCLUDE = ("engine.", "fastpath.")

#: Objectives evaluated when no ``--slo`` is given.
DEFAULT_SLOS = (
    "xemem.attach.ns.p99 < 25us over 200us",
    "xemem.req.timeouts.count < 1 over 1ms",
)

#: The histogram the dashboard's quantile chart plots.
CHART_METRIC = "xemem.attach.ns"


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro serve-report",
        description=(
            "Run the closed-loop serving scenario under full telemetry "
            "and export time-series, SLO verdicts, journeys, a "
            "flamegraph, Prometheus text, and an HTML dashboard."
        ),
    )
    p.add_argument("--seed", type=int, default=0,
                   help="session think-time RNG seed (default 0)")
    p.add_argument("--sessions", type=int, default=6,
                   help="concurrent client sessions (default 6)")
    p.add_argument("--ops", type=int, default=8,
                   help="closed-loop rounds per session (default 8)")
    p.add_argument("--cokernels", type=int, default=2,
                   help="exporting co-kernels (default 2)")
    p.add_argument("--pages", type=int, default=16,
                   help="pages per exported segment (default 16)")
    p.add_argument("--mean-think-ns", type=int, default=20_000,
                   help="mean think time between rounds (default 20000)")
    p.add_argument("--window-ns", type=int, default=50_000,
                   help="tumbling-window width in virtual ns (default 50000)")
    p.add_argument("--slo", action="append", metavar="SPEC",
                   help="objective to evaluate (repeatable; see "
                        "docs/OBSERVABILITY.md for the grammar). "
                        f"Defaults: {', '.join(DEFAULT_SLOS)}")
    p.add_argument("--out-dir", metavar="DIR",
                   help="write dashboard.html, flamegraph.folded, "
                        "metrics.prom, timeseries.json, slo.json, and "
                        "journeys.json under DIR")
    p.add_argument("--journeys", type=int, default=10,
                   help="journeys shown in the summary and dashboard "
                        "(default 10)")
    p.add_argument("--fail-on-violation", action="store_true",
                   help="exit 4 when any SLO is violated")
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        specs = [SloSpec.parse(s) for s in (args.slo or DEFAULT_SLOS)]
    except ValueError as exc:
        raise SystemExit(str(exc))

    cfg = SessionConfig(
        seed=args.seed,
        sessions=args.sessions,
        ops=args.ops,
        cokernels=args.cokernels,
        pages=args.pages,
        mean_think_ns=args.mean_think_ns,
    )
    # The scope installs the hooks before the rig (and its engine) is
    # built inside run_sessions, so every event flows through them.
    with obs.observing(trace=True, metrics=True, timeseries=True,
                       window_ns=args.window_ns, flightrec=True) as ctx:
        report = run_sessions(cfg)
        ctx.timeseries.finish(report.end_ns)

    trace = analysis.from_tracer(ctx.tracer)
    all_journeys = analysis.journeys(trace)
    slo_report = evaluate(specs, ctx.timeseries,
                          journeys=all_journeys, trace=trace)
    if not slo_report.ok:
        # Feed the verdicts into the black box: each breached window is a
        # note, the earliest breach becomes the incident trigger.
        recorder = ctx.flightrec
        for v in slo_report.violations:
            recorder.note("slo.violation", v.time_ns, slo=v.slo,
                          detail=v.detail)
        first = slo_report.violations[0]
        recorder.trigger("slo.violation", first.time_ns, slo=first.slo,
                         detail=first.detail)
    top_journeys = sorted(
        all_journeys, key=lambda j: (-j.duration_ns, j.req_id)
    )[:args.journeys]

    lines = report.lines()
    windows_line = (f"  windows: {len(ctx.timeseries)} x "
                    f"{args.window_ns} ns")
    if ctx.timeseries.dropped:
        windows_line += f" ({ctx.timeseries.dropped} dropped by ring cap)"
    lines.append(windows_line)
    lines.append(f"  spans: {len(trace.spans)}"
                 + (f" ({trace.dropped} dropped)" if trace.dropped else "")
                 + f", journeys: {len(all_journeys)}")
    print("\n".join(lines))
    print("\nSLOs:")
    print("\n".join(slo_report.lines()))
    print()
    print(analysis.render_journeys(all_journeys, top=args.journeys))

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
        meta = {
            "seed": cfg.seed,
            "sessions": cfg.sessions,
            "ops": cfg.ops,
            "cokernels": cfg.cokernels,
            "pages": cfg.pages,
            "window_ns": args.window_ns,
            "end_ns": report.end_ns,
            "ops_ok": report.ops_ok,
            "ops_error": report.ops_error,
            "journeys_total": len(all_journeys),
        }
        ts_doc = ctx.timeseries.to_doc(EXPORT_EXCLUDE)
        doc = {
            "meta": meta,
            "timeseries": ts_doc,
            "chart_metric": CHART_METRIC,
            "slo": slo_report.to_doc(),
            "journeys": [j.to_doc() for j in top_journeys],
        }
        outputs = (
            ("dashboard.html", dashboard_html(doc)),
            ("flamegraph.folded", folded_stacks(trace)),
            ("metrics.prom",
             prometheus_text(ctx.metrics, exclude_prefixes=EXPORT_EXCLUDE)),
            ("timeseries.json",
             json.dumps(ts_doc, sort_keys=True, indent=2) + "\n"),
            ("slo.json",
             json.dumps(slo_report.to_doc(), sort_keys=True, indent=2)
             + "\n"),
            ("journeys.json",
             json.dumps([j.to_doc() for j in all_journeys],
                        sort_keys=True, indent=2) + "\n"),
        )
        for name, text in outputs:
            path = os.path.join(args.out_dir, name)
            write_text(path, text)
            print(f"[{name}: {len(text)} bytes -> {path}]")
        if not slo_report.ok:
            bundle_path = flightrec_mod.write_bundle(
                os.path.join(args.out_dir, "incident-slo"),
                ctx.flightrec.last_trigger,
                recorder=ctx.flightrec,
                config={
                    "command": "serve-report",
                    "seed": cfg.seed,
                    "slos": [s.raw for s in specs],
                },
            )
            print(f"[incident bundle: {bundle_path}]")

    if args.fail_on_violation and not slo_report.ok:
        return 4
    return 0
