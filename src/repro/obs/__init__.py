"""Observability for the simulator: span tracing, metrics, engine hooks.

Three pieces, all default-off and zero-cost when disabled:

* :mod:`repro.obs.tracer` — nestable spans on the virtual clock,
  exportable as Chrome/Perfetto ``trace.json`` or JSONL;
* :mod:`repro.obs.metrics` — hierarchically named counters, gauges, and
  fixed-bucket histograms, snapshotable to a dict/JSON;
* :mod:`repro.obs.engine_hooks` — an engine sink counting executed
  events, sampling queue depth, accounting process virtual runtimes,
  and (optionally) profiling simulator hot paths by host wallclock.

On top of those sit the analysis layers:

* :mod:`repro.obs.analysis` — span-tree reconstruction and per-subsystem
  cost attribution over exported traces (``python -m repro report``);
* :mod:`repro.obs.audit` — the default-off runtime invariant auditor
  (``REPRO_AUDIT=1``), raising :class:`~repro.obs.audit.AuditViolation`
  with span context when simulated kernel state drifts;
* :mod:`repro.obs.bench` — the ``BENCH_*.json`` regression comparator
  behind ``make bench-compare`` and the CI perf gate;
* :mod:`repro.obs.timeseries` — tumbling-window aggregation of the
  metrics registry on the virtual clock (``observing(timeseries=True)``);
* :mod:`repro.obs.slo` — declarative latency/error objectives evaluated
  deterministically against the time-series, with journey context;
* :mod:`repro.obs.export` — Prometheus text, folded-stack flamegraphs,
  and the self-contained HTML dashboard (``python -m repro serve-report``);
* :mod:`repro.obs.flightrec` — the always-on flight recorder and
  byte-deterministic incident bundles (``python -m repro diagnose``);
* :mod:`repro.obs.diff` — differential regression attribution between
  two captures or bundles (``python -m repro perf-diff``).

Usage from instrumentation sites::

    from repro import obs

    o = obs.get()
    with o.span("xemem.attach", self.engine, track=self.enclave.name):
        ...
    o.counter("xemem.attach.count").inc()

Usage from drivers (the CLI does exactly this)::

    with obs.observing(trace=True, metrics=True) as ctx:
        figures.fig5_throughput(reps=1)
    ctx.tracer.to_chrome("trace.json")
    print(ctx.metrics.to_json())
"""

from repro.obs import analysis, audit, diff, export, flightrec, slo, timeseries
from repro.obs.audit import Auditor, AuditViolation
from repro.obs.context import ObsContext, get, install, observing, reset
from repro.obs.engine_hooks import EngineObserver
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.slo import SloReport, SloSpec, SloViolation
from repro.obs.timeseries import TimeSeriesHook, TimeSeriesRecorder
from repro.obs.tracer import RingBuffer, Span, Tracer

__all__ = [
    "AuditViolation",
    "Auditor",
    "Counter",
    "EngineObserver",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsContext",
    "RingBuffer",
    "SloReport",
    "SloSpec",
    "SloViolation",
    "Span",
    "TimeSeriesHook",
    "TimeSeriesRecorder",
    "Tracer",
    "analysis",
    "audit",
    "diff",
    "export",
    "flightrec",
    "get",
    "install",
    "observing",
    "reset",
    "slo",
    "timeseries",
]
