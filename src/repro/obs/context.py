"""The process-wide observability context.

Instrumentation sites all over the simulator (XEMEM modules, Pisces
channels, kernels, the NIC) fetch the active context with
:func:`repro.obs.get` and write spans/metrics through it. By default the
context is **disabled**: spans return a shared null context manager,
metrics return a shared null sink, and engines get no observer — the
instrumented hot paths cost one attribute check, simulation behaviour
and benchmark numbers are unchanged.

The CLI (``python -m repro fig5 --trace out.json --metrics``) and tests
enable observability by installing an enabled context, either directly
with :func:`install` or scoped with the :func:`observing` context
manager::

    with obs.observing(trace=True, metrics=True) as ctx:
        run_experiment()
    ctx.tracer.to_chrome("trace.json")
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.obs.engine_hooks import EngineObserver
from repro.obs.flightrec import FlightRecorder
from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.timeseries import (
    DEFAULT_MAX_WINDOWS,
    DEFAULT_WINDOW_NS,
    TimeSeriesHook,
    TimeSeriesRecorder,
)
from repro.obs.tracer import NULL_SPAN, Tracer


class ObsContext:
    """One tracer + one metrics registry + one optional engine observer.

    When windowed aggregation is on (``observing(timeseries=True)``),
    :attr:`timeseries` holds the live
    :class:`~repro.obs.timeseries.TimeSeriesRecorder` and
    :attr:`engine_obs` is the :class:`~repro.obs.timeseries.
    TimeSeriesHook` that advances it (wrapping the plain
    :class:`EngineObserver` when engine stats are also requested).
    """

    def __init__(self, tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 engine_obs: Optional[EngineObserver] = None,
                 timeseries: Optional[TimeSeriesRecorder] = None,
                 flightrec: Optional[FlightRecorder] = None):
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=False)
        self.engine_obs = engine_obs
        self.timeseries = timeseries
        #: Optional always-on black box (see :mod:`repro.obs.flightrec`).
        #: Deliberately *not* part of :attr:`enabled`: an armed recorder
        #: installs no engine hook and records nothing until a hook site
        #: feeds it, so it never perturbs the zero-cost contract.
        self.flightrec = flightrec

    @property
    def enabled(self) -> bool:
        """True when any recording surface is live."""
        return (
            self.tracer.enabled or self.metrics.enabled or self.engine_obs is not None
        )

    # -- one-call instrumentation surface ------------------------------------

    def span(self, name: str, engine, track: str = "main", **attrs):
        """Span on the active tracer (null context manager when off)."""
        if not self.tracer.enabled:
            return NULL_SPAN
        return self.tracer.span(name, engine, track=track, **attrs)

    def counter(self, name: str):
        """Counter in the active registry (null sink when off)."""
        return self.metrics.counter(name)

    def gauge(self, name: str):
        """Gauge in the active registry (null sink when off)."""
        return self.metrics.gauge(name)

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS):
        """Histogram in the active registry (null sink when off)."""
        return self.metrics.histogram(name, bounds)

    def snapshot(self) -> dict:
        """Metrics snapshot, with the engine observer's stats folded in.

        Span-ring evictions surface here as the ``obs.spans.dropped``
        gauge (only once drops actually happened, so clean runs export
        byte-identical snapshots with or without a ring cap).
        """
        if self.engine_obs is not None and self.metrics.enabled:
            self.engine_obs.publish(self.metrics)
        if self.metrics.enabled and self.tracer.enabled and self.tracer.dropped:
            self.metrics.gauge("obs.spans.dropped").set(self.tracer.dropped)
        return self.metrics.snapshot()


#: The default, all-off context active when nothing is installed.
_DISABLED = ObsContext()
_current: ObsContext = _DISABLED


def get() -> ObsContext:
    """The active observability context (disabled by default)."""
    return _current


def install(ctx: ObsContext) -> ObsContext:
    """Make ``ctx`` the active context; returns the previous one."""
    global _current
    previous = _current
    _current = ctx  # repro: noqa[REP110] reason=the observability context is per-host-process by design; sharded engines install their own (ROADMAP item 1)
    return previous


def reset() -> None:
    """Restore the default disabled context."""
    global _current
    _current = _DISABLED  # repro: noqa[REP110] reason=restores the module default; same per-process contract as install()


@contextlib.contextmanager
def observing(trace: bool = True, metrics: bool = True,
              engine: bool = False, profile: bool = False,
              max_trace_events: Optional[int] = None,
              timeseries: bool = False,
              window_ns: int = DEFAULT_WINDOW_NS,
              max_windows: Optional[int] = DEFAULT_MAX_WINDOWS,
              flightrec: bool = False) -> Iterator[ObsContext]:
    """Scoped enablement: install an enabled context, restore on exit.

    The context object stays usable after exit (for export); only the
    global registration is undone.

    ``timeseries=True`` additionally aggregates the metrics registry
    into tumbling ``window_ns`` windows on the virtual clock (see
    :mod:`repro.obs.timeseries`); it requires ``metrics=True`` and
    installs a window-advancing engine hook, so engines built inside
    the scope pick it up automatically. Call
    ``ctx.timeseries.finish(end_ns)`` after the run to flush the final
    partial window.

    ``flightrec=True`` arms a :class:`~repro.obs.flightrec.
    FlightRecorder` black box on the context; engines built inside the
    scope attach themselves to it, and fault/audit/SLO hook sites feed
    it. It installs no engine hook, so arming it costs nothing per
    event.
    """
    if timeseries and not metrics:
        raise ValueError("observing(timeseries=True) requires metrics=True")
    registry = MetricsRegistry(enabled=metrics)
    recorder = (
        TimeSeriesRecorder(registry, window_ns=window_ns,
                           max_windows=max_windows)
        if timeseries else None
    )
    inner = EngineObserver(profile=profile) if (engine or profile) else None
    engine_obs = (
        TimeSeriesHook(recorder, inner=inner) if recorder is not None else inner
    )
    ctx = ObsContext(
        tracer=Tracer(enabled=trace, max_events=max_trace_events),
        metrics=registry,
        engine_obs=engine_obs,
        timeseries=recorder,
        flightrec=FlightRecorder() if flightrec else None,
    )
    previous = install(ctx)
    try:
        yield ctx
    finally:
        install(previous)
