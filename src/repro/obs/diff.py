"""Differential regression attribution between two trace captures.

A failed bench gate says *that* a run regressed; this module says
*where*. It loads two captures — Chrome/JSONL trace exports or incident
bundles (:mod:`repro.obs.flightrec`) — and attributes the end-to-end
virtual-time delta per subsystem bucket and per span name, using the
same exclusive-time machinery as :mod:`repro.obs.analysis`, so a
regression report reads like a Table-2 row diff: "the +1.2 ms came from
``pagetable`` (+0.9 ms) and ``channel`` (+0.3 ms), concentrated in
``kernel.pagetable.walk``".

Because both sides are virtual-time captures, the diff is exact, not
statistical: identical twins (fast vs slow path, fast vs detailed
fidelity) diff to all-zero rows — any non-zero delta between modes is a
contract violation, which is what makes this the right tool under the
repo's differential-testing methodology.

CLI::

    python -m repro perf-diff baseline.trace.json current.trace.json

``repro.obs.bench`` invokes this automatically when a gate fails and a
sibling ``<name>.trace.json`` capture exists next to each result file.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import analysis
from repro.obs.flightrec import is_bundle


@dataclass
class CaptureProfile:
    """One capture, reduced to the numbers the diff needs."""

    source: str
    total_ns: int                                   #: sum of root durations
    by_subsystem: Dict[str, int]                    #: exclusive ns per bucket
    by_name: Dict[str, Tuple[int, int]]             #: name -> (count, excl ns)
    counters: Dict[str, float] = field(default_factory=dict)
    dropped: int = 0


def profile_trace(trace: analysis.TraceData, source: str = "trace",
                  counters: Optional[Dict[str, float]] = None) -> CaptureProfile:
    """Reduce a loaded trace to a :class:`CaptureProfile`."""
    attribution = analysis.attribute(trace)
    by_name: Dict[str, List[int]] = {}
    for span in trace.spans:
        agg = by_name.setdefault(span.name, [0, 0])
        agg[0] += 1
        agg[1] += analysis.exclusive_ns(span)
    return CaptureProfile(
        source=source,
        total_ns=attribution.total_ns,
        by_subsystem=dict(attribution.by_subsystem),
        by_name={name: (n, ns) for name, (n, ns) in sorted(by_name.items())},
        counters=counters or {},
        dropped=trace.dropped,
    )


def load_capture(path: str) -> CaptureProfile:
    """Load a trace export or an incident bundle into a profile.

    Bundle captures profile the *trace tail* (what the flight recorder
    retained), plus the bundle's final counter values; full trace
    exports carry no counters.
    """
    import os

    if is_bundle(path):
        trace = analysis.load_trace(os.path.join(path, "trace_tail.jsonl"))
        with open(os.path.join(path, "metrics.json")) as fp:
            final = json.load(fp).get("final", {})
        counters = {
            name: value for name, value in sorted(final.items())
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
        return profile_trace(trace, source=path, counters=counters)
    return profile_trace(analysis.load_trace(path), source=path)


@dataclass
class DiffRow:
    """One subsystem (or span name) in the diff."""

    key: str
    baseline_ns: int
    current_ns: int

    @property
    def delta_ns(self) -> int:
        return self.current_ns - self.baseline_ns


@dataclass
class PerfDiff:
    """The attribution of one capture pair's virtual-time delta."""

    baseline: CaptureProfile
    current: CaptureProfile
    by_subsystem: List[DiffRow]
    by_name: List[DiffRow]
    name_counts: Dict[str, Tuple[int, int]]   #: name -> (base n, cur n)
    counter_deltas: List[Tuple[str, float, float]]

    @property
    def total_delta_ns(self) -> int:
        return self.current.total_ns - self.baseline.total_ns

    @property
    def attributed_delta_ns(self) -> int:
        return sum(row.delta_ns for row in self.by_subsystem)

    @property
    def coverage(self) -> float:
        """Fraction of the end-to-end delta the buckets explain.

        A zero delta (identical twins) is fully explained by definition.
        """
        if self.total_delta_ns == 0:
            return 1.0
        return self.attributed_delta_ns / self.total_delta_ns

    def to_doc(self) -> dict:
        return {
            "baseline": self.baseline.source,
            "current": self.current.source,
            "baseline_total_ns": self.baseline.total_ns,
            "current_total_ns": self.current.total_ns,
            "total_delta_ns": self.total_delta_ns,
            "attributed_delta_ns": self.attributed_delta_ns,
            "coverage": self.coverage,
            "by_subsystem": [
                {"subsystem": r.key, "baseline_ns": r.baseline_ns,
                 "current_ns": r.current_ns, "delta_ns": r.delta_ns}
                for r in self.by_subsystem
            ],
            "by_name": [
                {"name": r.key, "baseline_ns": r.baseline_ns,
                 "current_ns": r.current_ns, "delta_ns": r.delta_ns,
                 "baseline_count": self.name_counts[r.key][0],
                 "current_count": self.name_counts[r.key][1]}
                for r in self.by_name
            ],
            "counter_deltas": [
                {"counter": name, "baseline": b, "current": c}
                for name, b, c in self.counter_deltas
            ],
        }


def diff_profiles(baseline: CaptureProfile,
                  current: CaptureProfile) -> PerfDiff:
    """Attribute ``current - baseline`` per subsystem and span name."""
    subsystems = sorted(
        set(baseline.by_subsystem) | set(current.by_subsystem),
        key=lambda k: (
            analysis.SUBSYSTEMS.index(k) if k in analysis.SUBSYSTEMS else 99,
            k,
        ),
    )
    by_subsystem = [
        DiffRow(key=k,
                baseline_ns=baseline.by_subsystem.get(k, 0),
                current_ns=current.by_subsystem.get(k, 0))
        for k in subsystems
    ]
    names = sorted(set(baseline.by_name) | set(current.by_name))
    name_counts = {}
    by_name = []
    for name in names:
        bn, bns = baseline.by_name.get(name, (0, 0))
        cn, cns = current.by_name.get(name, (0, 0))
        name_counts[name] = (bn, cn)
        by_name.append(DiffRow(key=name, baseline_ns=bns, current_ns=cns))
    by_name.sort(key=lambda r: (-abs(r.delta_ns), r.key))
    counter_deltas = []
    for name in sorted(set(baseline.counters) | set(current.counters)):
        b = baseline.counters.get(name, 0)
        c = current.counters.get(name, 0)
        if b != c:
            counter_deltas.append((name, b, c))
    counter_deltas.sort(key=lambda t: (-abs(t[2] - t[1]), t[0]))
    return PerfDiff(
        baseline=baseline,
        current=current,
        by_subsystem=by_subsystem,
        by_name=by_name,
        name_counts=name_counts,
        counter_deltas=counter_deltas,
    )


def diff_files(baseline_path: str, current_path: str) -> PerfDiff:
    """File-path wrapper around :func:`diff_profiles`."""
    return diff_profiles(load_capture(baseline_path),
                         load_capture(current_path))


def _share(delta_ns: int, total_delta_ns: int) -> str:
    if total_delta_ns == 0:
        return "-"
    return f"{100.0 * delta_ns / total_delta_ns:.1f}%"


def render_diff(diff: PerfDiff, top: int = 10) -> str:
    """Attribution tables plus a one-line verdict."""
    from repro.bench.report import render_table

    total = diff.total_delta_ns
    parts: List[str] = []
    if diff.baseline.dropped or diff.current.dropped:
        parts.append(
            f"WARNING: ring-cap drops (baseline {diff.baseline.dropped}, "
            f"current {diff.current.dropped}) — the diff covers a "
            "truncated window, not the whole run."
        )
    rows = [
        (r.key, f"{r.baseline_ns / 1e6:.3f}", f"{r.current_ns / 1e6:.3f}",
         f"{r.delta_ns / 1e3:+.1f}us", _share(r.delta_ns, total))
        for r in diff.by_subsystem
    ]
    rows.append((
        "TOTAL (end-to-end)",
        f"{diff.baseline.total_ns / 1e6:.3f}",
        f"{diff.current.total_ns / 1e6:.3f}",
        f"{total / 1e3:+.1f}us",
        "100.0%" if total else "-",
    ))
    parts.append(render_table(
        ["subsystem", "baseline ms", "current ms", "delta", "share"],
        rows,
        title=(f"virtual-time delta by subsystem "
               f"({diff.baseline.source} -> {diff.current.source}):"),
    ))
    movers = [r for r in diff.by_name
              if r.delta_ns != 0
              or diff.name_counts[r.key][0] != diff.name_counts[r.key][1]]
    if movers:
        name_rows = [
            (r.key,
             f"{diff.name_counts[r.key][0]} -> {diff.name_counts[r.key][1]}",
             f"{r.delta_ns / 1e3:+.1f}us")
            for r in movers[:top]
        ]
        parts.append(render_table(
            ["span name", "count", "exclusive delta"],
            name_rows,
            title=f"top {len(name_rows)} span-name movers:",
        ))
    if diff.counter_deltas:
        counter_rows = [
            (name, f"{b:g}", f"{c:g}", f"{c - b:+g}")
            for name, b, c in diff.counter_deltas[:top]
        ]
        parts.append(render_table(
            ["counter", "baseline", "current", "delta"],
            counter_rows,
            title="counter movement:",
        ))
    if total == 0 and not movers and not diff.counter_deltas:
        verdict = ("IDENTICAL: no virtual-time, span, or counter delta "
                   "between the captures")
    else:
        verdict = (
            f"attributed {diff.coverage * 100:.1f}% of a "
            f"{total:+d} ns end-to-end virtual-time delta "
            f"({diff.attributed_delta_ns:+d} ns across "
            f"{sum(1 for r in diff.by_subsystem if r.delta_ns)} subsystem(s))"
        )
    parts.append(verdict)
    return "\n\n".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro perf-diff",
        description=(
            "Attribute the virtual-time delta between two trace captures "
            "(trace exports or incident bundles) per subsystem and span."
        ),
    )
    parser.add_argument("baseline", help="baseline capture (trace or bundle)")
    parser.add_argument("current", help="current capture (trace or bundle)")
    parser.add_argument("--top", type=int, default=10,
                        help="span-name/counter movers shown (default 10)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable JSON instead of tables")
    parser.add_argument("--min-coverage", type=float, metavar="FRAC",
                        help="exit 5 when the attributed share of the "
                             "delta falls below FRAC (e.g. 0.95)")
    args = parser.parse_args(argv)
    try:
        diff = diff_files(args.baseline, args.current)
    except OSError as exc:
        raise SystemExit(
            f"perf-diff: cannot read {exc.filename}: {exc.strerror}"
        )
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"perf-diff: not a trace capture or bundle ({exc})")
    if args.json:
        print(json.dumps(diff.to_doc(), sort_keys=True, indent=2))
    else:
        print(render_diff(diff, top=args.top))
    if args.min_coverage is not None and diff.coverage < args.min_coverage:
        print(f"FAIL: coverage {diff.coverage * 100:.1f}% below the "
              f"required {args.min_coverage * 100:.1f}%")
        return 5
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
