"""The flight recorder: an always-on black box plus incident bundles.

A :class:`FlightRecorder` keeps a bounded window of "what just happened"
— recent/open spans (via the ambient ring-capped tracer), periodic
metric snapshots, armed fault draws, and an engine state summary — at
near-zero cost while nothing fails. It installs **no engine hook** (an
engine observer would force per-event dispatch and disable the batched
drain), so arming it is wallclock-cheap and byte-invisible to every
figure and export.

On a trigger — enclave crash, :class:`~repro.obs.audit.AuditViolation`,
:class:`~repro.obs.slo.SloViolation`, an unhandled CLI exception, or an
explicit ``--flightrec-dump`` — :func:`write_bundle` freezes the black
box into an **incident bundle**: one directory of sorted-keys JSON
files, byte-identical for identical (seed, plan) runs because every
timestamp is virtual and every iteration order is sorted. The bundle
schema (see docs/OBSERVABILITY.md):

========================  ====================================================
file                      contents
========================  ====================================================
``MANIFEST.json``         schema version, the trigger, sha256 per file
``trace_tail.jsonl``      recent completed spans + still-open spans
``metrics.json``          snapshot history + final snapshot (twin-safe)
``faults.json``           fault-plan state, draw counts, recorder notes
``engine.json``           :meth:`repro.sim.engine.Engine.state_summary`
``config.json``           run arguments + ``REPRO_*`` environment fingerprint
========================  ====================================================

Twin safety: the metric families that legitimately differ between the
fast/slow and fast/detailed simulation paths (``engine.*``,
``fastpath.*``) are excluded from ``metrics.json``, and the two mode
switches (``REPRO_FASTPATH``, ``REPRO_FIDELITY``) are excluded from the
environment fingerprint — the same (seed, plan) therefore produces a
byte-identical bundle in **every** mode, which is exactly what makes a
bundle comparable across the differential contract.

``python -m repro diagnose <bundle>`` renders a bundle as a causal
timeline around the failure point (:func:`render_diagnosis`).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
from typing import Any, Dict, List, Optional

#: Incident-bundle schema version (bump on incompatible layout changes).
SCHEMA_VERSION = 1

#: Metric families excluded from bundles: the two that legitimately
#: differ between the fast and slow simulation paths (the same exclusion
#: serve-report's exporters apply).
TWIN_EXCLUDE = ("engine.", "fastpath.")

#: Mode switches excluded from the environment fingerprint so a bundle
#: stays byte-identical across the fast/slow/detailed twins.
TWIN_ENV = ("REPRO_FASTPATH", "REPRO_FIDELITY")

#: Bundle file names, in manifest order.
BUNDLE_FILES = (
    "trace_tail.jsonl",
    "metrics.json",
    "faults.json",
    "engine.json",
    "config.json",
)

MANIFEST = "MANIFEST.json"


class FlightRecorder:
    """Bounded black box riding on the ambient observability context.

    Cheap by construction: ``note()``/``trigger()`` append to ring
    buffers, ``tick()`` snapshots the metrics registry at most once per
    ``snapshot_interval_ns`` of *virtual* time, and nothing here ever
    touches the engine's event loop. Fault-injector hook sites and the
    audit/SLO machinery feed it; everything else ignores it.
    """

    def __init__(self, trace_tail: int = 64,
                 snapshot_interval_ns: int = 1_000_000,
                 max_snapshots: int = 16,
                 max_notes: int = 256):
        from repro.obs.tracer import RingBuffer

        self.trace_tail = trace_tail
        self.snapshot_interval_ns = snapshot_interval_ns
        self._snapshots = RingBuffer(max_snapshots)
        self._notes = RingBuffer(max_notes)
        self._next_snapshot_ns = snapshot_interval_ns
        #: Most recent trigger (the dump uses it when the caller has none).
        self.last_trigger: Optional[dict] = None
        self.triggers = 0
        #: Latest engine/injector seen (rigs attach themselves on build).
        self.engine = None
        self.injector = None

    # -- wiring ------------------------------------------------------------

    def attach(self, engine=None, injector=None) -> "FlightRecorder":
        """Remember the engine/injector whose state a dump summarizes."""
        if engine is not None:
            self.engine = engine
        if injector is not None:
            self.injector = injector
        return self

    # -- recording ---------------------------------------------------------

    def note(self, kind: str, time_ns: int, **detail) -> None:
        """Append one bounded, virtual-timestamped breadcrumb."""
        self._notes.append(
            {"time_ns": int(time_ns), "kind": kind, "detail": detail}
        )

    def trigger(self, kind: str, time_ns: int, **detail) -> dict:
        """Record an incident trigger; returns the trigger record."""
        record = {"kind": kind, "time_ns": int(time_ns), "detail": detail}
        self.last_trigger = record
        self.triggers += 1
        self.note(f"trigger.{kind}", time_ns, **detail)
        return record

    def tick(self, now_ns: int) -> None:
        """Snapshot the ambient metrics at most once per interval.

        Hook sites call this opportunistically (fault draws, audit
        cadence); between calls the recorder costs nothing.
        """
        if now_ns < self._next_snapshot_ns:
            return
        self._next_snapshot_ns = (
            now_ns - now_ns % self.snapshot_interval_ns
            + self.snapshot_interval_ns
        )
        from repro.obs import context as _obs_context

        ctx = _obs_context.get()
        if ctx.metrics.enabled:
            self._snapshots.append((int(now_ns), ctx.snapshot()))

    # -- introspection -----------------------------------------------------

    @property
    def notes(self) -> List[dict]:
        """Retained breadcrumbs, oldest first."""
        return list(self._notes)

    @property
    def snapshots(self) -> List[tuple]:
        """Retained ``(time_ns, metrics)`` snapshots, oldest first."""
        return list(self._snapshots)


# -- bundle writing ------------------------------------------------------------


def _filtered_metrics(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Drop the twin-variant metric families from a snapshot."""
    return {
        name: value for name, value in sorted(snapshot.items())
        if not name.startswith(TWIN_EXCLUDE)
    }


def _span_line(span, open_: bool = False) -> str:
    """One trace-tail JSONL line (the tracer's export schema + ``open``)."""
    attrs: Dict[str, Any] = {}
    for key, value in span.attrs.items():
        if isinstance(value, (int, float, str, bool)) or value is None:
            attrs[key] = value
        else:
            attrs[key] = repr(value)
    doc = {
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "track": span.track,
        "start_ns": span.start_ns,
        "end_ns": span.end_ns,
        "attrs": attrs,
    }
    if open_:
        doc["open"] = True
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _trace_tail_text(tracer, tail: int) -> str:
    lines: List[str] = []
    recorded = 0
    dropped = 0
    if tracer is not None and tracer.enabled:
        recorded = len(tracer)
        dropped = tracer.dropped
        for span in tracer.recent(tail):
            lines.append(_span_line(span))
        for span in tracer.open_spans():
            lines.append(_span_line(span, open_=True))
    lines.append(
        json.dumps(
            {"meta": {"dropped": dropped, "recorded": recorded,
                      "tail": len(lines)}},
            sort_keys=True, separators=(",", ":"),
        )
    )
    return "\n".join(lines) + "\n"


def _faults_doc(injector, notes: List[dict]) -> dict:
    doc: Dict[str, Any] = {"armed": injector is not None, "notes": notes}
    if injector is not None:
        plan = injector.plan
        doc.update(
            active=bool(injector.active),
            seed=plan.seed,
            counts={k: v for k, v in sorted(injector.counts.items())},
            events=[
                {"at_ns": ev.at_ns, "action": ev.action,
                 "target": ev.target, "duration_ns": ev.duration_ns}
                for ev in plan.events
            ],
            probabilities={
                "drop": plan.drop_prob,
                "dup": plan.dup_prob,
                "delay": plan.delay_prob,
                "corrupt": plan.corrupt_prob,
                "ipi_loss": plan.ipi_loss_prob,
            },
            heartbeats=bool(plan.heartbeats),
        )
    return doc


def _config_doc(config: Optional[dict]) -> dict:
    env = {
        key: value for key, value in sorted(os.environ.items())  # repro: noqa[REP103] reason=incident-bundle provenance capture; records the REPRO_* config for replay, never branches on it
        if key.startswith("REPRO_") and key not in TWIN_ENV
    }
    return {
        "schema": SCHEMA_VERSION,
        "args": config or {},
        "env": env,
        "env_excluded": list(TWIN_ENV),
        "metric_prefixes_excluded": list(TWIN_EXCLUDE),
    }


def write_bundle(out_dir: str, trigger: dict, *,
                 recorder: Optional[FlightRecorder] = None,
                 tracer=None, metrics=None, engine=None, injector=None,
                 config: Optional[dict] = None) -> str:
    """Freeze the black box into an incident bundle; returns ``out_dir``.

    Anything not passed explicitly is resolved from ``recorder`` and the
    ambient observability context, so trigger sites can call this with
    just a directory and a trigger record.
    """
    from repro.obs import context as _obs_context

    ctx = _obs_context.get()
    if tracer is None:
        tracer = ctx.tracer
    if metrics is None:
        metrics = ctx.metrics
    tail = recorder.trace_tail if recorder is not None else 64
    if engine is None and recorder is not None:
        engine = recorder.engine
    if injector is None and recorder is not None:
        injector = recorder.injector
    notes = recorder.notes if recorder is not None else []
    history = [
        {"time_ns": t, "metrics": _filtered_metrics(snap)}
        for t, snap in (recorder.snapshots if recorder is not None else [])
    ]
    final = _filtered_metrics(ctx.snapshot()) if metrics.enabled else {}

    texts = {
        "trace_tail.jsonl": _trace_tail_text(tracer, tail),
        "metrics.json": json.dumps(
            {"final": final, "history": history}, sort_keys=True, indent=2
        ) + "\n",
        "faults.json": json.dumps(
            _faults_doc(injector, notes), sort_keys=True, indent=2
        ) + "\n",
        "engine.json": json.dumps(
            engine.state_summary() if engine is not None else {},
            sort_keys=True, indent=2,
        ) + "\n",
        "config.json": json.dumps(
            _config_doc(config), sort_keys=True, indent=2
        ) + "\n",
    }
    os.makedirs(out_dir, exist_ok=True)
    files: Dict[str, dict] = {}
    for name in BUNDLE_FILES:
        data = texts[name].encode()
        with open(os.path.join(out_dir, name), "wb") as fp:
            fp.write(data)
        files[name] = {
            "bytes": len(data),
            "sha256": hashlib.sha256(data).hexdigest(),
        }
    manifest = {
        "schema": SCHEMA_VERSION,
        "trigger": trigger,
        "files": files,
        "notes": len(notes),
        "snapshots": len(history),
    }
    with open(os.path.join(out_dir, MANIFEST), "w") as fp:
        fp.write(json.dumps(manifest, sort_keys=True, indent=2) + "\n")
    return out_dir


# -- bundle loading ------------------------------------------------------------


def is_bundle(path: str) -> bool:
    """True when ``path`` is an incident-bundle directory."""
    return os.path.isdir(path) and os.path.exists(os.path.join(path, MANIFEST))


def load_bundle(path: str) -> dict:
    """Read an incident bundle back into plain dicts (with integrity
    verdicts per file, so tampered/truncated evidence is called out)."""
    with open(os.path.join(path, MANIFEST)) as fp:
        manifest = json.load(fp)
    spans: List[dict] = []
    meta: Dict[str, Any] = {}
    with open(os.path.join(path, "trace_tail.jsonl")) as fp:
        for line in fp:
            if not line.strip():
                continue
            rec = json.loads(line)
            if "meta" in rec:
                meta = rec["meta"]
            else:
                spans.append(rec)
    docs = {}
    for name in ("metrics.json", "faults.json", "engine.json", "config.json"):
        with open(os.path.join(path, name)) as fp:
            docs[name.split(".", 1)[0]] = json.load(fp)
    integrity = {}
    for name, entry in sorted(manifest.get("files", {}).items()):
        try:
            with open(os.path.join(path, name), "rb") as fp:
                digest = hashlib.sha256(fp.read()).hexdigest()
            integrity[name] = (
                "ok" if digest == entry.get("sha256") else "MISMATCH"
            )
        except OSError:
            integrity[name] = "MISSING"
    return {
        "path": path,
        "manifest": manifest,
        "spans": spans,
        "trace_meta": meta,
        "metrics": docs["metrics"],
        "faults": docs["faults"],
        "engine": docs["engine"],
        "config": docs["config"],
        "integrity": integrity,
    }


# -- diagnosis rendering -------------------------------------------------------


def _timeline_entries(bundle: dict) -> List[tuple]:
    """(time_ns, tag, description) rows, time-ordered, trigger last-at-tie."""
    entries: List[tuple] = []
    for span in bundle["spans"]:
        start = int(span.get("start_ns", 0))
        end = span.get("end_ns")
        if span.get("open"):
            entries.append((start, 1, "OPEN",
                            f"{span['name']} [{span.get('track', 'main')}] "
                            "never closed"))
        else:
            dur = (int(end) - start) if end is not None else 0
            entries.append((start, 0, "span",
                            f"{span['name']} [{span.get('track', 'main')}] "
                            f"{dur} ns"))
    for note in bundle["faults"].get("notes", []):
        detail = note.get("detail", {})
        extra = " ".join(
            f"{k}={detail[k]}" for k in sorted(detail)
        )
        entries.append((int(note.get("time_ns", 0)), 2, "note",
                        (note.get("kind", "?") + (" " + extra if extra else ""))))
    trig = bundle["manifest"].get("trigger", {})
    detail = trig.get("detail", {})
    extra = " ".join(f"{k}={detail[k]}" for k in sorted(detail))
    entries.append((int(trig.get("time_ns", 0)), 3, "TRIGGER",
                    (trig.get("kind", "?") + (" " + extra if extra else ""))))
    entries.sort(key=lambda e: (e[0], e[1], e[3]))
    return entries


def _metric_movers(bundle: dict, top: int = 8) -> List[tuple]:
    """Largest counter movements between the last two snapshots (or the
    final snapshot vs the earliest one when history is short)."""
    history = bundle["metrics"].get("history", [])
    final = bundle["metrics"].get("final", {})
    before = history[-1]["metrics"] if history else {}
    movers = []
    for name in sorted(final):
        cur = final[name]
        if not isinstance(cur, (int, float)) or isinstance(cur, bool):
            continue
        prev = before.get(name, 0)
        prev = prev if isinstance(prev, (int, float)) else 0
        if cur != prev:
            movers.append((name, prev, cur, cur - prev))
    movers.sort(key=lambda m: (-abs(m[3]), m[0]))
    return movers[:top]


def render_diagnosis(bundle: dict, window_ns: int = 500_000) -> str:
    """Causal-timeline rendering of a loaded bundle.

    The *faulting window* is the last ``window_ns`` of virtual time
    before the trigger — the slice of the black box most likely to hold
    the cause; timeline rows inside it are marked.
    """
    from repro.bench.report import render_table

    manifest = bundle["manifest"]
    trig = manifest.get("trigger", {})
    trig_ns = int(trig.get("time_ns", 0))
    entries = _timeline_entries(bundle)
    lo = max(trig_ns - window_ns, 0)
    in_window = [e for e in entries if lo <= e[0] <= trig_ns]

    parts = [
        f"incident bundle: {bundle['path']} (schema "
        f"{manifest.get('schema', '?')})",
        f"trigger: {trig.get('kind', '?')} at t={trig_ns} ns"
        + ("".join(f" {k}={v}" for k, v in
                   sorted(trig.get('detail', {}).items()))),
        f"faulting window: [{lo} .. {trig_ns}] ns "
        f"({trig_ns - lo} ns, {len(in_window)} event(s))",
    ]
    bad = [n for n, verdict in sorted(bundle["integrity"].items())
           if verdict != "ok"]
    if bad:
        parts.append(
            "INTEGRITY: " + ", ".join(
                f"{n}: {bundle['integrity'][n]}" for n in bad
            )
        )

    rows = [
        (t, "*" if lo <= t <= trig_ns else "", tag, desc)
        for t, _order, tag, desc in entries
    ]
    parts.append(render_table(
        ["t (ns)", "win", "kind", "event"], rows,
        title="timeline (virtual clock):",
    ))

    engine = bundle["engine"]
    if engine:
        live = engine.get("live_processes", [])
        parts.append(
            f"engine: t={engine.get('now_ns', '?')} ns, "
            f"queue={engine.get('queue_len', '?')}, "
            f"faults_armed={engine.get('faults_armed', '?')}, "
            f"live={', '.join(live) if live else '(none)'}"
        )
    faults = bundle["faults"]
    if faults.get("armed"):
        counts = faults.get("counts", {})
        firing = ", ".join(
            f"{k}={v}" for k, v in sorted(counts.items()) if v
        )
        parts.append(f"fault draws (seed {faults.get('seed', '?')}): "
                     + (firing or "(none fired)"))
    movers = _metric_movers(bundle)
    if movers:
        parts.append(render_table(
            ["metric", "at last snapshot", "final", "delta"],
            [(n, p, c, f"{d:+g}") for n, p, c, d in movers],
            title="metric movement since the last periodic snapshot:",
        ))
    return "\n\n".join(parts)


# -- CLI (python -m repro diagnose) --------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro diagnose",
        description="Render an incident bundle as a causal timeline.",
    )
    parser.add_argument("bundle", help="incident-bundle directory")
    parser.add_argument("--window-ns", type=int, default=500_000,
                        help="faulting-window width before the trigger "
                             "(default 500000)")
    parser.add_argument("--json", action="store_true",
                        help="dump the loaded bundle as one JSON document")
    args = parser.parse_args(argv)
    if not is_bundle(args.bundle):
        raise SystemExit(
            f"{args.bundle}: not an incident bundle (no {MANIFEST})"
        )
    try:
        bundle = load_bundle(args.bundle)
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        raise SystemExit(f"{args.bundle}: unreadable bundle ({exc})")
    if args.json:
        print(json.dumps(
            {k: bundle[k] for k in sorted(bundle) if k != "path"},
            sort_keys=True, indent=2,
        ))
    else:
        print(render_diagnosis(bundle, window_ns=args.window_ns))
    return 1 if any(
        v != "ok" for v in bundle["integrity"].values()
    ) else 0


if __name__ == "__main__":
    raise SystemExit(main())
