"""Span tracing against the virtual clock.

A :class:`Tracer` records nestable, timestamped spans::

    with tracer.span("xemem.attach", engine, track="kitten-0", pages=npages):
        ...  # simulated work; the span's duration is virtual time

Spans are **zero-cost when disabled**: :meth:`Tracer.span` returns a
shared no-op context manager and touches nothing else. All recorded
timestamps come from the simulation's virtual clock, so two identical
runs produce identical traces (byte-identical exports); host wallclock
never enters a trace.

Exports:

* :meth:`Tracer.to_chrome` — Chrome/Perfetto ``trace.json`` (the classic
  ``traceEvents`` array of ``"X"`` complete events). One *thread track*
  per :attr:`Span.track` (enclaves, cores, devices), so a Perfetto
  timeline shows one lane per enclave/device.
* :meth:`Tracer.to_jsonl` — one JSON object per span, streaming-friendly.

The :class:`RingBuffer` here is also the single bounded-recording
primitive for :class:`repro.sim.record.TraceRecorder`, which sits on top
of this module (one recording path).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Any, Dict, Iterator, List, Optional, Union


class RingBuffer:
    """Append-only event store with an optional ring cap.

    With ``max_events`` set, the buffer keeps only the most recent
    ``max_events`` items and counts everything evicted in
    :attr:`dropped` — long noise-profile runs cannot grow memory without
    bound, and the drop is visible instead of silent.
    """

    def __init__(self, max_events: Optional[int] = None):
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.max_events = max_events
        self._items: deque = deque(maxlen=max_events)
        self.dropped = 0

    def append(self, item: Any) -> None:
        """Add one item, evicting (and counting) the oldest at the cap."""
        if self.max_events is not None and len(self._items) == self.max_events:
            self.dropped += 1
        self._items.append(item)

    def clear(self) -> None:
        """Drop all items and reset the dropped counter."""
        self._items.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)


@dataclass
class Span:
    """One completed (or still-open) span on the virtual timeline."""

    span_id: int
    name: str
    track: str
    start_ns: int
    end_ns: Optional[int] = None
    parent_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        """Virtual duration (0 while the span is still open)."""
        return 0 if self.end_ns is None else self.end_ns - self.start_ns


class _NullSpan:
    """Shared do-nothing context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs) -> None:
        """Attribute updates are discarded."""


NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager driving one live span."""

    __slots__ = ("tracer", "engine", "span", "key")

    def __init__(self, tracer: "Tracer", engine, span: Span, key):
        self.tracer = tracer
        self.engine = engine
        self.span = span
        self.key = key

    def set(self, **attrs) -> None:
        """Attach/overwrite attributes on the live span."""
        self.span.attrs.update(attrs)

    def __enter__(self):
        self.tracer._stacks.setdefault(self.key, []).append(self.span.span_id)
        self.tracer._open[self.span.span_id] = self.span
        return self

    def __exit__(self, *exc):
        self.span.end_ns = self.engine.now
        stacks = self.tracer._stacks
        stack = stacks.get(self.key)
        if stack:
            if stack[-1] == self.span.span_id:
                stack.pop()
            else:
                # Out-of-order close within one process (an interrupt
                # unwound an inner with-block without closing it first):
                # remove the id from wherever it sits so a closed span
                # never lingers as the parent of later spans.
                try:
                    stack.remove(self.span.span_id)
                except ValueError:
                    pass
            if not stack:
                del stacks[self.key]
        self.tracer._open.pop(self.span.span_id, None)
        self.tracer._record(self.span)
        return False


class Tracer:
    """Collects spans and instants against the virtual clock."""

    def __init__(self, enabled: bool = True, max_events: Optional[int] = None):
        self.enabled = enabled
        self._buf = RingBuffer(max_events)
        self._seq = 0
        #: Open-span id stacks for parent attribution, keyed by the
        #: simulated process the span was opened in (``None`` for spans
        #: opened outside any process). Keying per process keeps parent
        #: links correct when concurrent processes interleave — a span
        #: never adopts another process's open span as its parent.
        self._stacks: Dict[Any, List[int]] = {}
        #: Spans entered but not yet exited, by id — the auditor attaches
        #: these as "what was in flight" context on a violation.
        self._open: Dict[int, Span] = {}

    # -- recording -----------------------------------------------------------

    def span(self, name: str, engine, track: str = "main", **attrs) -> Union[_OpenSpan, _NullSpan]:
        """A context manager recording ``name`` from now until exit.

        ``engine`` supplies the virtual clock (``engine.now``); ``track``
        names the Perfetto lane (enclave, core, device) the span renders
        on. Extra keyword arguments become span attributes.
        """
        if not self.enabled:
            return NULL_SPAN
        self._seq += 1
        key = getattr(engine, "current_process", None)
        stack = self._stacks.get(key)
        span = Span(
            span_id=self._seq,
            name=name,
            track=track,
            start_ns=engine.now,
            parent_id=stack[-1] if stack else None,
            attrs=attrs,
        )
        return _OpenSpan(self, engine, span, key)

    def instant(self, name: str, time_ns: int, track: str = "main", **attrs) -> None:
        """Record a zero-duration event at an explicit virtual time."""
        if not self.enabled:
            return
        self._seq += 1
        # Instants carry no engine handle, so only the process-less
        # stack can supply a parent; in-process instants record as roots.
        stack = self._stacks.get(None)
        self._record(
            Span(
                span_id=self._seq,
                name=name,
                track=track,
                start_ns=int(time_ns),
                end_ns=int(time_ns),
                parent_id=stack[-1] if stack else None,
                attrs=attrs,
            )
        )

    def _record(self, span: Span) -> None:
        self._buf.append(span)

    # -- introspection -------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """All recorded spans, in completion order."""
        return list(self._buf)

    @property
    def dropped(self) -> int:
        """Spans evicted by the ring cap."""
        return self._buf.dropped

    def of_name(self, name: str) -> List[Span]:
        """All recorded spans with the given name."""
        return [s for s in self._buf if s.name == name]

    def open_spans(self) -> List[Span]:
        """Spans entered but not yet exited, oldest first."""
        return sorted(self._open.values(), key=lambda s: s.span_id)

    def recent(self, n: int = 8) -> List[Span]:
        """The ``n`` most recently completed spans, oldest first."""
        items = list(self._buf)
        return items[-n:]

    def tracks(self) -> List[str]:
        """Distinct track names in first-appearance order."""
        seen: Dict[str, None] = {}
        for s in self._buf:
            seen.setdefault(s.track, None)
        return list(seen)

    def clear(self) -> None:
        """Forget every recorded span."""
        self._buf.clear()
        self._stacks.clear()
        self._open.clear()

    def __len__(self) -> int:
        return len(self._buf)

    # -- export --------------------------------------------------------------

    def _json_attrs(self, span: Span) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for key, value in span.attrs.items():
            if isinstance(value, (int, float, str, bool)) or value is None:
                out[key] = value
            else:
                out[key] = repr(value)
        return out

    def chrome_events(self) -> List[dict]:
        """The ``traceEvents`` list of the Chrome trace format.

        Timestamps are microseconds (the format's unit); the virtual
        nanosecond resolution is preserved as fractional µs. One thread
        id per track, with ``thread_name`` metadata so Perfetto labels
        the lanes.
        """
        tids = {track: i + 1 for i, track in enumerate(self.tracks())}
        events: List[dict] = [
            {
                "ph": "M",
                "name": "process_name",
                "pid": 1,
                "tid": 0,
                "args": {"name": "repro-sim (virtual time)"},
            }
        ]
        for track, tid in tids.items():
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        for span in self._buf:
            end_ns = span.end_ns if span.end_ns is not None else span.start_ns
            event = {
                "ph": "X",
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "pid": 1,
                "tid": tids[span.track],
                "ts": span.start_ns / 1000.0,
                "dur": (end_ns - span.start_ns) / 1000.0,
            }
            args = self._json_attrs(span)
            # Span identity rides in args so trees survive the Chrome
            # round trip (repro.obs.analysis rebuilds parent/child links
            # from these; Perfetto just shows them as extra attributes).
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            event["args"] = args
            events.append(event)
        return events

    def to_chrome(self, fp: Union[str, IO[str]]) -> None:
        """Write a Chrome/Perfetto ``trace.json`` (deterministic bytes)."""
        doc = {
            "displayTimeUnit": "ns",
            "otherData": {"dropped_spans": self.dropped},
            "traceEvents": self.chrome_events(),
        }
        text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        if isinstance(fp, str):
            with open(fp, "w") as f:
                f.write(text)
        else:
            fp.write(text)

    def to_jsonl(self, fp: Union[str, IO[str]]) -> None:
        """Write one JSON object per span (deterministic bytes).

        If the ring cap evicted spans, a trailing ``{"meta": ...}`` line
        records the drop count so downstream analysis can warn instead of
        silently summarizing a truncated trace.
        """
        lines = []
        for span in self._buf:
            lines.append(
                json.dumps(
                    {
                        "id": span.span_id,
                        "parent": span.parent_id,
                        "name": span.name,
                        "track": span.track,
                        "start_ns": span.start_ns,
                        "end_ns": span.end_ns,
                        "attrs": self._json_attrs(span),
                    },
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        if self.dropped:
            lines.append(
                json.dumps(
                    {"meta": {"dropped": self.dropped}},
                    sort_keys=True,
                    separators=(",", ":"),
                )
            )
        text = "\n".join(lines) + ("\n" if lines else "")
        if isinstance(fp, str):
            with open(fp, "w") as f:
                f.write(text)
        else:
            fp.write(text)
