"""Runtime invariant auditor: a sanitizer for the simulated kernels.

Default-off. When enabled (``REPRO_AUDIT=1`` on rig builders, or an
explicit :class:`Auditor`/:class:`AuditHook`), it re-derives global
invariants from live kernel/module state at configurable virtual-time
intervals and at quiescence, raising a structured :class:`AuditViolation`
(with the spans that were in flight attached) the moment simulated state
drifts. Because the same checks run under both fast and slow paths, the
auditor doubles as a standing differential check on the fastpath
contracts.

The invariant catalogue (see ``docs/OBSERVABILITY.md``):

* **frame-ownership exclusivity** — enclave allocator windows over the
  same physical memory are disjoint; a PFN mapped by a process of its
  owning kernel is never simultaneously on that kernel's free list;
  free lists themselves are sorted, non-overlapping, inside the window.
* **refcount balance** — live-attachment and SMARTMAP refcounts are
  non-negative and refer to live grants; a segment's ``grants_out``
  covers at least the owner-local grants at all times and, at
  quiescence, equals the live grants across *all* modules.
* **PTE <-> region consistency** — each region's ``populated`` equals
  its present PTE count; STATIC regions are fully populated, EAGER ones
  all-or-nothing; present PTEs carry the region's flags, and read-only
  regions (read-only XEMEM grants) never gain ``PTE_WRITABLE``.
* **walk-cache generation coherence** — the cache never exceeds its slot
  budget, never holds an entry from the future, and every
  current-generation entry re-walks to the identical PFN list.
* **channel balance** (quiescent) — every started Pisces transfer
  completed.

Audit reads are side-effect free: they use counter-free taps
(:meth:`PageTable.walk_cache_entries`, :meth:`PageTable.present_pfns`,
``PageTable._walk``) so enabling audits never changes traces, metrics,
or the virtual clock.
"""

from __future__ import annotations

import os
from typing import Any, List, Optional

import numpy as np

#: Default virtual-time audit cadence: once per simulated millisecond.
DEFAULT_INTERVAL_NS = 1_000_000

#: Environment switches (read by the rig builders).
ENV_ENABLE = "REPRO_AUDIT"
ENV_INTERVAL = "REPRO_AUDIT_INTERVAL_NS"


def env_enabled() -> bool:
    """True when ``REPRO_AUDIT`` requests auditing."""
    return os.environ.get(ENV_ENABLE, "") not in ("", "0")  # repro: noqa[REP103] reason=construction-time arming switch read by rig builders; toggles checking only, never simulation outcomes


def env_interval_ns() -> int:
    """The audit cadence requested by ``REPRO_AUDIT_INTERVAL_NS``."""
    raw = os.environ.get(ENV_INTERVAL, "")  # repro: noqa[REP103] reason=audit cadence knob; affects how often invariants are checked, not what the simulation computes
    return int(raw) if raw else DEFAULT_INTERVAL_NS


class AuditViolation(AssertionError):
    """A broken invariant, with the offending span context attached."""

    def __init__(self, invariant: str, detail: str, time_ns: int = 0,
                 open_spans: tuple = (), recent_spans: tuple = ()):
        self.invariant = invariant
        self.detail = detail
        self.time_ns = time_ns
        #: Names of spans that were open when the audit fired.
        self.open_spans = tuple(open_spans)
        #: (name, start_ns) of the most recently completed spans.
        self.recent_spans = tuple(recent_spans)
        ctx = ""
        if self.open_spans:
            ctx += f" | in flight: {', '.join(self.open_spans)}"
        if self.recent_spans:
            ctx += " | recent: " + ", ".join(
                f"{name}@{start}" for name, start in self.recent_spans
            )
        super().__init__(
            f"[{invariant}] t={time_ns}ns: {detail}{ctx}"
        )


class Auditor:
    """Checks registered kernels/modules/channels against the catalogue."""

    def __init__(self, tracer=None):
        self.kernels: List[Any] = []
        self.modules: List[Any] = []
        self.channels: List[Any] = []
        self.tracer = tracer
        self.audits_run = 0
        self.violations_found = 0

    # -- registration ---------------------------------------------------------

    def watch_kernel(self, kernel) -> "Auditor":
        if kernel not in self.kernels:
            self.kernels.append(kernel)
        return self

    def watch_module(self, module) -> "Auditor":
        if module not in self.modules:
            self.modules.append(module)
        return self

    def watch_channel(self, channel) -> "Auditor":
        if channel not in self.channels:
            self.channels.append(channel)
        return self

    def unwatch_kernel(self, kernel) -> "Auditor":
        """Stop checking a kernel (its enclave crashed or was torn down)."""
        if kernel in self.kernels:
            self.kernels.remove(kernel)
        return self

    def unwatch_module(self, module) -> "Auditor":
        if module in self.modules:
            self.modules.remove(module)
        return self

    def unwatch_channel(self, channel) -> "Auditor":
        if channel in self.channels:
            self.channels.remove(channel)
        return self

    @classmethod
    def for_rig(cls, rig, tracer=None) -> "Auditor":
        """Watch every kernel, module, and channel of a cokernel rig."""
        auditor = cls(tracer=tracer)
        for enclave in rig.system.enclaves:
            auditor.watch_kernel(enclave.kernel)
        for module in rig.modules.values():
            auditor.watch_module(module)
        for channel in getattr(rig.system, "channels", []):
            if hasattr(channel, "transfers_started"):
                auditor.watch_channel(channel)
        return auditor

    # -- span context ---------------------------------------------------------

    def _context(self) -> dict:
        if self.tracer is None:
            return {"open_spans": (), "recent_spans": ()}
        return {
            "open_spans": tuple(s.name for s in self.tracer.open_spans()),
            "recent_spans": tuple(
                (s.name, s.start_ns) for s in self.tracer.recent(4)
            ),
        }

    # -- checks ---------------------------------------------------------------

    def check(self, now_ns: int = 0, quiescent: bool = False) -> List[AuditViolation]:
        """Run every applicable invariant; return the violations found.

        ``quiescent=True`` adds the checks that only hold when no
        protocol messages are in flight (exact cross-module grant
        balance, channel transfer balance).
        """
        self.audits_run += 1
        ctx = self._context()
        violations: List[AuditViolation] = []

        def fail(invariant: str, detail: str) -> None:
            violations.append(
                AuditViolation(invariant, detail, time_ns=now_ns, **ctx)
            )

        self._check_frames(fail)
        self._check_regions(fail)
        self._check_walk_caches(fail)
        self._check_refcounts(fail)
        if quiescent:
            self._check_quiescent(fail)
        self.violations_found += len(violations)
        return violations

    def audit_now(self, now_ns: int = 0, quiescent: bool = False) -> None:
        """Like :meth:`check` but raises the first violation found."""
        violations = self.check(now_ns=now_ns, quiescent=quiescent)
        if violations:
            raise violations[0]

    # frame-ownership exclusivity ---------------------------------------------

    def _physical_kernels(self) -> List[Any]:
        return [
            k for k in self.kernels if not getattr(k, "virtualized", False)
        ]

    def _check_frames(self, fail) -> None:
        # Allocator windows over the same physical memory must be disjoint.
        by_mem: dict = {}
        for kernel in self._physical_kernels():
            by_mem.setdefault(id(kernel.mem), []).append(kernel)  # repro: noqa[REP104] reason=process-local identity grouping of shared PhysicalMemory objects; never ordered on, exported, or compared across processes
        for kernels in by_mem.values():
            spans = sorted(
                (k.allocator.start_pfn,
                 k.allocator.start_pfn + k.allocator.nframes, k.name)
                for k in kernels
            )
            for (lo1, hi1, n1), (lo2, hi2, n2) in zip(spans, spans[1:]):
                if lo2 < hi1:
                    fail(
                        "frame-exclusivity",
                        f"allocator windows of {n1!r} [{lo1},{hi1}) and "
                        f"{n2!r} [{lo2},{hi2}) overlap",
                    )
        for kernel in self._physical_kernels():
            alloc = kernel.allocator
            free_runs = [tuple(run) for run in alloc._free]
            lo = alloc.start_pfn
            hi = alloc.start_pfn + alloc.nframes
            prev_end = None
            free_set = []
            for start, end in free_runs:
                if start >= end or start < lo or end > hi:
                    fail(
                        "frame-exclusivity",
                        f"{kernel.name!r} free run [{start},{end}) outside "
                        f"window [{lo},{hi}) or empty",
                    )
                    continue
                if prev_end is not None and start < prev_end:
                    fail(
                        "frame-exclusivity",
                        f"{kernel.name!r} free list unsorted/overlapping at "
                        f"[{start},{end})",
                    )
                prev_end = end
                free_set.append((start, end))
            # A PFN mapped by one of the kernel's own processes must not
            # simultaneously be free in the kernel's allocator.
            for proc in kernel.processes.values():
                pfns = proc.aspace.table.present_pfns()
                if not len(pfns):
                    continue
                own = pfns[(pfns >= lo) & (pfns < hi)]
                for start, end in free_set:
                    hit = own[(own >= start) & (own < end)]
                    if len(hit):
                        fail(
                            "frame-exclusivity",
                            f"{kernel.name!r} pid {proc.pid} maps pfn "
                            f"{int(hit[0])} which is on the free list "
                            f"[{start},{end})",
                        )
                        break

    # PTE <-> region consistency ----------------------------------------------

    def _check_regions(self, fail) -> None:
        from repro.kernels.addrspace import RegionKind
        from repro.kernels.pagetable import PTE_WRITABLE

        for kernel in self.kernels:
            for proc in kernel.processes.values():
                table = proc.aspace.table
                for region in proc.aspace.regions:
                    where = (
                        f"{kernel.name!r} pid {proc.pid} region "
                        f"{region.name!r} [{region.start:#x}+{region.npages}p]"
                    )
                    if not 0 <= region.populated <= region.npages:
                        fail("pte-region", f"{where}: populated "
                             f"{region.populated}/{region.npages} out of range")
                        continue
                    if region.kind is RegionKind.STATIC and (
                        region.populated != region.npages
                    ):
                        fail("pte-region",
                             f"{where}: STATIC region not fully populated "
                             f"({region.populated}/{region.npages})")
                    if region.kind is RegionKind.EAGER and region.populated not in (
                        0, region.npages
                    ):
                        fail("pte-region",
                             f"{where}: EAGER region partially populated "
                             f"({region.populated}/{region.npages})")
                    present = table.present_mask(region.start, region.npages)
                    npresent = int(present.sum())
                    if npresent != region.populated:
                        fail("pte-region",
                             f"{where}: {npresent} present PTEs but "
                             f"populated={region.populated}")
                        continue
                    if npresent:
                        flagged = table.flag_mask(
                            region.start, region.npages, region.pte_flags
                        )
                        if int(flagged.sum()) != npresent:
                            fail("pte-region",
                                 f"{where}: present PTEs missing region flags "
                                 f"{region.pte_flags:#x}")
                        if not region.pte_flags & PTE_WRITABLE:
                            writable = table.flag_mask(
                                region.start, region.npages, PTE_WRITABLE
                            )
                            if int(writable.sum()):
                                fail("pte-region",
                                     f"{where}: read-only region has "
                                     f"{int(writable.sum())} writable PTEs")

    # walk-cache generation coherence ------------------------------------------

    def _check_walk_caches(self, fail) -> None:
        from repro.kernels.pagetable import PageFault, WALK_CACHE_SLOTS

        for kernel in self.kernels:
            for proc in kernel.processes.values():
                table = proc.aspace.table
                entries = table.walk_cache_entries()
                where = f"{kernel.name!r} pid {proc.pid}"
                if len(entries) > WALK_CACHE_SLOTS:
                    fail("walkcache-coherence",
                         f"{where}: {len(entries)} cached walks exceed the "
                         f"{WALK_CACHE_SLOTS}-slot budget")
                for vaddr, npages, gen, pfns in entries:
                    if gen > table.generation:
                        fail("walkcache-coherence",
                             f"{where}: cache entry ({vaddr:#x},{npages}p) "
                             f"from future generation {gen} > "
                             f"{table.generation}")
                        continue
                    if len(pfns) != npages:
                        fail("walkcache-coherence",
                             f"{where}: cache entry ({vaddr:#x},{npages}p) "
                             f"holds {len(pfns)} pfns")
                        continue
                    if gen != table.generation:
                        continue  # stale entry; a hit would re-walk
                    try:
                        fresh = table._walk(vaddr, npages)
                    except PageFault:
                        fail("walkcache-coherence",
                             f"{where}: current-generation cache entry "
                             f"({vaddr:#x},{npages}p) no longer walks")
                        continue
                    if not np.array_equal(fresh, pfns):
                        fail("walkcache-coherence",
                             f"{where}: current-generation cache entry "
                             f"({vaddr:#x},{npages}p) disagrees with a "
                             f"fresh walk")

    # refcount balance ---------------------------------------------------------

    def _check_refcounts(self, fail) -> None:
        for module in self.modules:
            name = module.enclave.name
            # Negative counts and released-but-registered grants fall out
            # of single vectorized masks over the SoA columns.
            for apid in module._live_attachments.negative_apids().tolist():
                fail("refcount-balance",
                     f"{name}: apid {apid} live-attachment count "
                     f"{module._live_attachments[apid]} is negative")
            for apid, live in module._live_attachments.items():
                if live > 0 and apid not in module.grants:
                    fail("refcount-balance",
                         f"{name}: apid {apid} has {live} live attachments "
                         "but no grant")
            for key, refs in module._smartmap_refs.items():
                if refs < 0:
                    fail("refcount-balance",
                         f"{name}: SMARTMAP refcount {refs} for {key} is "
                         "negative")
            for apid in module.grants.released_apids().tolist():
                fail("refcount-balance",
                     f"{name}: apid {apid} is released but still "
                     "registered")
            local_by_segid = module.grants.counts_by_segid(owner_local_only=True)
            for segid, seg in module.segments.items():
                if seg.grants_out < 0:
                    fail("refcount-balance",
                         f"{name}: segment {segid} grants_out "
                         f"{seg.grants_out} is negative")
                elif local_by_segid.get(segid, 0) > seg.grants_out:
                    fail("refcount-balance",
                         f"{name}: segment {segid} has "
                         f"{local_by_segid[segid]} owner-local grants but "
                         f"grants_out={seg.grants_out}")

    # quiescent-only checks ----------------------------------------------------

    def _lossy_faults(self) -> bool:
        """True when an armed fault plan can drop/corrupt messages.

        Under message loss the exact grant balance is not an invariant: a
        requester whose GET response was dropped may exhaust its retry
        budget and abandon the grant the owner already counted. The
        per-module refcount checks still run; only the exact cross-module
        balance is waived.
        """
        for kernel in self.kernels:
            injector = getattr(kernel.engine, "faults", None)
            if injector is not None and injector.active and injector.affects_messages:
                return True
        return False

    def _check_quiescent(self, fail) -> None:
        # Exact cross-module grant balance: with no requests in flight,
        # a segment's grants_out equals the live grants across all
        # watched modules.
        if not self._lossy_faults():
            grants_by_segid: dict = {}
            for module in self.modules:
                for segid, count in module.grants.counts_by_segid().items():
                    grants_by_segid[segid] = grants_by_segid.get(segid, 0) + count
            for module in self.modules:
                for segid, seg in module.segments.items():
                    held = grants_by_segid.get(segid, 0)
                    if held != seg.grants_out:
                        fail("refcount-balance",
                             f"{module.enclave.name}: segment {segid} "
                             f"grants_out={seg.grants_out} but {held} live "
                             "grant(s) exist across modules")
        for channel in self.channels:
            if channel.transfers_started != channel.transfers_completed:
                fail("channel-balance",
                     f"channel {channel.name!r}: {channel.transfers_started} "
                     f"transfers started, {channel.transfers_completed} "
                     "completed")


class AuditHook:
    """Engine-observer adapter running an :class:`Auditor` on a cadence.

    Installs as ``engine.obs`` (the existing instrumentation hook point),
    optionally wrapping an inner :class:`~repro.obs.engine_hooks.
    EngineObserver` so auditing and metrics/profiling compose. Interval
    audits fire the first event at-or-after each virtual-time deadline;
    a quiescent audit (with the stricter cross-module checks) fires
    whenever the event queue drains.
    """

    def __init__(self, auditor: Auditor,
                 interval_ns: int = DEFAULT_INTERVAL_NS,
                 inner=None):
        if interval_ns <= 0:
            raise ValueError(f"interval_ns must be positive, got {interval_ns}")
        self.auditor = auditor
        self.interval_ns = interval_ns
        self.inner = inner
        self._next_deadline = interval_ns

    def run_event(self, engine, callback, args=()) -> None:
        if self.inner is not None:
            self.inner.run_event(engine, callback, args)
        else:
            callback(*args)
        if engine.now >= self._next_deadline:
            # One audit per elapsed deadline, then re-arm past `now` so a
            # long virtual jump does not trigger a backlog of audits.
            self._next_deadline = (
                engine.now - engine.now % self.interval_ns + self.interval_ns
            )
            self._audit(engine)
        if engine.queue_len == 0:
            self._audit(engine, quiescent=True)

    def _audit(self, engine, quiescent: bool = False) -> None:
        """One audit pass; a violation triggers the ambient flight
        recorder (black-box evidence survives the raise) before it
        propagates."""
        from repro.obs import context as _obs_context

        try:
            self.auditor.audit_now(now_ns=engine.now, quiescent=quiescent)
        except AuditViolation as exc:
            recorder = _obs_context.get().flightrec
            if recorder is not None:
                recorder.trigger(
                    "audit.violation", engine.now,
                    invariant=exc.invariant, detail=exc.detail,
                    quiescent=quiescent,
                )
            raise

    def on_spawn(self, engine, proc) -> None:
        if self.inner is not None:
            self.inner.on_spawn(engine, proc)

    def on_finish(self, engine, proc) -> None:
        if self.inner is not None:
            self.inner.on_finish(engine, proc)


def find_hook(engine) -> Optional[AuditHook]:
    """The :class:`AuditHook` on an engine's observer chain, if any.

    Teardown paths (enclave crash / departure) use this to deregister
    state the auditor must no longer re-derive invariants from.
    """
    hook = engine.obs
    while hook is not None:
        if isinstance(hook, AuditHook):
            return hook
        hook = getattr(hook, "inner", None)
    return None


def install(rig, interval_ns: Optional[int] = None,
            tracer=None) -> AuditHook:
    """Attach an auditing hook to a rig's engine; returns the hook.

    Wraps whatever observer the engine already has (so audits compose
    with ``obs.observing``'s engine instrumentation) and watches every
    kernel, module, and channel in the rig.
    """
    if tracer is None:
        from repro import obs

        ambient = obs.get().tracer
        tracer = ambient if getattr(ambient, "enabled", False) else None
    auditor = Auditor.for_rig(rig, tracer=tracer)
    hook = AuditHook(
        auditor,
        interval_ns=interval_ns or env_interval_ns(),
        inner=rig.engine.obs,
    )
    rig.engine.obs = hook
    return hook
