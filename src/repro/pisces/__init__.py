"""The Pisces lightweight co-kernel architecture.

Pisces (paper §4, citing [15]) decomposes a node's cores and memory
blocks into partitions managed by independent kernels: an unmodified
Linux "management" enclave plus any number of Kitten co-kernels. The
co-kernels talk to Linux through a small shared-memory region signalled
by IPIs — and, crucially for Fig. 6, *all* Linux-side IPI handling is
restricted to core 0 of the system (§5.3).
"""

from repro.pisces.pisces import PiscesManager, PartitionError
from repro.pisces.channel import PiscesChannel

__all__ = ["PiscesManager", "PiscesChannel", "PartitionError"]
