"""Node partitioning: booting Linux + Kitten co-kernel enclaves.

:class:`PiscesManager` owns a node's cores and NUMA zones and hands out
disjoint partitions: first the Linux management enclave, then any number
of Kitten co-kernels (each with its own cores and memory window, §4) and
Palacios VMs (whose RAM comes from their *host* enclave's partition).

Boot-time cost is not modeled — the paper's experiments measure steady
state — but double-assignment of a core or frame is a hard error.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.enclave.enclave import Enclave
from repro.hw.costs import PAGE_4K
from repro.hw.memory import FrameAllocator
from repro.hw.topology import NodeHardware
from repro.kernels.kitten import KittenKernel
from repro.kernels.linux import LinuxKernel
from repro.pisces.channel import PiscesChannel


class PartitionError(RuntimeError):
    """A core or memory block was assigned twice (or never existed)."""


class PiscesManager:
    """Carves one node into enclaves."""

    def __init__(self, node: NodeHardware):
        self.node = node
        self.engine = node.engine
        self.linux_enclave: Optional[Enclave] = None
        self.cokernel_enclaves: List[Enclave] = []
        self.channels: List[PiscesChannel] = []
        #: kernel -> (zone_id, FrameRange) of its carved partition, so
        #: torn-down enclaves return their memory to the node.
        self._partitions = {}

    # -- partition helpers ----------------------------------------------------------

    def _claim_cores(self, core_ids: Sequence[int]):
        cores = []
        for cid in core_ids:
            core = self.node.core(cid)
            if core.owner is not None:
                raise PartitionError(f"core {cid} already owned by {core.owner!r}")
            cores.append(core)
        return cores

    def _carve_memory(self, zone_id: int, nbytes: int):
        if nbytes <= 0 or nbytes % PAGE_4K:
            raise PartitionError(f"bad partition size {nbytes}")
        rng = self.node.memory.zone(zone_id).allocator.alloc(nbytes // PAGE_4K)
        return FrameAllocator(rng.start_pfn, rng.nframes), (zone_id, rng)

    # -- enclave construction ----------------------------------------------------------

    def boot_linux(self, core_ids: Sequence[int], mem_bytes: int,
                   zone_id: int = 0, name: str = "linux") -> Enclave:
        """Boot the native Linux management enclave (exactly one)."""
        if self.linux_enclave is not None:
            raise PartitionError("Linux management enclave already booted")
        allocator, partition = self._carve_memory(zone_id, mem_bytes)
        kernel = LinuxKernel(
            self.engine,
            self.node,
            self._claim_cores(core_ids),
            allocator,
            name=name,
        )
        self._partitions[kernel] = partition
        self.linux_enclave = Enclave(kernel, name=name)
        return self.linux_enclave

    def boot_cokernel(self, core_ids: Sequence[int], mem_bytes: int,
                      zone_id: int = 0, name: str = "",
                      ipi_target_policy: str = "core0",
                      heap_pages: Optional[int] = None) -> Enclave:
        """Boot a Kitten co-kernel enclave and link it to Linux."""
        if self.linux_enclave is None:
            raise PartitionError("boot the Linux management enclave first")
        name = name or f"kitten{len(self.cokernel_enclaves)}"
        kwargs = {} if heap_pages is None else {"heap_pages": heap_pages}
        allocator, partition = self._carve_memory(zone_id, mem_bytes)
        kernel = KittenKernel(
            self.engine,
            self.node,
            self._claim_cores(core_ids),
            allocator,
            name=name,
            **kwargs,
        )
        self._partitions[kernel] = partition
        enclave = Enclave(kernel, name=name)
        channel = PiscesChannel(
            self.linux_enclave, enclave, ipi_target_policy=ipi_target_policy
        )
        self.cokernel_enclaves.append(enclave)
        self.channels.append(channel)
        return enclave

    def boot_vm(self, host_enclave: Enclave, core_ids: Sequence[int],
                ram_bytes: int, name: str = "", memmap_backend: str = "rbtree",
                memmap_coalesce: bool = False) -> Enclave:
        """Boot a Palacios VM enclave on ``host_enclave``.

        The VM's RAM comes from the host enclave's memory partition; its
        vCPUs are fresh cores claimed from the node. Returns the guest
        enclave, linked to the host by a Palacios PCI channel.
        """
        from repro.virt.channel import PalaciosChannel
        from repro.virt.guest import GuestLinuxKernel
        from repro.virt.palacios import PalaciosVmm

        name = name or f"vm-on-{host_enclave.name}"
        vcpu_cores = self._claim_cores(core_ids)
        vmm = PalaciosVmm(
            host_enclave.kernel,
            vcpu_cores=vcpu_cores,
            ram_bytes=ram_bytes,
            name=name,
            memmap_backend=memmap_backend,
            memmap_coalesce=memmap_coalesce,
        )
        guest_kernel = GuestLinuxKernel(
            self.engine, self.node, vcpu_cores, vmm, name=f"{name}-guest"
        )
        guest_enclave = Enclave(guest_kernel, name=name)
        PalaciosChannel(host_enclave, guest_enclave, vmm)
        return guest_enclave

    def teardown_cokernel(self, enclave: Enclave) -> None:
        """Reclaim a departed co-kernel's cores and memory partition.

        The enclave must already have left the XEMEM name space (see
        :meth:`repro.enclave.topology.EnclaveSystem.shutdown_enclave`)
        and returned every frame it allocated.
        """
        if enclave not in self.cokernel_enclaves:
            raise PartitionError(f"{enclave!r} is not a co-kernel of this node")
        kernel = enclave.kernel
        if kernel.allocator.used_frames:
            raise PartitionError(
                f"enclave {enclave.name!r} still holds "
                f"{kernel.allocator.used_frames} frame(s); exit its processes first"
            )
        self._unwatch(enclave)
        for core in kernel.cores:
            core.owner = None
        zone_id, rng = self._partitions.pop(kernel)
        self.node.memory.zone(zone_id).allocator.free(rng)
        self.cokernel_enclaves.remove(enclave)

    def crash_enclave(self, enclave: Enclave, system=None,
                      notify_nameserver: bool = True) -> None:
        """Fail-stop one co-kernel enclave, as the fault injector does.

        Unlike orderly departure nothing is negotiated and no simulated
        time passes — the partition just dies. The crash path:

        1. fails every parked waiter in the enclave's XEMEM module and
           marks it crashed (late traffic is dropped, not served);
        2. severs the enclave from the topology (channels close, routes
           and stale name-server paths are purged on survivors);
        3. invalidates surviving enclaves' attachments into the dead
           partition — their PTEs are unmapped; frames are never freed by
           a foreign kernel;
        4. garbage-collects the dead enclave's segids at the name server
           (directly when ``notify_nameserver``; otherwise lease expiry
           does it once heartbeats stop);
        5. destroys the dead kernel's processes (reclaiming its frames),
           frees its cores, and returns its memory partition to the node;
        6. deregisters the dead kernel/module/channels from any armed
           invariant auditor — its state is gone, not inconsistent.
        """
        if enclave not in self.cokernel_enclaves:
            raise PartitionError(f"{enclave!r} is not a co-kernel of this node")
        kernel = enclave.kernel
        module = enclave.module
        crashed_id = enclave.enclave_id

        # Segids the dead enclave owned, snapshotted before any GC.
        dead_segids = set()
        ns_module = None
        if system is not None and system.name_server_enclave is not None:
            ns_module = system.name_server_enclave.module
        if ns_module is not None and crashed_id is not None:
            dead_segids = set(ns_module.nameserver.segids_of(crashed_id))

        from repro.obs import context as _obs_context

        recorder = _obs_context.get().flightrec
        if recorder is not None:
            # The crash is the canonical incident trigger: freeze "what
            # was in flight" into the black box before teardown erases it.
            recorder.trigger(
                "enclave.crash", self.engine.now,
                enclave=enclave.name,
                enclave_id=int(crashed_id) if crashed_id is not None else -1,
                segids_owned=len(dead_segids),
            )

        if module is not None:
            module.crash()
        if system is not None:
            system.unlink_enclave(enclave)

        # Survivors: tear down attachments into the dead partition.
        pfn_window = (
            kernel.allocator.start_pfn,
            kernel.allocator.start_pfn + kernel.allocator.nframes,
        )
        if system is not None:
            for other in system.enclaves:
                if other.module is not None:
                    other.module.invalidate_dead_segments(
                        dead_segids, pfn_window, crashed_enclave_id=crashed_id
                    )

        if notify_nameserver and ns_module is not None and crashed_id is not None:
            ns_module.nameserver.gc_enclave(crashed_id)

        self._unwatch(enclave)

        # Reclaim the partition: destroying each process frees the frames
        # it owns; foreign frames were only ever unmapped above.
        for proc in list(kernel.processes.values()):
            kernel.destroy_process(proc)
        for core in kernel.cores:
            core.owner = None
        zone_id, rng = self._partitions.pop(kernel)
        self.node.memory.zone(zone_id).allocator.free(rng)
        self.cokernel_enclaves.remove(enclave)
        for channel in [ch for ch in self.channels
                        if enclave in (ch.a, ch.b)]:
            self.channels.remove(channel)

    def _unwatch(self, enclave: Enclave) -> None:
        """Deregister a dead enclave from any armed invariant auditor."""
        from repro.obs.audit import find_hook

        hook = find_hook(self.engine)
        if hook is None:
            return
        auditor = hook.auditor
        auditor.unwatch_kernel(enclave.kernel)
        if enclave.module is not None:
            auditor.unwatch_module(enclave.module)
        for channel in list(auditor.channels):
            if enclave in (channel.a, channel.b):
                auditor.unwatch_channel(channel)

    @property
    def all_enclaves(self) -> List[Enclave]:
        """Linux management enclave plus every live co-kernel."""
        out = []
        if self.linux_enclave is not None:
            out.append(self.linux_enclave)
        out.extend(self.cokernel_enclaves)
        return out
