"""The IPI-based Pisces cross-enclave channel (paper §4.5).

A co-kernel boot carves a small shared-memory message region. To send,
the source enclave IPIs the destination's handling CPU; the destination
flags readiness; the source copies the message in chunks through the
region; the destination copies it out. PFN lists larger than the region
stream through it chunk by chunk, one IPI round per chunk.

Two behaviours the evaluation hinges on:

* **Core-0 restriction** — every chunk headed *into* the Linux
  management enclave is handled on node core 0 regardless of which
  process the message is for, so concurrent enclaves queue there
  (§5.3). The handler occupancy is real: it holds core 0's resource.
* **Multi-enclave handling penalty** — once two or more co-kernels share
  the core-0 handler, per-page marshalling picks up
  ``multi_enclave_channel_penalty_per_page_ns`` (cache-cold dispatch +
  contended Linux map structures). This models the measured 1→2 enclave
  plateau in Fig. 6; ablation B zeroes it (the paper's proposed
  distributed IPI routing).
"""

from __future__ import annotations

from repro import obs
from repro.enclave.enclave import Channel, Enclave, KernelMessage
from repro.hw.interrupts import IpiVector
from repro.sim.fastpath import FASTPATH


class PiscesChannel(Channel):
    """Linux management enclave <-> one Kitten co-kernel."""

    def __init__(self, linux_enclave: Enclave, cokernel_enclave: Enclave,
                 name: str = "", ipi_target_policy: str = "core0"):
        super().__init__(linux_enclave, cokernel_enclave, name=name)
        if ipi_target_policy not in ("core0", "distributed"):
            raise ValueError(f"unknown IPI target policy {ipi_target_policy!r}")
        self.linux_enclave = linux_enclave
        self.cokernel_enclave = cokernel_enclave
        self.ipi_target_policy = ipi_target_policy
        node = linux_enclave.kernel.node
        self.node = node
        self.costs = node.costs
        # Vector into Linux: core 0 of the node (the §5.3 restriction),
        # or the co-kernel's paired service core under ablation B.
        # A stable (non-salted) hash keeps core assignment deterministic.
        spread = sum(cokernel_enclave.name.encode())
        linux_core = (
            0
            if ipi_target_policy == "core0"
            else linux_enclave.kernel.cores[
                spread % len(linux_enclave.kernel.cores)
            ].core_id
        )
        self._to_linux_vec = node.intc.allocate_vector(linux_core)
        self._to_cokernel_vec = node.intc.allocate_vector(
            cokernel_enclave.kernel.service_core.core_id
        )
        node.intc.register(self._to_linux_vec, self._chunk_handler)
        node.intc.register(self._to_cokernel_vec, self._chunk_handler)
        #: Plain-int transfer accounting (always on, deterministic) —
        #: the invariant auditor checks started == completed at shutdown.
        self.transfers_started = 0
        self.transfers_completed = 0

    @property
    def linux_handling_core_id(self) -> int:
        """The node core that handles this channel's Linux-side IPIs."""
        return self._to_linux_vec.core_id

    def _chunk_handler(self, payload):
        """Destination-side per-chunk work: flag + copy-out occupancy."""
        occupancy = payload
        yield self.a.engine.sleep(occupancy)

    def _multi_cokernel(self) -> bool:
        if self.system is None:
            return False
        return self.system.cokernel_count >= 2

    def _transfer(self, src: Enclave, dst: Enclave, msg: KernelMessage):
        engine = src.engine
        costs = self.costs
        vec: IpiVector = (
            self._to_linux_vec if dst is self.linux_enclave else self._to_cokernel_vec
        )
        npfns = msg.npfns
        # The penalty models contended *Linux-side* dispatch on core 0; it
        # applies only to PFN lists marshalled into the management enclave,
        # not to traffic flowing out to a co-kernel.
        penalty = (
            costs.multi_enclave_channel_penalty_per_page_ns
            if dst is self.linux_enclave
            and self._multi_cokernel()
            and self.ipi_target_policy == "core0"
            else 0
        )
        chunks = costs.pfn_list_chunks(npfns) if npfns else 1
        # Marshalling time is closed-form (identical under fast and slow
        # IPI paths); exporting it as a span attribute lets the analysis
        # layer split the transfer span into channel-copy vs. IPI time.
        marshal_ns = npfns * (costs.channel_per_pfn_ns + penalty)
        self.transfers_started += 1
        o = obs.get()
        # Journey tag: requests carry req_id, responses reply_to — either
        # way the transfer belongs to that request's journey.
        rid = msg.payload.get("req_id") or msg.payload.get("reply_to")
        with o.span("pisces.transfer", engine, track=self.name,
                    kind=msg.kind, npfns=npfns, chunks=chunks,
                    marshal_ns=marshal_ns,
                    **({"req_id": rid} if rid else {})):
            # Per-PFN marshalling through the shared region (source side).
            yield engine.sleep(marshal_ns)
            # One IPI round per chunk; the handler occupies the target core.
            intc = self.node.intc
            core = self.node.core(vec.core_id)
            faults = engine.faults
            if (
                FASTPATH.ipi_batching
                and chunks > 1
                and core.resource.in_use == 0
                and core.resource.queue_depth == 0
                and intc.vectors_on_core(vec.core_id) == 1
                and (faults is None or not faults.affects_ipi)
            ):
                # Uncontended target core with no other channel bound to
                # it: the per-chunk rounds are identical back-to-back, so
                # reserve the core once, closed form (§5.3 queueing only
                # arises under contention, which the guards exclude).
                yield from intc.send_ipi_burst(
                    vec, chunks, costs.ipi_handler_core0_ns
                )
                o.counter("fastpath.ipi.batched_rounds").inc(chunks)
            else:
                for _ in range(chunks):
                    yield from intc.send_ipi(vec, costs.ipi_handler_core0_ns)
        self.transfers_completed += 1
        o.counter("pisces.channel.msgs").inc()
        o.counter("pisces.channel.pfns").inc(npfns)
        o.counter("pisces.channel.bytes").inc(npfns * 8)
        o.counter("pisces.channel.ipi_rounds").inc(chunks)
        return msg
