"""Enclave and kernel-message channel abstractions.

A :class:`Channel` is a point-to-point kernel-level message link between
two enclaves (paper §4.5). Sends are one-way: the generator completes
when the message (including any PFN-list payload) has crossed the link
and been handed to the receiving enclave's registered receiver, which
processes it asynchronously. Request/response correlation is the XEMEM
protocol layer's job, not the channel's.

Channels that cross a VM boundary translate PFN lists in flight (host
PFNs become freshly mapped guest PFNs and vice versa) — see
:class:`repro.virt.channel.PalaciosChannel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro import obs


@dataclass
class KernelMessage:
    """One cross-enclave kernel message.

    ``payload`` carries command fields; ``pfns`` is the optional PFN-list
    component (only ``xpmem_attach`` responses have one, §4.5). PFNs are
    always expressed in the *receiving* enclave's physical namespace by
    the time the message is delivered.
    """

    kind: str
    payload: dict = field(default_factory=dict)
    pfns: Optional[np.ndarray] = None

    @property
    def npfns(self) -> int:
        """Length of the PFN-list payload (0 when absent)."""
        return 0 if self.pfns is None else len(self.pfns)


class Enclave:
    """One isolated OS/R partition."""

    def __init__(self, kernel, name: str = ""):
        self.kernel = kernel
        kernel.enclave = self
        self.name = name or kernel.name
        #: Assigned by the name server during discovery (§3.2); the name
        #: server's own enclave is 0.
        self.enclave_id: Optional[int] = None
        self.channels: List[Channel] = []
        #: The XEMEM module instance (set by repro.xemem.module).
        self.module = None
        #: Message receiver: callable(msg, channel) -> None (non-blocking).
        self._receiver: Optional[Callable] = None

    @property
    def engine(self):
        """The simulation engine this enclave runs on."""
        return self.kernel.engine

    def add_channel(self, channel: "Channel") -> None:
        """Register a channel endpoint on this enclave (idempotent)."""
        if channel not in self.channels:
            self.channels.append(channel)

    def set_receiver(self, receiver: Callable) -> None:
        """Install the kernel-message receiver (the XEMEM module's)."""
        self._receiver = receiver

    def receive(self, msg: KernelMessage, channel: "Channel") -> None:
        """Hand a delivered message to the registered receiver."""
        if self._receiver is None:
            raise RuntimeError(f"enclave {self.name!r} has no message receiver")
        self._receiver(msg, channel)

    def __repr__(self) -> str:
        return f"Enclave({self.name!r}, id={self.enclave_id})"


class ChannelClosedError(RuntimeError):
    """Send on a channel whose endpoint enclave has departed."""


class Channel:
    """Abstract point-to-point kernel message link."""

    def __init__(self, a: Enclave, b: Enclave, name: str = ""):
        if a is b:
            raise ValueError("channel endpoints must differ")
        self.a = a
        self.b = b
        self.name = name or f"{a.name}<->{b.name}"
        #: Set when the channel is registered with an EnclaveSystem.
        self.system = None
        self.closed = False
        self.messages_sent = 0
        self.pfns_carried = 0
        a.add_channel(self)
        b.add_channel(self)

    def close(self) -> None:
        """Mark the channel closed; future sends raise."""
        self.closed = True

    def other(self, enclave: Enclave) -> Enclave:
        """The opposite endpoint from ``enclave``."""
        if enclave is self.a:
            return self.b
        if enclave is self.b:
            return self.a
        raise ValueError(f"{enclave!r} is not an endpoint of {self.name!r}")

    def send(self, src: Enclave, msg: KernelMessage):
        """Generator: move ``msg`` from ``src`` to the other endpoint.

        Subclasses implement :meth:`_transfer`, which pays the link's
        costs and may rewrite the PFN list into the receiver's namespace.

        When a fault plan is armed on the engine (see :mod:`repro.faults`)
        each delivery may be dropped, duplicated, delayed, or corrupted
        (corruption is modeled as a receiver-side checksum discard: the
        full transfer cost is paid, then the message is thrown away).
        The wire cost is always paid — faults act on *delivery*.
        """
        if self.closed:
            raise ChannelClosedError(f"channel {self.name!r} is closed")
        dst = self.other(src)
        faults = src.engine.faults
        verdict = "deliver"
        delay_ns = 0
        if faults is not None and faults.affects_messages:
            verdict, delay_ns = faults.message_verdict(self, msg)
        msg = yield from self._transfer(src, dst, msg)
        self.messages_sent += 1
        self.pfns_carried += msg.npfns
        o = obs.get()
        o.counter("channel.msgs").inc()
        if msg.npfns:
            o.counter("channel.pfns").inc(msg.npfns)
        if self.system is not None and self.system.trace.enabled:
            self.system.trace.record(
                src.engine.now,
                "msg",
                command=msg.kind,
                hop=f"{src.name}->{dst.name}",
                src=msg.payload.get("src"),
                dst=msg.payload.get("dst"),
                npfns=msg.npfns,
            )
        if verdict == "drop":
            o.counter("faults.msgs.dropped").inc()
            return
        if verdict == "corrupt":
            o.counter("faults.msgs.corrupted").inc()
            return
        if verdict == "delay":
            o.counter("faults.msgs.delayed").inc()
            yield src.engine.sleep(delay_ns)
        dst.receive(msg, self)
        if verdict == "dup":
            # The duplicate gets its own payload dict so the two handler
            # generators cannot alias each other's routing rewrites.
            o.counter("faults.msgs.duplicated").inc()
            dst.receive(
                KernelMessage(kind=msg.kind, payload=dict(msg.payload),
                              pfns=msg.pfns),
                self,
            )

    def _transfer(self, src: Enclave, dst: Enclave, msg: KernelMessage):
        raise NotImplementedError
        yield  # pragma: no cover
