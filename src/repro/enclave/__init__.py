"""Enclaves and enclave topologies.

An *enclave* (paper §1) is an isolated partition of hardware plus the
system software stack managing it — here, one kernel model plus the
cross-enclave channels Pisces or Palacios gave it. The *topology* (§3.2)
is the graph of enclaves and channels, organized hierarchically around
the enclave hosting the XEMEM name server; :class:`EnclaveSystem` runs
the discovery protocol that assigns enclave IDs and builds each enclave's
routing map.
"""

from repro.enclave.enclave import Enclave, Channel, KernelMessage
from repro.enclave.topology import EnclaveSystem, DiscoveryError

__all__ = [
    "Enclave",
    "Channel",
    "KernelMessage",
    "EnclaveSystem",
    "DiscoveryError",
]
