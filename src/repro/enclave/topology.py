"""The enclave system: registry, hierarchy, and discovery driver.

:class:`EnclaveSystem` collects a node's enclaves and channels into the
*enclave topology* of paper §3.2 — a hierarchy rooted (logically) at the
enclave hosting the name server. The actual discovery message protocol
(broadcast for the name-server path, enclave-ID allocation, routing-map
construction) lives in :mod:`repro.xemem.routing`; the system object just
drives it and validates the result.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.enclave.enclave import Channel, Enclave


class DiscoveryError(RuntimeError):
    """Discovery could not complete (disconnected topology, no name server)."""


class EnclaveSystem:
    """All enclaves and channels on one node."""

    def __init__(self, node):
        from repro.sim.record import TraceRecorder

        self.node = node
        self.engine = node.engine
        self.enclaves: List[Enclave] = []
        self.channels: List[Channel] = []
        self.name_server_enclave: Optional[Enclave] = None
        #: Optional protocol trace: enable to record every cross-enclave
        #: message hop (kind, hop, envelope, PFN count) with timestamps.
        self.trace = TraceRecorder(enabled=False)

    def add_enclave(self, enclave: Enclave) -> None:
        """Register an enclave (and its channels) with the system."""
        if enclave in self.enclaves:
            return
        self.enclaves.append(enclave)
        for channel in enclave.channels:
            if channel not in self.channels:
                self.channels.append(channel)
            channel.system = self

    def add_all(self, enclaves) -> None:
        """Register several enclaves."""
        for enclave in enclaves:
            self.add_enclave(enclave)

    def designate_name_server(self, enclave: Enclave) -> None:
        """The name server "can be deployed in any enclave" (§3.2)."""
        if enclave not in self.enclaves:
            raise DiscoveryError(f"{enclave!r} not part of this system")
        self.name_server_enclave = enclave

    @property
    def cokernel_count(self) -> int:
        """Number of Kitten co-kernel enclaves in the system."""
        return sum(1 for e in self.enclaves if e.kernel.kernel_type == "kitten")

    def enclave_by_id(self, enclave_id: int) -> Enclave:
        """Look an enclave up by its discovery-assigned ID."""
        for enclave in self.enclaves:
            if enclave.enclave_id == enclave_id:
                return enclave
        raise KeyError(f"no enclave with id {enclave_id}")

    def neighbors(self, enclave: Enclave) -> List[Enclave]:
        """Enclaves one channel hop away."""
        return [ch.other(enclave) for ch in enclave.channels]

    def validate_connected(self) -> None:
        """Every enclave must reach the name server through channels."""
        if self.name_server_enclave is None:
            raise DiscoveryError("no name server designated")
        # Reachability keyed by enclave name (stable across host
        # processes), not id(); enclave names are unique per system.
        seen = {self.name_server_enclave.name}
        frontier = [self.name_server_enclave]
        while frontier:
            cur = frontier.pop()
            for nxt in self.neighbors(cur):
                if nxt.name not in seen:
                    seen.add(nxt.name)
                    frontier.append(nxt)
        unreachable = [e.name for e in self.enclaves if e.name not in seen]
        if unreachable:
            raise DiscoveryError(
                f"enclaves cannot reach the name server: {unreachable}"
            )

    # -- dynamic partitioning (paper §3.2: topologies "are likely to be
    # dynamic and will change in response to the node's workload") --------

    def add_and_discover(self, enclave: Enclave) -> int:
        """Hot-add one enclave after initial discovery.

        The enclave must already have a channel to some discovered
        enclave and an XEMEM module installed; it runs the §3.2
        discovery exchange alone and returns its new enclave ID.
        """
        self.add_enclave(enclave)
        if enclave.module is None:
            raise DiscoveryError(f"enclave {enclave.name!r} has no XEMEM module")
        if enclave.enclave_id is not None:
            raise DiscoveryError(f"enclave {enclave.name!r} already discovered")
        if not any(ch.other(enclave).enclave_id is not None for ch in enclave.channels):
            raise DiscoveryError(
                f"enclave {enclave.name!r} has no channel to a discovered enclave"
            )
        return self.engine.run_process(
            enclave.module.discover(), name=f"hot-discover:{enclave.name}"
        )

    def shutdown_enclave(self, enclave: Enclave, force: bool = False) -> None:
        """Remove one leaf enclave from the system.

        Runs the XEMEM departure protocol (name server retires the
        enclave's segids), then closes its channels and purges every
        routing entry that pointed at them. Enclaves that other enclaves
        route *through* cannot depart; neither can the name server.
        """
        if enclave not in self.enclaves:
            raise DiscoveryError(f"{enclave!r} not part of this system")
        if enclave is self.name_server_enclave:
            raise DiscoveryError("the name-server enclave cannot depart")
        # leaf check: nobody's route may pass through a channel of this
        # enclave unless the route's destination IS this enclave
        for other in self.enclaves:
            if other is enclave or other.module is None:
                continue
            for dst, channel in other.module.routing.routes.items():
                if channel in enclave.channels and dst != enclave.enclave_id:
                    raise DiscoveryError(
                        f"enclave {enclave.name!r} is on the route from "
                        f"{other.name!r} to enclave {dst}; not a leaf"
                    )
        self.engine.run_process(
            enclave.module.shutdown(force=force), name=f"depart:{enclave.name}"
        )
        self.unlink_enclave(enclave)

    def unlink_enclave(self, enclave: Enclave) -> None:
        """Sever one enclave from the topology: close its channels, purge
        every surviving routing entry that pointed at them or at its ID,
        and drop it from the registry. Used by orderly departure (after
        the protocol ran) and by the crash path (no protocol at all)."""
        for channel in list(enclave.channels):
            channel.close()
            peer = channel.other(enclave)
            if channel in peer.channels:
                peer.channels.remove(channel)
            if peer.module is not None:
                routing = peer.module.routing
                routes = routing.routes
                for dst in [d for d, ch in routes.items() if ch is channel]:
                    del routes[dst]
                if routing.ns_channel is channel:
                    routing.ns_channel = None
            if channel in self.channels:
                self.channels.remove(channel)
        # purge stale routes toward the departed ID everywhere (upstream
        # enclaves route to it via channels that themselves survive)
        for other in self.enclaves:
            if other.module is not None:
                other.module.routing.routes.pop(enclave.enclave_id, None)
        if enclave in self.enclaves:
            self.enclaves.remove(enclave)

    def run_discovery(self) -> Dict[str, int]:
        """Run the §3.2 discovery protocol; returns name -> enclave id.

        Delegates to the XEMEM modules (every enclave must have one).
        """
        from repro.xemem.routing import run_discovery

        self.validate_connected()
        for enclave in self.enclaves:
            if enclave.module is None:
                raise DiscoveryError(f"enclave {enclave.name!r} has no XEMEM module")
        return run_discovery(self)

    def describe(self) -> List[dict]:
        """Structured snapshot of the topology (one dict per enclave):
        id, name, kernel type, virtualization, name-server hop, routes,
        core ids, and partition size. Examples and operators use this
        instead of poking module internals."""
        out = []
        for enclave in self.enclaves:
            module = enclave.module
            routing = module.routing if module else None
            ns_via = None
            routes = {}
            if routing is not None:
                ns_via = (
                    "local"
                    if routing.ns_channel is None
                    else routing.ns_channel.other(enclave).name
                )
                routes = {
                    eid: ch.other(enclave).name
                    for eid, ch in sorted(routing.routes.items())
                }
            kernel = enclave.kernel
            out.append(
                {
                    "id": enclave.enclave_id,
                    "name": enclave.name,
                    "kernel": kernel.kernel_type,
                    "virtualized": bool(getattr(kernel, "virtualized", False)),
                    "name_server_via": ns_via,
                    "routes": routes,
                    "cores": [c.core_id for c in kernel.cores],
                    "frames": kernel.allocator.nframes,
                    "is_name_server": enclave is self.name_server_enclave,
                }
            )
        return out

    def __repr__(self) -> str:
        return (
            f"EnclaveSystem({[e.name for e in self.enclaves]}, "
            f"ns={getattr(self.name_server_enclave, 'name', None)!r})"
        )
