"""The Palacios VMM: VM construction and XEMEM memory translations.

Implements both Fig. 4 flows:

* :meth:`PalaciosVmm.map_host_pfns_into_guest` — **guest attaches to host
  enclave memory** (Fig. 4(a)): allocate fresh guest-physical space equal
  to the shared region, update the memory map to point it at the host
  frame list (one entry per contiguous host run — the RB-tree growth the
  paper measures), copy the new guest PFNs through the PCI device, and
  inject the vIRQ.
* :meth:`PalaciosVmm.translate_guest_pfns` — **host attaches to guest
  enclave memory** (Fig. 4(b)): walk the memory map for each guest page
  and emit the host frame list. Cheap, because VM RAM is a few large
  entries and the last-entry cache absorbs sequential walks.

VM RAM is allocated from the host enclave's partition in large physically
contiguous blocks ("Palacios is usually configured to manage large blocks
of physically contiguous memory"), so the boot-time memory map is small.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.hw.costs import MB, PAGE_4K
from repro.hw.memory import FrameRange
from repro.kernels.base import KernelBase
from repro.virt.memmap import VmmMemoryMap
from repro.virt.pci import XememPciDevice


class PalaciosVmm:
    """One VM instance: memory map, PCI device, vCPU pinning."""

    def __init__(
        self,
        host_kernel: KernelBase,
        vcpu_cores: List,
        ram_bytes: int,
        name: str = "vm",
        ram_block_bytes: int = 128 * MB,
        memmap_backend: str = "rbtree",
        memmap_coalesce: bool = False,
    ):
        if ram_bytes <= 0 or ram_bytes % PAGE_4K:
            raise ValueError(f"bad VM RAM size {ram_bytes}")
        if not vcpu_cores:
            raise ValueError("VM needs at least one vCPU core")
        self.host_kernel = host_kernel
        self.engine = host_kernel.engine
        self.costs = host_kernel.costs
        self.name = name
        self.vcpu_cores = vcpu_cores
        self.memmap = VmmMemoryMap(
            self.costs, backend=memmap_backend, coalesce=memmap_coalesce
        )
        self.ram_frames = ram_bytes // PAGE_4K
        self._ram_blocks: List[FrameRange] = []
        self._build_ram(ram_block_bytes)
        #: Fresh GPA space for XEMEM attachments starts above RAM.
        self._gpa_cursor = self.ram_frames
        self.pci = XememPciDevice(
            self.engine,
            self.costs,
            host_core=host_kernel.service_core,
            guest_core=vcpu_cores[0],
            name=f"{name}.xemem-pci",
        )
        #: Work spent on memory-map inserts per attach (Table 2 accounting).
        self.insert_work_log: List[int] = []

    def _build_ram(self, block_bytes: int) -> None:
        block_frames = max(1, block_bytes // PAGE_4K)
        gpa = 0
        remaining = self.ram_frames
        while remaining > 0:
            take = min(block_frames, remaining)
            rng = self.host_kernel.allocator.alloc(take)
            self._ram_blocks.append(rng)
            # RAM blocks are single entries regardless of policy: Palacios
            # builds them as whole contiguous regions at VM boot.
            self.memmap.insert_mapping(gpa, rng.pfns(), coalesce=True)
            gpa += take
            remaining -= take

    @property
    def boot_map_entries(self) -> int:
        """Memory-map entries from VM RAM construction alone."""
        return len(self._ram_blocks)

    # -- Fig. 4(a): guest attachment to host enclave memory ------------------------

    def alloc_guest_pfns(self, npages: int) -> np.ndarray:
        """Allocate a completely new guest-physical region (never RAM)."""
        if npages <= 0:
            raise ValueError(f"bad gpa allocation {npages}")
        start = self._gpa_cursor
        self._gpa_cursor += npages
        return np.arange(start, start + npages, dtype=np.int64)

    def map_host_pfns_into_guest(self, hpa_pfns: np.ndarray):
        """Generator: returns the new guest PFN list for ``hpa_pfns``.

        Simulated time covers the memory-map update (real tree work); the
        caller then pushes the guest PFNs through :attr:`pci` to notify
        the guest. Runs on the VMM's host-side core.
        """
        hpa_pfns = np.asarray(hpa_pfns, dtype=np.int64)
        gpa_pfns = self.alloc_guest_pfns(len(hpa_pfns))
        insert_ns = None

        def work():
            nonlocal insert_ns
            insert_ns = self.memmap.insert_mapping(int(gpa_pfns[0]), hpa_pfns)
            yield self.engine.sleep(insert_ns)

        core = self.host_kernel.service_core
        yield core.resource.acquire()
        start = self.engine.now
        try:
            yield from work()
        finally:
            core.resource.release()
            core.log_steal(start, self.engine.now - start, f"{self.name}:memmap-insert")
        self.insert_work_log.append(insert_ns)
        return gpa_pfns

    def unmap_guest_attachment(self, gpa_pfns: np.ndarray):
        """Generator: drop the memory-map entries of a guest attachment."""
        gpa_pfns = np.asarray(gpa_pfns, dtype=np.int64)
        work_ns = self.memmap.remove_mapping(int(gpa_pfns[0]), len(gpa_pfns))
        yield self.engine.sleep(work_ns)

    # -- Fig. 4(b): host attachment to guest enclave memory -------------------------

    def translate_guest_pfns(self, gpa_pfns: np.ndarray):
        """Generator: walk the memory map, return the host PFN list."""
        gpa_pfns = np.asarray(gpa_pfns, dtype=np.int64)
        hpa = self.memmap.translate_array(gpa_pfns)
        yield self.engine.sleep(self.memmap.last_op_work_ns)
        return hpa

    def __repr__(self) -> str:
        return (
            f"PalaciosVmm({self.name!r}, ram={self.ram_frames * PAGE_4K // MB}MB, "
            f"map_entries={self.memmap.num_entries}, "
            f"backend={self.memmap.backend.name})"
        )
