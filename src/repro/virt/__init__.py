"""The Palacios lightweight virtual machine monitor.

The pieces the paper's §4.4 describes:

* :mod:`repro.virt.rbtree` — a real red–black tree. Palacios stores the
  guest-physical→host-physical memory map in one; XEMEM guest attachments
  insert one entry per (non-contiguous) host frame, and the O(log n)
  insert/rebalance work is exactly the 3× slowdown of Table 2.
* :mod:`repro.virt.radixmap` — the radix-tree alternative the paper
  proposes as future work (ablation A).
* :mod:`repro.virt.memmap` — the memory map proper, over either backend,
  with the last-entry lookup cache that makes guest-*export* translations
  cheap (Table 2, bottom row).
* :mod:`repro.virt.pci` — the virtual PCI device: command header, PFN-list
  window, virtual IRQs into the guest, hypercalls into the host.
* :mod:`repro.virt.palacios` — the VMM: VM RAM construction, the Fig. 4(a)
  guest-attach and Fig. 4(b) guest-export translation flows.
* :mod:`repro.virt.guest` — the guest Linux kernel, running over
  guest-physical frames that resolve through the memory map to real host
  frames (so guest shared memory is still genuinely zero-copy).
"""

from repro.virt.rbtree import RedBlackTree
from repro.virt.radixmap import RadixMap
from repro.virt.memmap import VmmMemoryMap, MapEntry
from repro.virt.pci import XememPciDevice
from repro.virt.palacios import PalaciosVmm
from repro.virt.guest import GuestLinuxKernel, GuestPhysicalMemory

__all__ = [
    "RedBlackTree",
    "RadixMap",
    "VmmMemoryMap",
    "MapEntry",
    "XememPciDevice",
    "PalaciosVmm",
    "GuestLinuxKernel",
    "GuestPhysicalMemory",
]
