"""The virtual PCI device carrying XEMEM traffic across the VM boundary.

Paper §4.4/§4.5: the device exposes a command header and a PFN-list
window. Host→guest notifications are virtual IRQs injected into the
guest; guest→host notifications are hypercalls (VM exits). Commands
without PFN lists (everything but attach) skip the list copy.

Each direction has a registered handler — the XEMEM module of the
receiving side. Handlers are generator factories ``handler(msg, pfns)``
run on the receiving side's service core.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.sim.engine import Engine
from repro.sim.resources import Mutex


class XememPciDevice:
    """One VM's XEMEM device: two doorbells around a shared window."""

    def __init__(self, engine: Engine, costs, host_core, guest_core, name: str = "xemem-pci"):
        self.engine = engine
        self.costs = costs
        self.host_core = host_core
        self.guest_core = guest_core
        self.name = name
        self._guest_handler: Optional[Callable] = None
        self._host_handler: Optional[Callable] = None
        # One outstanding command per direction; the window is shared.
        self._window = Mutex(engine, name=f"{name}.window")
        self.virqs_raised = 0
        self.hypercalls = 0

    def register_guest_handler(self, handler: Callable) -> None:
        """Handler run *in the guest* when the host raises the vIRQ."""
        self._guest_handler = handler

    def register_host_handler(self, handler: Callable) -> None:
        """Handler run *in the host* when the guest issues the hypercall."""
        self._host_handler = handler

    def _copy_cost(self, pfns: Optional[np.ndarray]) -> int:
        return 0 if pfns is None else len(pfns) * self.costs.pci_copy_per_pfn_ns

    def host_to_guest(self, msg, pfns: Optional[np.ndarray] = None):
        """Generator: deliver a command (plus optional PFN list) to the guest.

        Copies the list into the device window, injects the vIRQ, and runs
        the guest handler on the guest's vCPU core; completes when the
        handler returns. The handler's value is this generator's value.
        """
        if self._guest_handler is None:
            raise RuntimeError(f"{self.name}: no guest handler registered")
        yield self._window.acquire()
        try:
            # writer copies the list into the device window; the guest
            # handler reads it in place (no second copy)
            yield self.engine.sleep(self._copy_cost(pfns))
            self.virqs_raised += 1
            yield self.engine.sleep(self.costs.virq_inject_ns)
            result = yield from self._run_on(self.guest_core, self._guest_handler, msg, pfns, "virq")
        finally:
            self._window.release()
        return result

    def guest_to_host(self, msg, pfns: Optional[np.ndarray] = None):
        """Generator: deliver a command from the guest to the host VMM."""
        if self._host_handler is None:
            raise RuntimeError(f"{self.name}: no host handler registered")
        yield self._window.acquire()
        try:
            yield self.engine.sleep(self._copy_cost(pfns))
            self.hypercalls += 1
            yield self.engine.sleep(self.costs.hypercall_ns)
            result = yield from self._run_on(self.host_core, self._host_handler, msg, pfns, "hypercall")
        finally:
            self._window.release()
        return result

    def _run_on(self, core, handler, msg, pfns, tag: str):
        yield core.resource.acquire()
        start = self.engine.now
        try:
            result = yield from handler(msg, pfns)
        finally:
            core.resource.release()
            core.log_steal(start, self.engine.now - start, f"{self.name}:{tag}")
        return result
