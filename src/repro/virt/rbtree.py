"""A real red–black tree with work accounting.

Palacios keeps the guest memory map as an RB tree of physically contiguous
regions (paper §4.4). The cost the paper measures — "as the tree continues
to grow, the cost for insertions and re-balancing operations increases" —
is reproduced here by counting *node visits*: every node touched during
descent, rotation, or fixup increments :attr:`RedBlackTree.visits`. The
memory map converts visits to nanoseconds via
:attr:`~repro.hw.costs.CostModel.rb_node_visit_ns`.

The implementation is a textbook CLRS red–black tree with parent pointers
and a nil sentinel; :meth:`validate` checks all five invariants and is
exercised by property-based tests.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

RED = True
BLACK = False


class _Node:
    __slots__ = ("key", "value", "left", "right", "parent", "color")

    def __init__(self, key, value, nil):
        self.key = key
        self.value = value
        self.left = nil
        self.right = nil
        self.parent = nil
        self.color = RED


class RedBlackTree:
    """Ordered map keyed by integers, with floor search and visit counting."""

    def __init__(self) -> None:
        self.nil = _Node(None, None, None)
        self.nil.color = BLACK
        self.nil.left = self.nil.right = self.nil.parent = self.nil
        self.root = self.nil
        self.size = 0
        #: Total nodes touched across all operations (cost accounting).
        self.visits = 0

    # -- rotations -------------------------------------------------------------

    def _rotate_left(self, x: _Node) -> None:
        self.visits += 2
        y = x.right
        x.right = y.left
        if y.left is not self.nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self.nil:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x: _Node) -> None:
        self.visits += 2
        y = x.left
        x.left = y.right
        if y.right is not self.nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self.nil:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    # -- insert ----------------------------------------------------------------

    def insert(self, key: int, value: Any) -> None:
        """Insert a new key. Raises on duplicates (regions never alias)."""
        parent = self.nil
        cur = self.root
        while cur is not self.nil:
            self.visits += 1
            parent = cur
            if key < cur.key:
                cur = cur.left
            elif key > cur.key:
                cur = cur.right
            else:
                raise KeyError(f"duplicate key {key}")
        self.visits += 1  # the write of the new node itself
        node = _Node(key, value, self.nil)
        node.parent = parent
        if parent is self.nil:
            self.root = node
        elif key < parent.key:
            parent.left = node
        else:
            parent.right = node
        self.size += 1
        self._insert_fixup(node)

    def _insert_fixup(self, z: _Node) -> None:
        while z.parent.color is RED:
            self.visits += 1
            gp = z.parent.parent
            if z.parent is gp.left:
                uncle = gp.right
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    gp.color = RED
                    self._rotate_right(gp)
            else:
                uncle = gp.left
                if uncle.color is RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    gp.color = RED
                    z = gp
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    gp.color = RED
                    self._rotate_left(gp)
        self.root.color = BLACK

    # -- search ------------------------------------------------------------------

    def _find(self, key: int) -> _Node:
        cur = self.root
        while cur is not self.nil:
            self.visits += 1
            if key < cur.key:
                cur = cur.left
            elif key > cur.key:
                cur = cur.right
            else:
                return cur
        return self.nil

    def get(self, key: int) -> Any:
        """Value stored at ``key``; raises KeyError when absent."""
        node = self._find(key)
        if node is self.nil:
            raise KeyError(key)
        return node.value

    def __contains__(self, key: int) -> bool:
        return self._find(key) is not self.nil

    def floor(self, key: int) -> Optional[Tuple[int, Any]]:
        """Largest (key, value) with key <= the query — interval lookup."""
        best: Optional[_Node] = None
        cur = self.root
        while cur is not self.nil:
            self.visits += 1
            if cur.key == key:
                return cur.key, cur.value
            if cur.key < key:
                best = cur
                cur = cur.right
            else:
                cur = cur.left
        return (best.key, best.value) if best is not None else None

    def min_key(self) -> Optional[int]:
        """Smallest key, or None when empty."""
        if self.root is self.nil:
            return None
        cur = self.root
        while cur.left is not self.nil:
            self.visits += 1
            cur = cur.left
        return cur.key

    # -- delete --------------------------------------------------------------------

    def delete(self, key: int) -> Any:
        """Remove ``key``; returns its value (CLRS delete + fixup)."""
        z = self._find(key)
        if z is self.nil:
            raise KeyError(key)
        value = z.value
        y = z
        y_color = y.color
        if z.left is self.nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is self.nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = z.right
            while y.left is not self.nil:
                self.visits += 1
                y = y.left
            y_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        self.size -= 1
        if y_color is BLACK:
            self._delete_fixup(x)
        return value

    def _transplant(self, u: _Node, v: _Node) -> None:
        self.visits += 1
        if u.parent is self.nil:
            self.root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _delete_fixup(self, x: _Node) -> None:
        while x is not self.root and x.color is BLACK:
            self.visits += 1
            if x is x.parent.left:
                w = x.parent.right
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color is BLACK and w.right.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color is BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self.root
            else:
                w = x.parent.left
                if w.color is RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color is BLACK and w.left.color is BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color is BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self.root
        x.color = BLACK

    # -- iteration / validation ---------------------------------------------------------

    def items(self) -> Iterator[Tuple[int, Any]]:
        """In-order (sorted) iteration; does not count visits."""
        stack: List[_Node] = []
        cur = self.root
        while stack or cur is not self.nil:
            while cur is not self.nil:
                stack.append(cur)
                cur = cur.left
            cur = stack.pop()
            yield cur.key, cur.value
            cur = cur.right

    def keys(self) -> List[int]:
        """All keys in ascending order."""
        return [k for k, _v in self.items()]

    def validate(self) -> None:
        """Assert all red–black invariants; raises AssertionError on breakage."""
        assert self.root.color is BLACK, "root must be black"
        assert self.nil.color is BLACK, "nil must be black"

        def check(node: _Node) -> int:
            if node is self.nil:
                return 1
            if node.color is RED:
                assert node.left.color is BLACK and node.right.color is BLACK, (
                    "red node with red child"
                )
            if node.left is not self.nil:
                assert node.left.key < node.key, "BST order violated (left)"
                assert node.left.parent is node, "broken parent link (left)"
            if node.right is not self.nil:
                assert node.right.key > node.key, "BST order violated (right)"
                assert node.right.parent is node, "broken parent link (right)"
            lh = check(node.left)
            rh = check(node.right)
            assert lh == rh, "black-height mismatch"
            return lh + (0 if node.color is RED else 1)

        check(self.root)
        assert self.size == sum(1 for _ in self.items()), "size mismatch"

    def __len__(self) -> int:
        return self.size
