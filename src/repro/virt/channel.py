"""The Palacios host/guest channel (paper §4.4–4.5).

Wraps the virtual PCI device as an enclave :class:`Channel`. The defining
behaviour: PFN lists are rewritten at the VM boundary, in flight —

* **host → guest** (Fig. 4(a)): the VMM allocates fresh guest-physical
  space, points the memory map at the host frames (the RB-tree inserts
  Table 2 measures), and delivers *guest* PFNs through the device.
* **guest → host** (Fig. 4(b)): the VMM walks the memory map for each
  guest page and delivers *host* PFNs.

Messages without a PFN list skip translation and just pay the command
header + doorbell costs, as §4.5 describes.

Fault injection (:mod:`repro.faults`) acts at the base :class:`Channel`
delivery layer, so it applies here too. One VM-boundary consequence: a
host→guest message dropped *after* translation leaves its fresh
guest-physical alias installed in the memory map (the guest never saw
the PFNs, so nothing will detach them). A retried attach maps a fresh
alias; the stale one is reclaimed with the VM. That mirrors real
device-window leaks under lost interrupts and is bounded by the retry
budget.
"""

from __future__ import annotations

from dataclasses import replace

from repro.enclave.enclave import Channel, Enclave, KernelMessage
from repro.virt.palacios import PalaciosVmm


class PalaciosChannel(Channel):
    """Host enclave <-> guest enclave, over the XEMEM PCI device."""

    def __init__(self, host_enclave: Enclave, guest_enclave: Enclave,
                 vmm: PalaciosVmm, name: str = ""):
        super().__init__(host_enclave, guest_enclave, name=name)
        self.host_enclave = host_enclave
        self.guest_enclave = guest_enclave
        self.vmm = vmm
        # Channel-level delivery: the device handler hands the (already
        # translated) message to the enclave's receiver. Processing is
        # spawned, not awaited, so sends stay one-way like PiscesChannel.
        vmm.pci.register_guest_handler(self._noop_handler)
        vmm.pci.register_host_handler(self._noop_handler)

    @staticmethod
    def _noop_handler(_msg, _pfns):
        return None
        yield  # pragma: no cover

    def _transfer(self, src: Enclave, dst: Enclave, msg: KernelMessage):
        costs = self.vmm.costs
        if dst is self.guest_enclave:
            # host -> guest: map any host PFN list into fresh guest space
            if msg.pfns is not None:
                gpa_pfns = yield from self.vmm.map_host_pfns_into_guest(msg.pfns)
                msg = replace_pfns(msg, gpa_pfns)
            yield from self.vmm.pci.host_to_guest(msg.kind, msg.pfns)
        else:
            # guest -> host: translate any guest PFN list to host frames
            if msg.pfns is not None:
                hpa_pfns = yield from self.vmm.translate_guest_pfns(msg.pfns)
                msg = replace_pfns(msg, hpa_pfns)
            yield from self.vmm.pci.guest_to_host(msg.kind, msg.pfns)
        # guest-side PTE installs for delivered lists cost more through
        # the VMM than native installs; the module layer charges
        # guest_map_install_per_page_ns via the kernel's map routines.
        del costs
        return msg


def replace_pfns(msg: KernelMessage, pfns) -> KernelMessage:
    """Copy of the message with its PFN list swapped."""
    return KernelMessage(kind=msg.kind, payload=msg.payload, pfns=pfns)
