"""The Palacios guest memory map: GPA→HPA, with real work accounting.

One :class:`MapEntry` maps a physically contiguous guest region to a
physically contiguous host region (paper §4.4). VM RAM is a handful of
large entries; XEMEM guest attachments add one entry per contiguous *host*
run — and host frames pinned for XEMEM "are not guaranteed to be
contiguous", so a 1 GB attachment can add 262 144 entries. That growth is
the Table 2 overhead.

Correctness and cost are separated deliberately:

* The canonical store is a plain dict + sorted numpy snapshot, giving
  exact translations and fast vectorized :meth:`translate_array`.
* Every mutation/lookup is *mirrored* into the configured backend — the
  real red–black tree or the real radix tree — and the nodes/levels the
  backend actually touches are converted to nanoseconds. No asymptotic
  hand-waving: rebalancing work is whatever the tree really did.

A last-entry cache (TLB-like) fronts :meth:`translate`; sequential
translations through a large VM-RAM entry hit it almost always, which is
why guest-*export* translation (Fig. 4(b)) is cheap while guest-*attach*
insertion (Fig. 4(a)) is not — inserts can't be cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.hw.costs import CostModel
from repro.hw.memory import FrameRange, pfns_to_ranges
from repro.virt.radixmap import RadixMap
from repro.virt.rbtree import RedBlackTree


@dataclass(frozen=True)
class MapEntry:
    """A contiguous GPA run mapped to a contiguous HPA run."""

    gpa_start_pfn: int
    npages: int
    hpa_start_pfn: int

    @property
    def gpa_end_pfn(self) -> int:
        """One past the entry's last guest frame."""
        return self.gpa_start_pfn + self.npages

    def translate(self, gpa_pfn: int) -> int:
        """Host frame for ``gpa_pfn`` inside this entry."""
        if not self.gpa_start_pfn <= gpa_pfn < self.gpa_end_pfn:
            raise KeyError(f"gpa pfn {gpa_pfn} outside entry {self}")
        return self.hpa_start_pfn + (gpa_pfn - self.gpa_start_pfn)


class TranslationError(KeyError):
    """GPA not covered by any memory-map entry."""


class _RbBackend:
    """Cost mirror: one RB node per contiguous run."""

    name = "rbtree"

    def __init__(self, costs: CostModel):
        self.tree = RedBlackTree()
        self.costs = costs

    def _delta(self, before: int) -> int:
        return (self.tree.visits - before) * self.costs.rb_node_visit_ns

    def insert_run(self, entry: MapEntry) -> int:
        before = self.tree.visits
        self.tree.insert(entry.gpa_start_pfn, entry)
        return self._delta(before)

    def delete_run(self, entry: MapEntry) -> int:
        before = self.tree.visits
        self.tree.delete(entry.gpa_start_pfn)
        return self._delta(before)

    def lookup(self, gpa_pfn: int) -> int:
        before = self.tree.visits
        self.tree.floor(gpa_pfn)
        return self._delta(before)

    def __len__(self) -> int:
        return len(self.tree)


class _RadixBackend:
    """Cost mirror: one radix leaf per *page*, mimicking a page table."""

    name = "radix"

    def __init__(self, costs: CostModel):
        self.map = RadixMap()
        self.costs = costs

    def _delta(self, before: int) -> int:
        return (self.map.levels_touched - before) * self.costs.radix_level_ns

    def insert_run(self, entry: MapEntry) -> int:
        before = self.map.levels_touched
        for i in range(entry.npages):
            self.map.insert(entry.gpa_start_pfn + i, entry.hpa_start_pfn + i)
        return self._delta(before)

    def delete_run(self, entry: MapEntry) -> int:
        before = self.map.levels_touched
        for i in range(entry.npages):
            self.map.delete(entry.gpa_start_pfn + i)
        return self._delta(before)

    def lookup(self, gpa_pfn: int) -> int:
        before = self.map.levels_touched
        try:
            self.map.get(gpa_pfn)
        except KeyError:
            pass
        return self._delta(before)

    def __len__(self) -> int:
        return len(self.map)


class VmmMemoryMap:
    """GPA→HPA map with selectable cost backend ("rbtree" or "radix")."""

    def __init__(self, costs: CostModel, backend: str = "rbtree",
                 coalesce: bool = False):
        self.costs = costs
        if backend == "rbtree":
            self.backend = _RbBackend(costs)
        elif backend == "radix":
            self.backend = _RadixBackend(costs)
        else:
            raise ValueError(f"unknown memory-map backend {backend!r}")
        #: Palacios as shipped inserts one entry per delivered PFN — the
        #: paper's §5.4 measures per-page tree growth even for physically
        #: contiguous Kitten exports. ``coalesce=True`` is our ablation C:
        #: merge contiguous host runs into single entries before inserting.
        self.coalesce = coalesce
        self.entries: dict = {}  # gpa_start_pfn -> MapEntry
        self._snapshot: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._cache: Optional[MapEntry] = None
        self.total_work_ns = 0
        self.last_op_work_ns = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # -- snapshot ------------------------------------------------------------------

    def _arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._snapshot is None:
            if self.entries:
                starts = np.array(sorted(self.entries), dtype=np.int64)
                ends = np.array(
                    [self.entries[int(s)].gpa_end_pfn for s in starts], dtype=np.int64
                )
                hpas = np.array(
                    [self.entries[int(s)].hpa_start_pfn for s in starts], dtype=np.int64
                )
            else:
                starts = ends = hpas = np.empty(0, dtype=np.int64)
            self._snapshot = (starts, ends, hpas)
        return self._snapshot

    def _invalidate(self) -> None:
        self._snapshot = None
        self._cache = None

    def _charge(self, ns: int) -> None:
        self.total_work_ns += ns
        self.last_op_work_ns += ns

    # -- mutation -------------------------------------------------------------------

    def insert_mapping(self, gpa_start_pfn: int, hpa_pfns: np.ndarray,
                       coalesce: Optional[bool] = None) -> int:
        """Map ``len(hpa_pfns)`` guest pages at ``gpa_start_pfn``.

        One entry per delivered page by default (the shipped Palacios
        behaviour §5.4 measures); one entry per contiguous host run when
        coalescing. Returns the modeled work (ns) — the figure Table 2's
        "w/o rb-tree inserts" column subtracts.
        """
        coalesce = self.coalesce if coalesce is None else coalesce
        hpa_pfns = np.asarray(hpa_pfns, dtype=np.int64)
        npages = len(hpa_pfns)
        if npages == 0:
            raise ValueError("empty mapping")
        if self._overlaps(gpa_start_pfn, npages):
            raise ValueError(
                f"gpa range [{gpa_start_pfn}, {gpa_start_pfn + npages}) overlaps"
            )
        self.last_op_work_ns = 0
        gpa = gpa_start_pfn
        if coalesce:
            runs = pfns_to_ranges(hpa_pfns)
        else:
            runs = [FrameRange(int(p), 1) for p in hpa_pfns]
        for run in runs:
            entry = MapEntry(gpa, run.nframes, run.start_pfn)
            self._charge(self.backend.insert_run(entry))
            self.entries[gpa] = entry
            gpa += run.nframes
        self._invalidate()
        return self.last_op_work_ns

    def remove_mapping(self, gpa_start_pfn: int, npages: int) -> int:
        """Remove every entry fully inside the GPA range."""
        self.last_op_work_ns = 0
        end = gpa_start_pfn + npages
        doomed = [
            e
            for s, e in self.entries.items()
            if gpa_start_pfn <= s and e.gpa_end_pfn <= end
        ]
        covered = sum(e.npages for e in doomed)
        if covered != npages:
            raise KeyError(
                f"gpa range [{gpa_start_pfn}, {end}) does not match whole entries"
            )
        for entry in doomed:
            self._charge(self.backend.delete_run(entry))
            del self.entries[entry.gpa_start_pfn]
        self._invalidate()
        return self.last_op_work_ns

    def _overlaps(self, gpa_start: int, npages: int) -> bool:
        starts, ends, _ = self._arrays()
        if len(starts) == 0:
            return False
        i = int(np.searchsorted(starts, gpa_start, side="right")) - 1
        if i >= 0 and ends[i] > gpa_start:
            return True
        j = int(np.searchsorted(starts, gpa_start, side="left"))
        return j < len(starts) and starts[j] < gpa_start + npages

    # -- translation ------------------------------------------------------------------

    def _entry_for(self, gpa_pfn: int) -> MapEntry:
        starts, ends, _ = self._arrays()
        i = int(np.searchsorted(starts, gpa_pfn, side="right")) - 1
        if i < 0 or gpa_pfn >= ends[i]:
            raise TranslationError(f"gpa pfn {gpa_pfn} unmapped")
        return self.entries[int(starts[i])]

    def translate(self, gpa_pfn: int) -> int:
        """GPA→HPA for one page, through the last-entry cache."""
        cache = self._cache
        if cache is not None and cache.gpa_start_pfn <= gpa_pfn < cache.gpa_end_pfn:
            self.cache_hits += 1
            self._charge(self.costs.memmap_cache_hit_ns)
            return cache.translate(gpa_pfn)
        self.cache_misses += 1
        self._charge(self.backend.lookup(gpa_pfn))
        entry = self._entry_for(gpa_pfn)
        self._cache = entry
        return entry.translate(gpa_pfn)

    def translate_array(self, gpa_pfns: np.ndarray) -> np.ndarray:
        """Vectorized GPA→HPA for a PFN list (the Fig. 4(b) walk).

        Work accounting models the cache exactly: one real backend lookup
        per run transition in the access sequence, cache-hit cost for the
        rest.
        """
        gpa_pfns = np.asarray(gpa_pfns, dtype=np.int64)
        if len(gpa_pfns) == 0:
            raise ValueError("empty translation")
        self.last_op_work_ns = 0
        starts, ends, hpas = self._arrays()
        if len(starts) == 0:
            raise TranslationError("memory map is empty")
        idx = np.searchsorted(starts, gpa_pfns, side="right") - 1
        if (idx < 0).any():
            bad = int(gpa_pfns[int(np.argmax(idx < 0))])
            raise TranslationError(f"gpa pfn {bad} unmapped")
        inside = gpa_pfns < ends[idx]
        if not inside.all():
            bad = int(gpa_pfns[int(np.argmax(~inside))])
            raise TranslationError(f"gpa pfn {bad} unmapped")
        # cache modeling: a backend lookup whenever the entry changes
        run_starts = np.flatnonzero(np.r_[True, np.diff(idx) != 0])
        first_cached = (
            self._cache is not None
            and self._cache.gpa_start_pfn <= gpa_pfns[0] < self._cache.gpa_end_pfn
        )
        if first_cached:
            run_starts = run_starts[1:]
        misses = len(run_starts)
        hits = len(gpa_pfns) - misses
        self.cache_hits += hits
        self.cache_misses += misses
        self._charge(hits * self.costs.memmap_cache_hit_ns)
        for i in run_starts:
            self._charge(self.backend.lookup(int(gpa_pfns[i])))
        self._cache = self.entries[int(starts[idx[-1]])]
        return hpas[idx] + (gpa_pfns - starts[idx])

    def peek_translate_array(self, gpa_pfns: np.ndarray) -> np.ndarray:
        """GPA→HPA without cost accounting.

        Used for *data* access (the hardware MMU does these walks; their
        cost is part of ordinary memory-access time, not VMM work).
        """
        gpa_pfns = np.asarray(gpa_pfns, dtype=np.int64)
        starts, ends, hpas = self._arrays()
        if len(starts) == 0:
            raise TranslationError("memory map is empty")
        idx = np.searchsorted(starts, gpa_pfns, side="right") - 1
        if (idx < 0).any() or not (gpa_pfns < ends[idx]).all():
            raise TranslationError("unmapped gpa pfn in range")
        return hpas[idx] + (gpa_pfns - starts[idx])

    # -- introspection ---------------------------------------------------------------

    @property
    def num_entries(self) -> int:
        """Entries currently in the map."""
        return len(self.entries)

    @property
    def backend_size(self) -> int:
        """Node/leaf count in the cost-accounting backend."""
        return len(self.backend)

    def max_gpa_pfn(self) -> int:
        """One past the highest mapped guest PFN (for GPA allocation)."""
        _starts, ends, _ = self._arrays()
        return int(ends.max()) if len(ends) else 0
