"""Radix-tree memory map backend — the paper's proposed future work.

Section 5.4: "In the future we intend to remove this overhead through the
use of more intelligent radix tree based data structures that can more
appropriately mimic a page table's organization." Ablation A swaps this
backend into the VMM memory map and re-runs the Table 2 experiment.

Keys are guest PFNs; the tree is 4 levels of 512-way fanout (mirroring a
page table), so insert and lookup touch a constant 4 levels regardless of
how many entries exist — no rebalancing, no growth-dependent cost. Work
accounting counts *levels touched* (:attr:`RadixMap.levels_touched`).
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

_BITS = 9
_FANOUT = 1 << _BITS
_LEVELS = 4
_KEY_LIMIT = 1 << (_BITS * _LEVELS)


class RadixMap:
    """4-level radix map from integer key (guest PFN) to value."""

    def __init__(self) -> None:
        self.root: dict = {}
        self.size = 0
        #: Total levels traversed across all operations (cost accounting).
        self.levels_touched = 0

    @staticmethod
    def _indices(key: int) -> Tuple[int, int, int, int]:
        if not 0 <= key < _KEY_LIMIT:
            raise ValueError(f"key {key} outside radix key space")
        return (
            (key >> 27) & 0x1FF,
            (key >> 18) & 0x1FF,
            (key >> 9) & 0x1FF,
            key & 0x1FF,
        )

    def insert(self, key: int, value: Any) -> None:
        """Insert ``key``; duplicate keys raise (4 levels touched)."""
        i0, i1, i2, i3 = self._indices(key)
        self.levels_touched += _LEVELS
        l1 = self.root.setdefault(i0, {})
        l2 = l1.setdefault(i1, {})
        leaf = l2.setdefault(i2, {})
        if i3 in leaf:
            raise KeyError(f"duplicate key {key}")
        leaf[i3] = value
        self.size += 1

    def get(self, key: int) -> Any:
        """Value at ``key``; raises KeyError when absent."""
        i0, i1, i2, i3 = self._indices(key)
        self.levels_touched += _LEVELS
        try:
            return self.root[i0][i1][i2][i3]
        except KeyError:
            raise KeyError(key) from None

    def __contains__(self, key: int) -> bool:
        i0, i1, i2, i3 = self._indices(key)
        self.levels_touched += _LEVELS
        try:
            return i3 in self.root[i0][i1][i2]
        except KeyError:
            return False

    def delete(self, key: int) -> Any:
        """Remove ``key``; prunes empty interior nodes."""
        i0, i1, i2, i3 = self._indices(key)
        self.levels_touched += _LEVELS
        try:
            leaf = self.root[i0][i1][i2]
            value = leaf.pop(i3)
        except KeyError:
            raise KeyError(key) from None
        self.size -= 1
        # prune empty interior nodes so iteration stays proportional to size
        if not leaf:
            del self.root[i0][i1][i2]
            if not self.root[i0][i1]:
                del self.root[i0][i1]
                if not self.root[i0]:
                    del self.root[i0]
        return value

    def floor(self, key: int) -> Optional[Tuple[int, Any]]:
        """Largest (key, value) <= query. O(levels * fanout) worst case;
        the memory map uses it rarely (interval splits)."""
        best: Optional[Tuple[int, Any]] = None
        for k, v in self.items():
            if k > key:
                break
            best = (k, v)
        return best

    def items(self) -> Iterator[Tuple[int, Any]]:
        """(key, value) pairs in ascending key order."""
        for i0 in sorted(self.root):
            l1 = self.root[i0]
            for i1 in sorted(l1):
                l2 = l1[i1]
                for i2 in sorted(l2):
                    leaf = l2[i2]
                    for i3 in sorted(leaf):
                        key = (i0 << 27) | (i1 << 18) | (i2 << 9) | i3
                        yield key, leaf[i3]

    def keys(self) -> List[int]:
        """All keys in ascending order."""
        return [k for k, _v in self.items()]

    def min_key(self) -> Optional[int]:
        """Smallest key, or None when empty."""
        for k, _v in self.items():
            return k
        return None

    def __len__(self) -> int:
        return self.size
