"""Guest-side pieces: guest-physical memory and the guest Linux kernel.

A guest kernel allocates *guest* PFNs from its own [0, ram_frames) space;
data access resolves GPA→HPA through the VMM memory map (a zero-cost peek
— the hardware MMU does that walk) and lands in the node's single backing
store. Guest shared memory therefore stays genuinely zero-copy end to end.
"""

from __future__ import annotations

import numpy as np

from repro.hw.memory import FrameAllocator, MappedRegion, PhysicalMemory
from repro.kernels.linux import LinuxKernel


class GuestPhysicalMemory:
    """Duck-typed stand-in for :class:`PhysicalMemory` inside a VM."""

    def __init__(self, vmm: "object", host_mem: PhysicalMemory):
        self.vmm = vmm
        self.host_mem = host_mem

    @property
    def total_frames(self) -> int:
        """Extent of guest-physical space (RAM + attachment regions)."""
        return self.vmm.memmap.max_gpa_pfn()

    def frame_view(self, gpa_pfn: int) -> np.ndarray:
        """Writable view of one guest frame, resolved to its host frame."""
        hpa = int(self.vmm.memmap.peek_translate_array(np.array([gpa_pfn]))[0])
        return self.host_mem.frame_view(hpa)

    def map_region(self, gpa_pfns: np.ndarray, writable: bool = True) -> MappedRegion:
        """Host-backed MappedRegion for a guest PFN list."""
        hpa_pfns = self.vmm.memmap.peek_translate_array(gpa_pfns)
        return self.host_mem.map_region(hpa_pfns, writable=writable)


class GuestLinuxKernel(LinuxKernel):
    """Linux running inside a Palacios VM.

    Behaves exactly like :class:`LinuxKernel` (same paging, locking, noise
    profile) except that its frame space is guest-physical and its
    "hardware" cores are the vCPUs Palacios pinned to host cores.
    """

    kernel_type = "linux"

    def __init__(self, engine, node, cores, vmm, name: str = ""):
        ram_frames = vmm.ram_frames
        allocator = FrameAllocator(0, ram_frames)
        super().__init__(engine, node, cores, allocator, name=name or f"{vmm.name}-guest")
        self.vmm = vmm
        self.virtualized = True
        #: Guest data access resolves through the VMM memory map.
        self.mem = GuestPhysicalMemory(vmm, node.memory)

    def gpa_to_hpa(self, gpa_pfns: np.ndarray) -> np.ndarray:
        """Zero-cost data-path translation (tests and region plumbing)."""
        return self.vmm.memmap.peek_translate_array(gpa_pfns)
