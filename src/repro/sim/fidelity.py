"""Fidelity switchboard: columnar-fast vs radix-detailed storage twins.

Virtuoso-style simulators split every subsystem into a *fast functional*
model and a *detailed* one and let runs pick per-component fidelity.
This module is that switch for the repro core. It complements
:mod:`repro.sim.fastpath`, which toggles *algorithmic* twins (caching,
batching, vectorization) read at call time; fidelity instead selects a
*storage layout* twin, bound once at object construction:

* ``fast`` — structure-of-arrays backing stores: the page table keeps
  one flat PFN column plus one flag-bitmask column (``uint16``) in an
  arena of 512-entry leaf rows, so range operations are single numpy
  slices and flag-only sweeps touch a quarter of the bytes.
* ``detailed`` — hardware-shaped radix trees: PML4 → PDPT → PD → PT
  dicts with per-leaf 512-entry packed-PTE arrays, exactly the walk a
  real MMU performs.

The two modes are **semantics-preserving** twins under the same
contract REP005 enforces for fast paths (docs/COSTMODEL.md): identical
virtual end times, identical counters, byte-identical trace exports.
``tests/sim/test_fidelity_diff.py`` proves it differentially, and
``repro lint`` REP005 applies the same gate hygiene to ``FIDELITY``
reads as to ``FASTPATH`` reads.

Unlike ``FASTPATH``, flipping ``FIDELITY`` mid-process does *not*
retroactively convert live objects — the mode is read in constructors.
Scope a whole scenario inside :func:`configured` /:func:`detailed` to
compare modes.

``REPRO_FIDELITY=fast|detailed`` selects the starting mode (default
``fast``); anything else fails loudly at import.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass
from typing import Iterator

MODES = ("fast", "detailed")


@dataclass
class Fidelity:
    """The process-wide fidelity mode, read at object construction."""

    mode: str = "fast"

    @property
    def columnar(self) -> bool:
        """True when constructors should bind structure-of-arrays stores."""
        return self.mode == "fast"

    @property
    def detailed(self) -> bool:
        """True when constructors should bind hardware-shaped stores."""
        return self.mode == "detailed"

    def set_mode(self, mode: str) -> None:
        """Switch modes; affects objects constructed from now on."""
        if mode not in MODES:
            raise ValueError(f"unknown fidelity mode {mode!r} (expected one of {MODES})")
        self.mode = mode


#: The process-wide switchboard. Constructors read it once, so a toggle
#: affects only objects built afterwards (see the module docstring).
FIDELITY = Fidelity()

FIDELITY.set_mode(os.environ.get("REPRO_FIDELITY", "fast").lower())


@contextlib.contextmanager
def configured(mode: str) -> Iterator[Fidelity]:
    """Scoped mode override: set ``mode``, restore on exit.

    >>> with configured("detailed"):
    ...     pass
    """
    saved = FIDELITY.mode
    FIDELITY.set_mode(mode)
    try:
        yield FIDELITY
    finally:
        FIDELITY.mode = saved


@contextlib.contextmanager
def detailed() -> Iterator[Fidelity]:
    """Scoped detailed mode (hardware-shaped radix stores)."""
    with configured("detailed") as f:
        yield f


@contextlib.contextmanager
def fast() -> Iterator[Fidelity]:
    """Scoped fast mode (useful when the env var selected detailed)."""
    with configured("fast") as f:
        yield f
