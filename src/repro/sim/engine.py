"""Event loop and virtual clock.

The engine owns a priority queue of ``(time_ns, seq, callback, args)``
entries. ``seq`` is a monotonically increasing tiebreaker so that events
scheduled for the same instant fire in scheduling order — this is what
makes the whole simulation deterministic. Carrying ``args`` in the queue
entry lets awaitables schedule a bound method plus its arguments (a
"slot" callback) instead of allocating a fresh closure per event — the
``engine_slots`` fast path (see :mod:`repro.sim.fastpath`).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

from repro.sim.fastpath import FASTPATH

#: Virtual time units per second. All engine times are integer nanoseconds.
NS_PER_SEC = 1_000_000_000
NS_PER_MS = 1_000_000
NS_PER_US = 1_000


class SimError(RuntimeError):
    """Raised for misuse of the simulation engine (e.g. time travel)."""


class Awaitable:
    """Base class for anything a process generator may ``yield``.

    Subclasses implement :meth:`subscribe`, registering a resume callback
    invoked as ``callback(value, exc)`` exactly once.
    """

    def subscribe(self, callback: Callable[[Any, Optional[BaseException]], None]) -> None:
        raise NotImplementedError


class Timeout(Awaitable):
    """Awaitable that fires ``delay_ns`` after it was created."""

    __slots__ = ("engine", "delay_ns", "value")

    def __init__(self, engine: "Engine", delay_ns: int, value: Any = None):
        if delay_ns < 0:
            raise SimError(f"negative timeout: {delay_ns}")
        self.engine = engine
        self.delay_ns = int(delay_ns)
        self.value = value

    def subscribe(self, callback) -> None:
        if FASTPATH.engine_slots:
            self.engine.call_at(
                self.engine.now + self.delay_ns, callback, self.value, None
            )
        else:
            self.engine.call_at(
                self.engine.now + self.delay_ns, lambda: callback(self.value, None)
            )


class Event(Awaitable):
    """One-shot event. Processes wait on it; :meth:`trigger` resumes them all.

    The value passed to :meth:`trigger` becomes the result of the ``yield``.
    :meth:`fail` resumes waiters by raising an exception inside them.
    """

    __slots__ = ("engine", "_callbacks", "_done", "_value", "_exc", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self._callbacks: list = []
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None

    @property
    def triggered(self) -> bool:
        """True once the event has fired or failed."""
        return self._done

    @property
    def value(self) -> Any:
        """The trigger value; raises if not yet triggered."""
        if not self._done:
            raise SimError(f"event {self.name!r} not yet triggered")
        return self._value

    def subscribe(self, callback) -> None:
        if self._done:
            # Resume on the next loop turn (still at the current instant) so
            # a yield on an already-triggered event never re-enters the
            # yielding process synchronously.
            if FASTPATH.engine_slots:
                self.engine.call_at(self.engine.now, callback, self._value, self._exc)
            else:
                self.engine.call_at(
                    self.engine.now, lambda: callback(self._value, self._exc)
                )
        else:
            self._callbacks.append(callback)

    def trigger(self, value: Any = None) -> "Event":
        """Fire the event, resuming every waiter with ``value``."""
        if self._done:
            raise SimError(f"event {self.name!r} triggered twice")
        self._done = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        if FASTPATH.engine_slots:
            for cb in callbacks:
                self.engine.call_at(self.engine.now, cb, value, None)
        else:
            for cb in callbacks:
                self.engine.call_at(self.engine.now, lambda cb=cb: cb(value, None))
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Fire the event by raising ``exc`` inside every waiter."""
        if self._done:
            raise SimError(f"event {self.name!r} triggered twice")
        self._done = True
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, []
        if FASTPATH.engine_slots:
            for cb in callbacks:
                self.engine.call_at(self.engine.now, cb, None, exc)
        else:
            for cb in callbacks:
                self.engine.call_at(self.engine.now, lambda cb=cb: cb(None, exc))
        return self


class AllOf(Awaitable):
    """Fires when every constituent awaitable has fired; value is a list."""

    def __init__(self, engine: "Engine", items: Iterable[Awaitable]):
        self.engine = engine
        self.items = list(items)

    def subscribe(self, callback) -> None:
        pending = len(self.items)
        results: list = [None] * pending
        if pending == 0:
            self.engine.call_at(self.engine.now, lambda: callback([], None))
            return
        state = {"left": pending, "failed": False}

        def make_cb(i):
            def cb(value, exc):
                if state["failed"]:
                    return
                if exc is not None:
                    state["failed"] = True
                    callback(None, exc)
                    return
                results[i] = value
                state["left"] -= 1
                if state["left"] == 0:
                    callback(results, None)

            return cb

        for i, item in enumerate(self.items):
            item.subscribe(make_cb(i))


class AnyOf(Awaitable):
    """Fires when the first constituent fires; value is ``(index, value)``."""

    def __init__(self, engine: "Engine", items: Iterable[Awaitable]):
        self.engine = engine
        self.items = list(items)
        if not self.items:
            raise SimError("AnyOf of nothing")

    def subscribe(self, callback) -> None:
        state = {"done": False}

        def make_cb(i):
            def cb(value, exc):
                if state["done"]:
                    return
                state["done"] = True
                if exc is not None:
                    callback(None, exc)
                else:
                    callback((i, value), None)

            return cb

        for i, item in enumerate(self.items):
            item.subscribe(make_cb(i))


class Engine:
    """The simulation event loop.

    >>> eng = Engine()
    >>> def hello(eng, out):
    ...     yield eng.sleep(5)
    ...     out.append(eng.now)
    >>> out = []
    >>> _ = eng.spawn(hello(eng, out))
    >>> eng.run()
    >>> out
    [5]
    """

    def __init__(self, obs: Optional[Any] = None) -> None:
        self.now: int = 0
        self._queue: list = []
        self._seq = 0
        self._processes: list = []  # live (unfinished) processes, for diagnostics
        from repro.obs import context as _obs_context

        ctx = _obs_context.get()
        if obs is None:
            # Pick up the ambient observability context's engine observer
            # (None unless the caller enabled engine instrumentation).
            obs = ctx.engine_obs
        #: Optional instrumentation sink (see repro.obs.engine_hooks).
        self.obs = obs
        if ctx.flightrec is not None:
            # An armed flight recorder summarizes the most recent engine
            # on a dump; attaching here costs one check per construction,
            # never per event.
            ctx.flightrec.attach(engine=self)
        #: Optional fault injector (see repro.faults). None = no plan armed;
        #: every hook site is a single attribute load + None check.
        self.faults = None
        #: The Process whose generator is currently being resumed (None
        #: between resumptions). Maintained by Process._step; the tracer
        #: keys its parent-attribution stacks on it so spans opened by
        #: interleaving processes never adopt each other as parents.
        self.current_process = None

    # -- scheduling ---------------------------------------------------------

    def call_at(self, when_ns: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute virtual time ``when_ns``.

        Passing the arguments through the queue entry (instead of closing
        over them) is what lets awaitables schedule bound methods without
        allocating a lambda per event.
        """
        when_ns = int(when_ns)
        if when_ns < self.now:
            raise SimError(f"cannot schedule at {when_ns} < now {self.now}")
        heapq.heappush(self._queue, (when_ns, self._seq, callback, args))
        self._seq += 1

    def call_after(self, delay_ns: int, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` ``delay_ns`` from now."""
        self.call_at(self.now + int(delay_ns), callback, *args)

    # -- awaitable factories ------------------------------------------------

    def sleep(self, delay_ns: int, value: Any = None) -> Timeout:
        """Awaitable that fires after ``delay_ns``."""
        return Timeout(self, delay_ns, value)

    def event(self, name: str = "") -> Event:
        """A fresh one-shot Event bound to this engine."""
        return Event(self, name)

    def all_of(self, items: Iterable[Awaitable]) -> AllOf:
        """Awaitable: fires when every item has fired (list of values)."""
        return AllOf(self, items)

    def any_of(self, items: Iterable[Awaitable]) -> AnyOf:
        """Awaitable: fires at the first item, value (index, value)."""
        return AnyOf(self, items)

    def spawn(self, gen, name: str = "") -> "Process":
        """Start a new process from generator ``gen``; returns the Process."""
        from repro.sim.process import Process

        proc = Process(self, gen, name=name)
        self._processes.append(proc)
        if self.obs is not None:
            self.obs.on_spawn(self, proc)
        return proc

    def _process_finished(self, proc) -> None:
        """Prune a finished process from the diagnostics list.

        Called by :class:`~repro.sim.process.Process` exactly once per
        finish, so long runs spawning millions of short-lived processes
        do not leak them here.
        """
        try:
            self._processes.remove(proc)
        except ValueError:
            pass
        if self.obs is not None:
            self.obs.on_finish(self, proc)

    # -- running ------------------------------------------------------------

    def step(self) -> bool:
        """Run the single next event. Returns False if the queue is empty."""
        if not self._queue:
            return False
        when, _seq, callback, args = heapq.heappop(self._queue)
        self.now = when
        if self.obs is None:
            callback(*args)
        else:
            self.obs.run_event(self, callback, args)
        return True

    def run(self, until_ns: Optional[int] = None) -> None:
        """Run until the queue drains or virtual time reaches ``until_ns``.

        When ``until_ns`` is given and is reached, the clock is left exactly
        at ``until_ns`` and any not-yet-due events stay queued. Events
        scheduled *exactly at* ``until_ns`` do run.
        """
        queue = self._queue
        if self.obs is None and FASTPATH.engine_slots:
            # Batched drain: identical semantics to the step() loop below,
            # with the heap pop and dispatch inlined (no per-event method
            # calls or observer checks).
            pop = heapq.heappop
            if until_ns is None:
                while queue:
                    when, _seq, callback, args = pop(queue)
                    self.now = when
                    callback(*args)
            else:
                while queue:
                    if queue[0][0] > until_ns:
                        self.now = until_ns
                        return
                    when, _seq, callback, args = pop(queue)
                    self.now = when
                    callback(*args)
        else:
            while queue:
                if until_ns is not None and queue[0][0] > until_ns:
                    self.now = until_ns
                    return
                self.step()
        if until_ns is not None and self.now < until_ns:
            self.now = until_ns

    def run_until_complete(self, proc) -> Any:
        """Step the loop until ``proc`` finishes, then return its result.

        Unlike :meth:`run`, this tolerates unbounded background activity
        (noise daemons, pollers): pending events are simply left queued
        once the target process completes.
        """
        while not proc.finished:
            if not self.step():
                raise SimError(
                    f"queue drained before process {proc.name!r} finished (deadlock?)"
                )
        return proc.result

    def run_process(self, gen, name: str = "", until_ns: Optional[int] = None) -> Any:
        """Spawn ``gen``, run to completion, and return its result.

        Convenience wrapper used pervasively by tests and benchmarks.
        Raises the process's exception if it failed, or :class:`SimError`
        if the queue drained before the process finished.
        """
        proc = self.spawn(gen, name=name)
        self.run(until_ns=until_ns)
        if not proc.finished:
            raise SimError(f"process {name or gen!r} did not finish (deadlock?)")
        return proc.result

    @property
    def queue_len(self) -> int:
        """Events currently queued."""
        return len(self._queue)

    @property
    def live_processes(self) -> tuple:
        """The processes spawned on this engine that have not finished."""
        return tuple(self._processes)

    def state_summary(self) -> dict:
        """Deterministic loop-state digest for incident bundles.

        Virtual clock, queue depth, and the (sorted) names of unfinished
        processes — enough to see *what was still running* when a flight
        recorder froze the run, without holding object references.
        """
        current = self.current_process
        return {
            "now_ns": self.now,
            "queue_len": len(self._queue),
            "live_processes": sorted(p.name for p in self._processes),
            "current_process": None if current is None else current.name,
            "faults_armed": bool(
                self.faults is not None and self.faults.active
            ),
        }
