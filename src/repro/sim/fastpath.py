"""Global fast-path switchboard for the simulation core.

Large-figure runs (Fig. 5/6, Table 2) simulate multi-GiB attaches; at
that scale the simulator's own overhead — per-event lambda allocation,
one event chain per IPI chunk round, per-leaf numpy loops over 512-entry
page tables, per-page demand-paging faults — dominates wall-clock time.
Each fast path below replaces one of those hot loops with a batched or
cached equivalent that is **semantics-preserving**: identical virtual
end times, identical observability counters (fast paths may only add
counters under the ``fastpath.*`` namespace), and byte-identical trace
exports versus the slow reference path. ``tests/sim/test_fastpath_diff.py``
enforces this differentially.

Flags (all default on; see docs/COSTMODEL.md for the invariants):

* ``engine_slots`` — ``Timeout``/``Event`` resume waiters via
  args-carrying queue entries instead of allocating a fresh lambda per
  event, and ``Engine.run`` drains the queue in a tight loop.
* ``ipi_batching`` — a burst of identical back-to-back IPI chunk rounds
  collapses into one closed-form core reservation when the target core
  is uncontended (:meth:`repro.hw.interrupts.InterruptController.send_ipi_burst`).
* ``walk_cache`` — ``PageTable.translate_range`` caches PFN walks,
  invalidated by a generation counter bumped on any PFN-changing
  mutation (flag-only changes such as pinning do not invalidate).
* ``range_vectorize`` — range operations on the page table precompute
  packed PTEs once and use whole-window numpy checks instead of
  per-leaf flag masking.
* ``fault_vectorize`` — ``LinuxKernel.touch_pages``/``pin_pages`` fault
  partially-populated ranges via a per-leaf present mask instead of one
  ``translate`` + ``handle_fault`` round trip per page.

Setting ``REPRO_FASTPATH=0`` in the environment starts with every flag
off (the slow reference paths).

These flags toggle *algorithmic* twins and are read at call time.
Storage-*layout* twins (the columnar vs radix page-table stores) are
selected by the separate, construction-time switchboard in
:mod:`repro.sim.fidelity`; both obey the same REP005 gate hygiene.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, fields
from typing import Iterator


@dataclass
class FastPath:
    """The set of independently toggleable fast-path flags."""

    engine_slots: bool = True
    ipi_batching: bool = True
    walk_cache: bool = True
    range_vectorize: bool = True
    fault_vectorize: bool = True

    def set_all(self, on: bool) -> None:
        """Switch every flag at once."""
        for f in fields(self):
            setattr(self, f.name, on)

    def as_dict(self) -> dict:
        """Current flag values, by name."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @property
    def any_enabled(self) -> bool:
        """True when at least one fast path is on."""
        return any(self.as_dict().values())


#: The process-wide switchboard. Hot paths read it at call time, so
#: toggling takes effect immediately (tests flip it mid-process).
FASTPATH = FastPath()

if os.environ.get("REPRO_FASTPATH", "1").lower() in ("0", "off", "false", "no"):
    FASTPATH.set_all(False)


def enable_all() -> None:
    """Turn every fast path on."""
    FASTPATH.set_all(True)


def disable_all() -> None:
    """Turn every fast path off (slow reference paths)."""
    FASTPATH.set_all(False)


@contextlib.contextmanager
def configured(**flags: bool) -> Iterator[FastPath]:
    """Scoped flag override: set the named flags, restore on exit.

    >>> with configured(walk_cache=False):
    ...     pass
    """
    valid = FASTPATH.as_dict()
    for name in flags:
        if name not in valid:
            raise ValueError(f"unknown fast-path flag {name!r}")
    saved = {name: valid[name] for name in flags}
    for name, value in flags.items():
        setattr(FASTPATH, name, bool(value))
    try:
        yield FASTPATH
    finally:
        for name, value in saved.items():
            setattr(FASTPATH, name, value)


@contextlib.contextmanager
def disabled() -> Iterator[FastPath]:
    """Scoped all-off: run the body on the slow reference paths."""
    with configured(**{f.name: False for f in fields(FastPath)}) as fp:
        yield fp


@contextlib.contextmanager
def enabled() -> Iterator[FastPath]:
    """Scoped all-on (useful when the env var turned fast paths off)."""
    with configured(**{f.name: True for f in fields(FastPath)}) as fp:
        yield fp
