"""Contended resources for the simulation: cores, kernel locks, devices.

A :class:`Resource` has an integer capacity and a FIFO wait queue.
Contention statistics (waits, wait time, peak queue depth) are collected in
:class:`ResourceStats`; the Linux-only variance in the paper's Figures 8
and 9 falls out of these queues rather than being injected ad hoc.

Usage inside a process generator::

    yield lock.acquire()
    try:
        ... critical section (may yield) ...
    finally:
        lock.release()

Processes must not be :meth:`~repro.sim.process.Process.interrupt`-ed while
queued on a resource: an abandoned grant would leak a slot. All resource
waits in this codebase are short and uninterrupted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional, Tuple

from repro.sim.engine import Engine, Event, SimError


@dataclass
class ResourceStats:
    """Aggregate contention statistics for one resource."""

    acquisitions: int = 0
    contended_acquisitions: int = 0
    total_wait_ns: int = 0
    max_wait_ns: int = 0
    max_queue_depth: int = 0
    busy_ns: int = 0
    _busy_since: Optional[int] = field(default=None, repr=False)

    @property
    def mean_wait_ns(self) -> float:
        """Average wait per acquisition (0 when uncontended)."""
        return self.total_wait_ns / self.acquisitions if self.acquisitions else 0.0


class Resource:
    """Counted resource with FIFO granting.

    ``capacity`` concurrent holders are allowed; further acquirers queue.
    """

    def __init__(self, engine: Engine, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: Deque[Tuple[Event, int]] = deque()
        self.stats = ResourceStats()

    def acquire(self) -> Event:
        """Return an event that triggers once a slot is granted."""
        ev = self.engine.event(name=f"{self.name}.acquire")
        if self.in_use < self.capacity:
            self._grant(ev, queued_at=None)
        else:
            self._waiters.append((ev, self.engine.now))
            self.stats.max_queue_depth = max(
                self.stats.max_queue_depth, len(self._waiters)
            )
        return ev

    def try_acquire(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self.in_use < self.capacity:
            self.in_use += 1
            self.stats.acquisitions += 1
            self._note_busy()
            return True
        return False

    def release(self) -> None:
        """Free one slot; grants the longest-waiting acquirer FIFO."""
        if self.in_use <= 0:
            raise SimError(f"release of idle resource {self.name!r}")
        self.in_use -= 1
        if self._waiters:
            ev, queued_at = self._waiters.popleft()
            self._grant(ev, queued_at)
        elif self.in_use == 0 and self.stats._busy_since is not None:
            self.stats.busy_ns += self.engine.now - self.stats._busy_since
            self.stats._busy_since = None

    @property
    def queue_depth(self) -> int:
        """Acquirers currently waiting."""
        return len(self._waiters)

    # -- internals -----------------------------------------------------------

    def _grant(self, ev: Event, queued_at: Optional[int]) -> None:
        self.in_use += 1
        self.stats.acquisitions += 1
        if queued_at is not None:
            waited = self.engine.now - queued_at
            self.stats.contended_acquisitions += 1
            self.stats.total_wait_ns += waited
            self.stats.max_wait_ns = max(self.stats.max_wait_ns, waited)
        self._note_busy()
        ev.trigger(self)

    def _note_busy(self) -> None:
        if self.stats._busy_since is None:
            self.stats._busy_since = self.engine.now


class Mutex(Resource):
    """Capacity-1 resource, used for kernel locks (e.g. Linux ``mmap_sem``)."""

    def __init__(self, engine: Engine, name: str = ""):
        super().__init__(engine, capacity=1, name=name)

    def locked_section(self, body_gen):
        """Wrap a generator in acquire/release (``yield from`` this)."""

        def wrapped():
            yield self.acquire()
            try:
                result = yield from body_gen
            finally:
                self.release()
            return result

        return wrapped()
