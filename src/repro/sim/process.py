"""Generator-backed simulated processes.

A :class:`Process` drives a generator: every value the generator yields
must be an :class:`~repro.sim.engine.Awaitable`; the process suspends until
it fires and the fired value becomes the result of the ``yield`` expression.

Processes are themselves awaitables (join semantics) and can be
:meth:`interrupted <Process.interrupt>`, which raises :class:`Interrupt`
inside the generator at its current suspension point.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.engine import Awaitable, Engine, SimError


class Interrupt(Exception):
    """Raised inside a process generator when another actor interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Awaitable):
    """A running simulated activity.

    Attributes
    ----------
    finished:
        True once the generator has returned or raised.
    result:
        The generator's return value (via ``StopIteration.value``).
        Accessing it re-raises the generator's exception if it failed.
    """

    __slots__ = ("engine", "gen", "name", "finished", "_result", "_exc",
                 "_waiters", "_epoch", "started_at", "finished_at")

    def __init__(self, engine: Engine, gen, name: str = ""):
        self.engine = engine
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "proc")
        self.finished = False
        self._result: Any = None
        self._exc: Optional[BaseException] = None
        self._waiters: list = []
        # Suspension epoch: every resume invalidates callbacks registered
        # for earlier suspensions, so an interrupt cannot race with the
        # original awaitable firing later.
        self._epoch = 0
        self.started_at = engine.now
        self.finished_at: Optional[int] = None
        # First step happens via the queue so spawn order == run order.
        engine.call_at(engine.now, self._step, self._epoch, None, None)

    # -- driving the generator ----------------------------------------------

    def _step(self, epoch: int, value: Any, exc: Optional[BaseException]) -> None:
        if self.finished or epoch != self._epoch:
            return  # stale wakeup (e.g. awaitable fired after an interrupt)
        self._epoch += 1
        engine = self.engine
        prev = engine.current_process
        engine.current_process = self
        try:
            if exc is not None:
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except BaseException as err:  # noqa: BLE001  # repro: noqa[REP007] reason=exception becomes the process result and re-raises in every waiter via _finish
            self._finish(None, err)
            return
        finally:
            engine.current_process = prev
        if not isinstance(target, Awaitable):
            self._finish(
                None,
                SimError(
                    f"process {self.name!r} yielded {target!r}; "
                    "processes must yield Awaitable objects"
                ),
            )
            return
        epoch_now = self._epoch
        target.subscribe(lambda v, e: self._step(epoch_now, v, e))

    def _finish(self, result: Any, exc: Optional[BaseException]) -> None:
        self.finished = True
        self.finished_at = self.engine.now
        self._result = result
        self._exc = exc
        self.engine._process_finished(self)
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            self.engine.call_at(self.engine.now, cb, result, exc)
        if exc is not None and not waiters:
            # Nobody is joining this process: fail loudly instead of
            # swallowing the error. Raising from inside the event loop
            # surfaces the failure out of Engine.run().
            raise exc

    # -- public surface ------------------------------------------------------

    @property
    def result(self) -> Any:
        """The generator's return value; re-raises its exception."""
        if not self.finished:
            raise SimError(f"process {self.name!r} still running")
        if self._exc is not None:
            raise self._exc
        return self._result

    @property
    def failed(self) -> bool:
        """True when the process finished by raising."""
        return self.finished and self._exc is not None

    def subscribe(self, callback) -> None:
        """Awaitable interface: resume ``callback`` when the process ends."""
        if self.finished:
            self.engine.call_at(self.engine.now, callback, self._result, self._exc)
        else:
            self._waiters.append(callback)

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process at its next resume.

        Delivered at the current instant if the process is suspended; a
        no-op if it already finished. The awaitable the process was waiting
        on is abandoned (its eventual firing is ignored).
        """
        if self.finished:
            return
        self.engine.call_at(
            self.engine.now, self._step, self._epoch, None, Interrupt(cause)
        )
