"""Trace recording and summary statistics for simulation runs.

Benchmarks record samples (e.g. per-attachment durations, per-run
completion times) into :class:`SeriesStats`; figures are generated from
these summaries. :class:`TraceRecorder` keeps optional full event traces
for debugging and for the noise-profile figure, which needs every detour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class SeriesStats:
    """Streaming mean/variance/min/max over a sample series (Welford)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def add(self, x: float) -> None:
        """Fold one sample into the running statistics."""
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs: Iterable[float]) -> None:
        """Fold an iterable of samples in."""
        for x in xs:
            self.add(x)

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def summary(self) -> Dict[str, float]:
        """Dict of count/mean/stdev/min/max."""
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
        }


@dataclass
class TraceEvent:
    """A single timestamped trace record."""

    time_ns: int
    kind: str
    detail: dict = field(default_factory=dict)


class TraceRecorder:
    """Collects :class:`TraceEvent` records, filterable by kind.

    Recording can be disabled (the default for large benchmark runs) in
    which case :meth:`record` is a cheap no-op.

    Storage is a :class:`repro.obs.tracer.RingBuffer` — the same bounded
    recording primitive the span tracer uses — so ``max_events`` caps
    memory on long noise-profile runs, with evictions counted in
    :attr:`dropped` instead of failing silently. Every record is also
    mirrored into the ambient :mod:`repro.obs` tracer (as an instant
    event on the ``track`` lane) whenever one is enabled, so there is a
    single recording path feeding trace exports.
    """

    def __init__(self, enabled: bool = True, max_events: Optional[int] = None,
                 track: str = "trace"):
        from repro.obs.tracer import RingBuffer

        self.enabled = enabled
        self.track = track
        self._buf = RingBuffer(max_events)

    def record(self, time_ns: int, kind: str, **detail) -> None:
        """Append one timestamped event (no-op when disabled)."""
        if not self.enabled:
            return
        self._buf.append(TraceEvent(time_ns, kind, detail))
        from repro.obs import context as _obs_context

        ctx = _obs_context.get()
        if ctx.tracer.enabled:
            ctx.tracer.instant(kind, time_ns, track=self.track, **detail)
        if self._buf.dropped and ctx.metrics.enabled:
            # Ring-cap evictions as a gauge (set only once drops start,
            # so capless runs export byte-identical snapshots) — this is
            # what makes truncation visible on serve-report dashboards
            # and in the Prometheus exposition instead of only via
            # ``inspect``.
            ctx.metrics.gauge("trace.recorder.dropped").set(self._buf.dropped)

    @property
    def events(self) -> List[TraceEvent]:
        """All retained events, oldest first."""
        return list(self._buf)

    @property
    def max_events(self) -> Optional[int]:
        """The ring cap (None = unbounded)."""
        return self._buf.max_events

    @property
    def dropped(self) -> int:
        """Events evicted by the ring cap."""
        return self._buf.dropped

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All recorded events of one kind, in order."""
        return [ev for ev in self._buf if ev.kind == kind]

    def series(self, kind: str, key: str) -> List[Tuple[int, float]]:
        """(time_ns, detail[key]) pairs for all events of ``kind``."""
        return [(ev.time_ns, ev.detail[key]) for ev in self.of_kind(kind)]

    def clear(self) -> None:
        """Drop all recorded events."""
        self._buf.clear()

    def __len__(self) -> int:
        return len(self._buf)


def percentile(sorted_xs: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted list, q in [0, 100]."""
    if not sorted_xs:
        raise ValueError("percentile of empty series")
    if not 0 <= q <= 100:
        raise ValueError(f"q out of range: {q}")
    if q == 0:
        return sorted_xs[0]
    rank = math.ceil(q / 100.0 * len(sorted_xs))
    return sorted_xs[rank - 1]
