"""Discrete-event simulation engine.

A small, deterministic, simpy-flavoured engine. Simulated activities are
generator functions that ``yield`` awaitables:

* :class:`~repro.sim.engine.Timeout` — advance virtual time,
* :class:`~repro.sim.engine.Event` — wait for an explicit trigger,
* :class:`~repro.sim.process.Process` — join another process,
* resource requests from :mod:`repro.sim.resources`.

Virtual time is an integer count of **nanoseconds**; nothing in the engine
ever consults the wall clock, so runs are bit-for-bit reproducible.
"""

from repro.sim import fastpath
from repro.sim.engine import Engine, Event, Timeout, SimError
from repro.sim.process import Process, Interrupt
from repro.sim.resources import Resource, Mutex, ResourceStats
from repro.sim.record import TraceRecorder, SeriesStats

__all__ = [
    "fastpath",
    "Engine",
    "Event",
    "Timeout",
    "SimError",
    "Process",
    "Interrupt",
    "Resource",
    "Mutex",
    "ResourceStats",
    "TraceRecorder",
    "SeriesStats",
]
