"""Per-file analysis context shared by every rule during one pass.

The context owns the parsed tree, the source lines, a resolved import
table, and the ancestor stack maintained by the visitor. Rules use it
to (a) report findings and (b) answer "what fully-qualified name does
this expression refer to?" without re-walking the file.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.findings import Finding, Severity


def _norm(path: str) -> str:
    return path.replace("\\", "/")


class ImportTable:
    """Maps local names to the dotted names they were imported as.

    Resolution is purely lexical — module-level and function-level
    imports all land in one table, locals are not tracked — which is
    exactly the precision the project rules need: a *negative* answer
    (``None``) means "not provably an import", and rules treat that as
    "do not flag".
    """

    def __init__(self, tree: ast.AST) -> None:
        self.names: dict = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.partition(".")[0]
                    # `import a.b` binds `a`; `import a.b as c` binds `a.b`.
                    full = alias.name if alias.asname else local
                    self.names[local] = full
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import — target module unknown
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name for a Name/Attribute chain, or None if unknown.

        ``import time`` + ``time.perf_counter`` → ``"time.perf_counter"``;
        ``from time import perf_counter as pc`` + ``pc`` → same. A chain
        rooted at a local variable resolves to None.
        """
        parts: list = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.names.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


class FileContext:
    """Everything one lint pass over one file needs."""

    def __init__(self, path: str, source: str, tree: ast.AST) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.imports = ImportTable(tree)
        #: ancestor chain of the node currently being visited (outermost
        #: first, excluding the node itself); maintained by the visitor
        self.ancestors: list = []
        self.findings: list = []

    # -- reporting ----------------------------------------------------------

    def report(self, rule, node: ast.AST, message: str) -> None:
        """File a finding for ``rule`` at ``node``'s location."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        text = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        self.findings.append(
            Finding(rule.code, message, self.path, line, col,
                    rule.severity, source_line=text)
        )

    # -- shared helpers -----------------------------------------------------

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted name of an expression, or None."""
        return self.imports.resolve(node)

    def resolved_call(self, node: ast.Call) -> Optional[str]:
        """Dotted name of a call's callee, or None."""
        return self.resolve(node.func)

    def path_is(self, *suffixes: str) -> bool:
        """True when this file's path ends with any of ``suffixes``."""
        p = _norm(self.path)
        return any(p.endswith(_norm(s)) for s in suffixes)

    def in_assert(self) -> bool:
        """True when the current node sits inside an ``assert`` statement."""
        return any(isinstance(a, ast.Assert) for a in self.ancestors)

    def parent(self) -> Optional[ast.AST]:
        """Immediate parent of the current node (None at module level)."""
        return self.ancestors[-1] if self.ancestors else None


# Re-exported for rule modules that construct findings directly.
__all__ = ["FileContext", "ImportTable", "Finding", "Severity"]
