"""``python -m repro lint`` — the determinism & simulation-safety gate.

Exit codes: 0 clean (or everything baselined/suppressed), 1 findings,
2 usage error. ``--format json`` emits the machine-readable report the
CI job uploads as an artifact (schema in docs/LINT.md); ``--format
sarif`` emits SARIF 2.1.0 for GitHub code scanning. ``--changed``
restricts *reporting* to files touched per git while still building
the call graph over the whole default tree — the fast pre-commit mode.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

from repro.lint.baseline import Baseline
from repro.lint.engine import lint_paths
from repro.lint.findings import Severity
from repro.lint.rules import ALL_RULES, PROJECT_RULES
from repro.lint.sarif import render_sarif

#: Default lint targets, relative to the invocation directory.
DEFAULT_PATHS = ("src/repro", "tests")
#: Default baseline location (missing file = empty baseline).
DEFAULT_BASELINE = "lint-baseline.json"
#: JSON report schema version (2 added the per-finding "chain").
REPORT_VERSION = 2


class MetaRuleInfo:
    """REP000's catalog entry (the rule itself lives in noqa.py)."""

    code = "REP000"
    name = "suppressions"
    severity = Severity.ERROR

    @classmethod
    def summary(cls) -> str:
        return ("Malformed or stale '# repro: noqa[REPxxx] reason=...' "
                "directive (always on).")


#: Rule metadata order for --list-rules and the SARIF driver catalog.
RULE_CATALOG = (MetaRuleInfo,) + ALL_RULES + PROJECT_RULES


def _codes(value: str) -> list:
    return [c.strip().upper() for c in value.split(",") if c.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="Whole-program determinism & parallelism-safety "
                    "checks (per-file REP001-REP008 + call-graph "
                    "REP101-REP113; see docs/LINT.md).",
    )
    parser.add_argument("paths", nargs="*",
                        help=f"files/directories (default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", type=_codes, default=None, metavar="CODES",
                        help="comma-separated codes to run (default: all)")
    parser.add_argument("--ignore", type=_codes, default=None, metavar="CODES",
                        help="comma-separated codes to skip")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE, metavar="FILE",
                        help="baseline file of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE}; missing = empty)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline and exit 0")
    parser.add_argument("--changed", action="store_true",
                        help="report only files changed per git (diff vs "
                             "HEAD + untracked); the call graph still "
                             "covers the whole default tree")
    parser.add_argument("--index-cache", metavar="FILE",
                        help="read/refresh a phase-1 index cache keyed on "
                             "source sha256 (corrupt/missing = cold start)")
    parser.add_argument("--output", metavar="FILE",
                        help="also write the report to FILE")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _git_changed_files() -> list:
    """Changed-vs-HEAD plus untracked ``.py`` files under the default
    lint tree, or None when git is unavailable (not a repo)."""
    files: set = set()
    for cmd in (
        ("git", "diff", "--name-only", "HEAD", "--"),
        ("git", "ls-files", "--others", "--exclude-standard"),
    ):
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True)
        except OSError:
            return None
        if proc.returncode != 0:
            return None
        files.update(proc.stdout.split())
    prefixes = tuple(p.rstrip("/") + "/" for p in DEFAULT_PATHS)
    return sorted(
        f for f in files
        if f.endswith(".py") and f.startswith(prefixes) and os.path.isfile(f)
    )


def _render_text(new, old, files_scanned: int) -> str:
    lines = [f.render() for f in new]
    summary = (
        f"{len(new)} finding{'s' if len(new) != 1 else ''} "
        f"({len(old)} baselined) in {files_scanned} files"
    )
    lines.append(summary if new or old else f"clean: {files_scanned} files")
    return "\n".join(lines)


def _render_json(new, old, files_scanned: int) -> str:
    by_code: dict = {}
    for f in new:
        by_code[f.code] = by_code.get(f.code, 0) + 1
    report = {
        "version": REPORT_VERSION,
        "files_scanned": files_scanned,
        "findings": [f.as_dict() for f in new],
        "baselined": [f.as_dict() for f in old],
        "counts": dict(sorted(by_code.items())),
        "ok": not new,
    }
    return json.dumps(report, indent=2, sort_keys=True)


def _render_sarif_report(new, old, files_scanned: int) -> str:
    return render_sarif(new, old, RULE_CATALOG)


_RENDERERS = {
    "text": _render_text,
    "json": _render_json,
    "sarif": _render_sarif_report,
}


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in RULE_CATALOG:
            print(f"{cls.code} {cls.name:18s} {cls.summary()}")
        return 0

    project_paths = None
    if args.changed:
        if args.paths:
            parser.error("--changed and explicit paths are exclusive")
        changed = _git_changed_files()
        if changed is None:
            print("error: --changed requires a git checkout",
                  file=sys.stderr)
            return 2
        if not changed:
            print("clean: no changed python files")
            return 0
        paths = changed
        project_paths = list(DEFAULT_PATHS)
    else:
        paths = args.paths or [p for p in DEFAULT_PATHS]

    try:
        findings, files_scanned = lint_paths(
            paths, select=args.select, ignore=args.ignore,
            project_paths=project_paths, cache_file=args.index_cache,
        )
    except ValueError as exc:  # unknown --select/--ignore codes
        parser.error(str(exc))
    except OSError as exc:
        print(f"error: cannot lint {exc.filename}: {exc.strerror}",
              file=sys.stderr)
        return 2
    if files_scanned == 0:
        print(f"error: no python files under: {' '.join(paths)}",
              file=sys.stderr)
        return 2

    if args.write_baseline:
        n = Baseline.write(args.baseline, findings)
        print(f"baseline: {n} finding{'s' if n != 1 else ''} "
              f"-> {args.baseline}")
        return 0

    try:
        new, old = Baseline.load(args.baseline).split(findings)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: bad baseline {args.baseline}: {exc}", file=sys.stderr)
        return 2

    report = _RENDERERS[args.format](new, old, files_scanned)
    print(report)
    if args.output:
        with open(args.output, "w") as fp:
            fp.write(report + "\n")
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
