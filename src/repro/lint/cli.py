"""``python -m repro lint`` — the determinism & simulation-safety gate.

Exit codes: 0 clean (or everything baselined/suppressed), 1 findings,
2 usage error. ``--format json`` emits the machine-readable report the
CI job uploads as an artifact (schema in docs/LINT.md).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.lint.baseline import Baseline
from repro.lint.engine import lint_paths
from repro.lint.rules import ALL_RULES, CODES

#: Default lint targets, relative to the invocation directory.
DEFAULT_PATHS = ("src/repro", "tests")
#: Default baseline location (missing file = empty baseline).
DEFAULT_BASELINE = "lint-baseline.json"
#: JSON report schema version.
REPORT_VERSION = 1


def _codes(value: str) -> list:
    return [c.strip().upper() for c in value.split(",") if c.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="AST-level determinism & simulation-safety checks "
                    "(REP001-REP008; see docs/LINT.md).",
    )
    parser.add_argument("paths", nargs="*",
                        help=f"files/directories (default: {' '.join(DEFAULT_PATHS)})")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--select", type=_codes, default=None, metavar="CODES",
                        help="comma-separated codes to run (default: all)")
    parser.add_argument("--ignore", type=_codes, default=None, metavar="CODES",
                        help="comma-separated codes to skip")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE, metavar="FILE",
                        help="baseline file of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE}; missing = empty)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write current findings to the baseline and exit 0")
    parser.add_argument("--output", metavar="FILE",
                        help="also write the report to FILE")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    return parser


def _render_text(new, old, files_scanned: int) -> str:
    lines = [f.render() for f in new]
    summary = (
        f"{len(new)} finding{'s' if len(new) != 1 else ''} "
        f"({len(old)} baselined) in {files_scanned} files"
    )
    lines.append(summary if new or old else f"clean: {files_scanned} files")
    return "\n".join(lines)


def _render_json(new, old, files_scanned: int) -> str:
    by_code: dict = {}
    for f in new:
        by_code[f.code] = by_code.get(f.code, 0) + 1
    report = {
        "version": REPORT_VERSION,
        "files_scanned": files_scanned,
        "findings": [f.as_dict() for f in new],
        "baselined": [f.as_dict() for f in old],
        "counts": dict(sorted(by_code.items())),
        "ok": not new,
    }
    return json.dumps(report, indent=2, sort_keys=True)


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in ALL_RULES:
            print(f"{cls.code} {cls.name:18s} {cls.summary()}")
        print("REP000 suppressions       Malformed "
              "'# repro: noqa[REPxxx] reason=...' directive (always on).")
        return 0

    paths = args.paths or [p for p in DEFAULT_PATHS]
    try:
        findings, files_scanned = lint_paths(
            paths, select=args.select, ignore=args.ignore
        )
    except ValueError as exc:  # unknown --select/--ignore codes
        parser.error(str(exc))
    except OSError as exc:
        print(f"error: cannot lint {exc.filename}: {exc.strerror}",
              file=sys.stderr)
        return 2
    if files_scanned == 0:
        print(f"error: no python files under: {' '.join(paths)}",
              file=sys.stderr)
        return 2

    if args.write_baseline:
        n = Baseline.write(args.baseline, findings)
        print(f"baseline: {n} finding{'s' if n != 1 else ''} "
              f"-> {args.baseline}")
        return 0

    try:
        new, old = Baseline.load(args.baseline).split(findings)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: bad baseline {args.baseline}: {exc}", file=sys.stderr)
        return 2

    render = _render_json if args.format == "json" else _render_text
    report = render(new, old, files_scanned)
    print(report)
    if args.output:
        with open(args.output, "w") as fp:
            fp.write(report + "\n")
    return 1 if new else 0


# Keep ``--select``'s error message in sync with the registry.
assert len(CODES) == len(ALL_RULES)

if __name__ == "__main__":
    sys.exit(main())
