"""Baseline files: grandfathered findings that do not fail the gate.

A baseline lets the CI gate turn on while pre-existing findings are
burned down incrementally. Entries are fingerprinted by
``(path, code, stripped source line)`` — stable across unrelated line
insertions — and matched as a multiset, so fixing one of two identical
violations on different lines removes exactly one entry's cover.

The committed baseline should trend toward empty; ``--write-baseline``
regenerates it from the current tree.
"""

from __future__ import annotations

import json
from collections import Counter

#: Schema version of the baseline file format.
VERSION = 1


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, entries=()) -> None:
        self._entries = Counter(tuple(e) for e in entries)

    def __len__(self) -> int:
        return sum(self._entries.values())

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        try:
            with open(path) as fp:
                data = json.load(fp)
        except FileNotFoundError:
            return cls()
        if data.get("version") != VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {data.get('version')!r}"
            )
        return cls(
            (e["path"], e["code"], e["source_line"])
            for e in data.get("findings", ())
        )

    @staticmethod
    def write(path: str, findings) -> int:
        """Write ``findings`` as the new baseline; returns the count."""
        entries = [
            {"path": f.path, "code": f.code, "source_line": f.source_line}
            for f in sorted(findings, key=lambda f: f.sort_key())
        ]
        with open(path, "w") as fp:
            json.dump({"version": VERSION, "findings": entries}, fp, indent=2,
                      sort_keys=True)
            fp.write("\n")
        return len(entries)

    def split(self, findings) -> tuple:
        """Partition ``findings`` into (new, grandfathered)."""
        budget = Counter(self._entries)
        new: list = []
        old: list = []
        for f in findings:
            fp = f.fingerprint()
            if budget[fp] > 0:
                budget[fp] -= 1
                old.append(f)
            else:
                new.append(f)
        return new, old
