"""REP110-REP113: the parallelism-safety audit.

ROADMAP item 1 executes node engines in parallel host processes with a
deterministic merge. Any state that is *process-wide* rather than
*per-Engine* — module globals, class attributes, singletons, caches —
is a cross-engine alias waiting to become a race (or, worse, a silent
divergence the merge cannot reconcile). These rules inventory exactly
that state and every function-code write to it, so the sharding
refactor starts from a machine-verified clean slate.

The two construction-time switchboards
(:data:`repro.lint.sources.STATE_BOUNDARY`) are the sanctioned
exception: they are read-only after configuration and are re-applied
per worker process by design.
"""

from __future__ import annotations

from repro.lint.findings import Severity
from repro.lint.sources import STATE_BOUNDARY
from repro.lint.visitor import ProjectRule


def _iter_writes(project):
    """Every recorded state write outside the sanctioned switchboards,
    classified against the project: yields ``(file index, write, kind,
    key, class name)`` with ``kind`` ``None`` for unresolved targets."""
    for path in sorted(project.files):
        if project.in_boundary(path, STATE_BOUNDARY):
            continue
        idx = project.files[path]
        for w in idx.writes:
            target = w.target
            if w.kind == "attr-store":
                target = target.rpartition(".")[0]
            owner = project.state_owner(target, idx)
            if owner is None:
                yield idx, w, None, "", ""
            else:
                yield idx, w, owner[0], owner[1], owner[2]


class ModuleStateRule(ProjectRule):
    """Module-level mutable state written from function code."""

    code = "REP110"
    name = "module-state"
    severity = Severity.WARNING

    def check(self, project, reporter) -> None:
        for idx, w, kind, key, _cls in _iter_writes(project):
            if w.kind == "global-rebind":
                reporter.report(
                    self, idx.path, w.line, w.col,
                    f"{w.scope} rebinds module global '{w.target}' — "
                    "process-wide state aliases across node engines; "
                    "key it per-Engine",
                )
            elif kind == "mutable" and w.kind in ("mutate", "subscript"):
                reporter.report(
                    self, idx.path, w.line, w.col,
                    f"{w.scope} writes module-level mutable '{key}' "
                    f"({w.display}) — shared across every engine in "
                    "this process; move it onto the Engine",
                )


class ClassAttrRule(ProjectRule):
    """Class-attribute mutation shared by every instance."""

    code = "REP111"
    name = "class-attr"
    severity = Severity.WARNING

    def check(self, project, reporter) -> None:
        for idx, w, _kind, _key, _cls in _iter_writes(project):
            if w.kind != "class-attr":
                continue
            reporter.report(
                self, idx.path, w.line, w.col,
                f"{w.scope} assigns class attribute {w.display} — "
                "writes through the class alias across every instance "
                "(and every engine); use an instance attribute",
            )
        for qual in sorted(project.classes):
            info = project.classes[qual]
            if project.in_boundary(info.path, STATE_BOUNDARY):
                continue
            for attr, line, col, display in info.self_mutations:
                if not project.mro_attr(qual, attr, "class_mutables"):
                    continue
                if project.mro_attr(qual, attr, "instance_assigned"):
                    continue  # shadowed per-instance somewhere in the MRO
                reporter.report(
                    self, info.path, line, col,
                    f"{display} mutates class-level mutable "
                    f"'{attr}' of {qual} — every instance shares one "
                    "container; initialize it per-instance in __init__",
                )


class SingletonRule(ProjectRule):
    """Process-wide singletons and caches not keyed per-Engine."""

    code = "REP112"
    name = "singleton-state"
    severity = Severity.WARNING

    def check(self, project, reporter) -> None:
        for qual in sorted(project.functions):
            fn = project.functions[qual]
            if not fn.cached:
                continue
            if project.in_boundary(fn.path, STATE_BOUNDARY):
                continue
            reporter.report(
                self, fn.path, fn.cached, 0,
                f"functools cache on {qual} is a process-wide memo "
                "table — entries computed by one engine leak into "
                "another; key the cache per-Engine or drop it",
            )
        for idx, w, kind, key, cls in _iter_writes(project):
            if kind != "singleton":
                continue
            if w.kind in ("attr-store", "mutate", "subscript"):
                reporter.report(
                    self, idx.path, w.line, w.col,
                    f"{w.scope} mutates module singleton '{key}' "
                    f"({cls}) via {w.display} — singleton state is "
                    "process-wide; key it per-Engine or configure it "
                    "once at construction",
                )


class LoopCaptureRule(ProjectRule):
    """Closure captures a loop variable by reference (late binding)."""

    code = "REP113"
    name = "loop-capture"
    severity = Severity.WARNING

    def check(self, project, reporter) -> None:
        for path in sorted(project.files):
            idx = project.files[path]
            for line, col, var, display in idx.captures:
                reporter.report(
                    self, path, line, col,
                    f"{display} captures loop variable '{var}' by "
                    "reference — all iterations share the final value; "
                    f"bind it as a default ({var}={var}) so each "
                    "closure owns its engine's copy",
                )
