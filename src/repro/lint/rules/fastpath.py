"""REP005 — fast-path gate hygiene.

Every ``repro.sim.fastpath`` flag guards a *semantics-preserving* hot
path, and ``repro.sim.fidelity``'s mode selects between storage-layout
twins under the same contract: docs/COSTMODEL.md requires each gated
branch to have a slow/detailed twin producing identical virtual end
times, counters, and traces, and the differential tests flip one flag
(or the fidelity mode) at a time. Two structural properties make that
auditable:

* a gated ``if`` must have an ``else`` (the twin), or its body must
  leave the function (``return``/``raise``/``continue``/``break``)
  so the fall-through code *is* the twin;
* gates must not nest — not even across the two switchboards: a
  fidelity gate inside a fast-path gate (or vice versa) cannot be
  isolated by single-flag differential testing.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.visitor import Rule

#: The switchboard objects a gate may read: call-time FASTPATH flags
#: and the construction-time FIDELITY mode.
GATE_QUALNAMES = (
    "repro.sim.fastpath.FASTPATH",
    "repro.sim.fidelity.FIDELITY",
)

#: Backward-compatible alias (pre-fidelity name).
FASTPATH_QUALNAME = GATE_QUALNAMES[0]

_TERMINAL = (ast.Return, ast.Raise, ast.Continue, ast.Break)


def mentions_fastpath(node: ast.AST, ctx) -> bool:
    """True when ``node``'s subtree reads a FASTPATH flag or the
    FIDELITY mode."""
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Name, ast.Attribute)):
            resolved = ctx.resolve(sub)
            if resolved is not None and resolved.startswith(GATE_QUALNAMES):
                return True
    return False


class FastpathGateRule(Rule):
    """FASTPATH-gated if without a slow twin, or nested under a gate."""

    code = "REP005"
    name = "fastpath-gate"
    severity = Severity.ERROR

    def visit_If(self, node: ast.If, ctx) -> None:
        if not mentions_fastpath(node.test, ctx):
            return
        for ancestor in ctx.ancestors:
            if isinstance(ancestor, ast.If) \
                    and mentions_fastpath(ancestor.test, ctx):
                ctx.report(
                    self, node,
                    "fast-path gate nested under another fast-path gate — "
                    "single-flag differential tests cannot isolate it",
                )
                return
        if node.orelse:
            return
        if isinstance(node.body[-1], _TERMINAL):
            return  # fall-through code is the slow twin
        ctx.report(
            self, node,
            "fast-path gate has no slow twin — add an else branch, or end "
            "the gated body with return/raise so the fall-through is the "
            "slow path",
        )
