"""The rule battery: one class per REPxxx code.

Adding a rule = write a :class:`~repro.lint.visitor.Rule` subclass with
``visit_<NodeType>`` handlers, import it here, append it to
:data:`ALL_RULES`, document it in docs/LINT.md, and add a fixture pair
to tests/lint/test_rules.py. The meta-rule REP000 (malformed
suppressions) lives in :mod:`repro.lint.noqa` and is always on.
"""

from __future__ import annotations

from repro.lint.rules.defaults import MutableDefaultRule
from repro.lint.rules.engine import EngineDisciplineRule
from repro.lint.rules.fastpath import FastpathGateRule
from repro.lint.rules.floateq import FloatEqualityRule
from repro.lint.rules.handlers import HandlerHygieneRule
from repro.lint.rules.iteration import IterationOrderRule
from repro.lint.rules.randomness import RandomnessRule
from repro.lint.rules.wallclock import WallclockRule

#: Every registered rule class, in code order.
ALL_RULES = (
    WallclockRule,       # REP001
    RandomnessRule,      # REP002
    IterationOrderRule,  # REP003
    FloatEqualityRule,   # REP004
    FastpathGateRule,    # REP005
    EngineDisciplineRule,  # REP006
    HandlerHygieneRule,  # REP007
    MutableDefaultRule,  # REP008
)

CODES = tuple(r.code for r in ALL_RULES)


def make_rules(select=None, ignore=None) -> list:
    """Instantiate the battery, filtered by code.

    ``select``/``ignore`` are iterables of REPxxx codes; unknown codes
    raise ValueError so a typo'd ``--select`` cannot silently lint
    nothing.
    """
    known = set(CODES)
    for name, codes in (("select", select), ("ignore", ignore)):
        bad = sorted(set(codes or ()) - known)
        if bad:
            raise ValueError(f"unknown {name} codes: {', '.join(bad)}")
    chosen = set(select) if select else known
    chosen -= set(ignore or ())
    return [cls() for cls in ALL_RULES if cls.code in chosen]
