"""The rule battery: one class per REPxxx code.

Two tiers share one namespace. **Per-file rules** (REP0xx,
:class:`~repro.lint.visitor.Rule`) run in a single AST walk per file.
**Project rules** (REP1xx, :class:`~repro.lint.visitor.ProjectRule`)
run once over the merged call-graph index after every file is parsed.

Adding a rule = write the class, import it here, append it to
:data:`ALL_RULES` or :data:`PROJECT_RULES`, document it in
docs/LINT.md, and add a fixture pair to tests/lint/test_rules.py (or
test_project.py). The meta-rule REP000 (malformed/stale suppressions)
lives in :mod:`repro.lint.noqa` and is always on.
"""

from __future__ import annotations

from repro.lint.rules.defaults import MutableDefaultRule
from repro.lint.rules.engine import EngineDisciplineRule
from repro.lint.rules.fastpath import FastpathGateRule
from repro.lint.rules.floateq import FloatEqualityRule
from repro.lint.rules.handlers import HandlerHygieneRule
from repro.lint.rules.iteration import IterationOrderRule
from repro.lint.rules.randomness import RandomnessRule
from repro.lint.rules.sharedstate import (
    ClassAttrRule,
    LoopCaptureRule,
    ModuleStateRule,
    SingletonRule,
)
from repro.lint.rules.taint import (
    AddressDependenceRule,
    EntropyTaintRule,
    EnvReadRule,
    WallclockTaintRule,
)
from repro.lint.rules.wallclock import WallclockRule

#: Every per-file rule class, in code order.
ALL_RULES = (
    WallclockRule,       # REP001
    RandomnessRule,      # REP002
    IterationOrderRule,  # REP003
    FloatEqualityRule,   # REP004
    FastpathGateRule,    # REP005
    EngineDisciplineRule,  # REP006
    HandlerHygieneRule,  # REP007
    MutableDefaultRule,  # REP008
)

#: Every whole-program rule class, in code order.
PROJECT_RULES = (
    WallclockTaintRule,      # REP101
    EntropyTaintRule,        # REP102
    EnvReadRule,             # REP103
    AddressDependenceRule,   # REP104
    ModuleStateRule,         # REP110
    ClassAttrRule,           # REP111
    SingletonRule,           # REP112
    LoopCaptureRule,         # REP113
)

FILE_CODES = tuple(r.code for r in ALL_RULES)
PROJECT_CODES = tuple(r.code for r in PROJECT_RULES)
CODES = FILE_CODES + PROJECT_CODES


def _chosen(select, ignore) -> set:
    """Validate ``select``/``ignore`` against the full battery.

    Unknown codes raise ValueError so a typo'd ``--select`` cannot
    silently lint nothing.
    """
    known = set(CODES)
    for name, codes in (("select", select), ("ignore", ignore)):
        bad = sorted(set(codes or ()) - known)
        if bad:
            raise ValueError(f"unknown {name} codes: {', '.join(bad)}")
    chosen = set(select) if select else known
    chosen -= set(ignore or ())
    return chosen


def make_rules(select=None, ignore=None) -> list:
    """Instantiate the per-file battery, filtered by code."""
    chosen = _chosen(select, ignore)
    return [cls() for cls in ALL_RULES if cls.code in chosen]


def make_project_rules(select=None, ignore=None) -> list:
    """Instantiate the whole-program battery, filtered by code."""
    chosen = _chosen(select, ignore)
    return [cls() for cls in PROJECT_RULES if cls.code in chosen]
