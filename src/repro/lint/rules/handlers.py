"""REP007 — protocol-handler exception hygiene.

XEMEM's failure semantics (PR 4) depend on every swallowed error being
*accounted for*: timeouts retry with backoff, stray messages bump
counters, crashes fail waiters. A bare/broad ``except`` that neither
re-raises nor counts silently eats ``XememTimeout`` and protocol errors
— the fault-injection suite then passes while recovery is broken.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.visitor import Rule

#: Exception types considered "broad": everything flows through them.
BROAD = frozenset({"Exception", "BaseException"})

#: Method names whose call marks the handler as accounting for the
#: error (observability counters / samplers).
COUNTING_CALLS = frozenset({"inc", "observe", "record"})


def _named(node: ast.AST) -> str:
    """Rightmost identifier of a Name/Attribute exception type."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_broad(type_node) -> bool:
    if type_node is None:
        return True  # bare except:
    if isinstance(type_node, ast.Tuple):
        return any(_named(e) in BROAD for e in type_node.elts)
    return _named(type_node) in BROAD


def _accounts(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or counts what it swallowed."""
    for sub in ast.walk(handler):
        if isinstance(sub, ast.Raise):
            return True
        if (isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in COUNTING_CALLS):
            return True
    return False


class HandlerHygieneRule(Rule):
    """Bare/broad except that neither re-raises nor counts."""

    code = "REP007"
    name = "handler-hygiene"
    severity = Severity.ERROR

    def visit_ExceptHandler(self, node: ast.ExceptHandler, ctx) -> None:
        if not _is_broad(node.type):
            return
        if _accounts(node):
            return
        what = "bare except:" if node.type is None else \
            f"except {_named(node.type) or '...'}"
        ctx.report(
            self, node,
            f"{what} swallows XememTimeout/protocol errors without counting "
            "or re-raising — catch the specific type, re-raise, or bump an "
            "obs counter",
        )
