"""REP101-REP104: interprocedural nondeterminism taint.

The per-file rules (REP001/REP002) catch a direct ``time.time()`` or
unseeded RNG at its call site; these whole-program rules catch the
helper *one call away* — any function that transitively reaches a
source without a sanctioned boundary is flagged at the offending call
edge, with the full propagation chain attached to the finding.

Sanctions are structural, not cosmetic: a module listed as the
category's boundary (:mod:`repro.lint.sources`) absorbs the taint, and
a reasoned same-line noqa for the category (or its per-file twin)
declares that the nondeterminism does not leak — the taint pass treats
it as a cut, so one sanctioned site does not force suppressions up the
whole call chain.
"""

from __future__ import annotations

from repro.lint.findings import Severity
from repro.lint.sources import TAINT_CATEGORIES
from repro.lint.visitor import ProjectRule


class _TaintRule(ProjectRule):
    """Shared machinery: direct-source findings + tainted call edges."""

    #: human name of the nondeterminism category for messages
    noun: str = ""
    #: whether this rule also reports the direct source sites (the
    #: categories without a per-file twin rule: env reads, id/hash)
    direct = False

    def check(self, project, reporter) -> None:
        code = self.code
        boundaries = TAINT_CATEGORIES[code][1]
        tainted = project.taint(code)
        for qual in sorted(project.functions):
            fn = project.functions[qual]
            if project.in_boundary(fn.path, boundaries):
                continue
            if self.direct:
                for line, col, label in sorted(fn.taints.get(code, ())):
                    reporter.report(
                        self, fn.path, line, col,
                        f"{label}: direct {self.noun} in {qual} — "
                        f"{self.remedy}",
                    )
            for site in fn.calls:
                callee = project.resolve_callee(site.callee)
                if callee is None or callee not in tainted:
                    continue
                chain = ((fn.path, site.line, f"{qual} calls {site.display}"),
                         ) + project.chain(callee, code)
                source = chain[-1][2].rpartition("source ")[2]
                reporter.report(
                    self, fn.path, site.line, site.col,
                    f"call to {site.display} transitively reaches "
                    f"{self.noun} ({source}, {len(chain) - 1} call"
                    f"{'s' if len(chain) - 1 != 1 else ''} away)",
                    chain=chain,
                )


class WallclockTaintRule(_TaintRule):
    """Call path reaches host wallclock outside the obs profiler."""

    code = "REP101"
    name = "wallclock-taint"
    severity = Severity.ERROR
    noun = "a host-wallclock read"
    remedy = "use the engine's virtual clock"


class EntropyTaintRule(_TaintRule):
    """Call path reaches unseeded randomness or OS entropy."""

    code = "REP102"
    name = "entropy-taint"
    severity = Severity.ERROR
    noun = "unseeded randomness"
    remedy = "draw from a seeded per-engine stream"


class EnvReadRule(_TaintRule):
    """Environment read outside the fastpath/fidelity switchboards."""

    code = "REP103"
    name = "env-read"
    severity = Severity.ERROR
    direct = True
    noun = "an environment read"
    remedy = ("behaviour must come from explicit arguments so runs "
              "replay from their config; env switches belong in "
              "repro.sim.fastpath / repro.sim.fidelity")


class AddressDependenceRule(_TaintRule):
    """id()/hash() dependence: values differ across host processes."""

    code = "REP104"
    name = "address-dependence"
    severity = Severity.WARNING
    direct = True
    noun = "an id()/hash() value"
    remedy = ("id() is a memory address and str hash() is salted per "
              "process — key by a stable name instead (sharded node "
              "engines cannot share either)")
