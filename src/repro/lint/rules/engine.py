"""REP006 — event-engine discipline.

Determinism hinges on the engine's ``(time, seq)`` heap ordering and on
virtual time only ever advancing inside :meth:`Engine.step`. Direct
``heapq`` calls or ``_queue`` pokes outside ``sim/engine.py`` can break
the seq tiebreaker (same-instant events firing out of scheduling
order); assigning ``engine.now`` anywhere forges time itself.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.visitor import Rule

#: The one file allowed to touch the queue and the clock.
ENGINE_FILE = ("repro/sim/engine.py",)


class EngineDisciplineRule(Rule):
    """heapq / Engine._queue / Engine.now mutation outside the engine."""

    code = "REP006"
    name = "engine-discipline"
    severity = Severity.ERROR

    def visit_Call(self, node: ast.Call, ctx) -> None:
        if ctx.path_is(*ENGINE_FILE):
            return
        target = ctx.resolved_call(node)
        if target is not None and target.startswith("heapq."):
            ctx.report(
                self, node,
                f"{target}() outside sim/engine.py — event ordering must go "
                "through Engine.call_at/call_after (the seq tiebreaker lives "
                "there)",
            )

    def visit_Attribute(self, node: ast.Attribute, ctx) -> None:
        if ctx.path_is(*ENGINE_FILE):
            return
        if node.attr == "_queue":
            ctx.report(
                self, node,
                "._queue is the engine's private heap — use "
                "Engine.call_at/queue_len instead of direct mutation",
            )

    def _check_target(self, ctx, target: ast.AST) -> None:
        if isinstance(target, ast.Attribute) and target.attr == "now":
            ctx.report(
                self, target,
                ".now assignment outside sim/engine.py — virtual time only "
                "advances when the engine dispatches events",
            )

    def visit_Assign(self, node: ast.Assign, ctx) -> None:
        if ctx.path_is(*ENGINE_FILE):
            return
        for target in node.targets:
            self._check_target(ctx, target)

    def visit_AugAssign(self, node: ast.AugAssign, ctx) -> None:
        if not ctx.path_is(*ENGINE_FILE):
            self._check_target(ctx, node.target)
