"""REP001 — wallclock reads outside the allowlisted profiler module.

The simulator's whole determinism contract rests on the virtual clock
(``Engine.now``): identical runs produce byte-identical traces, figures,
and fault schedules. Any host-time read that can reach simulation state
breaks that silently. The only sanctioned consumer is the opt-in
wallclock profiler in ``repro.obs.engine_hooks``, whose output never
enters traces or metrics.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.sources import WALLCLOCK_BOUNDARY, WALLCLOCK_CALLS
from repro.lint.visitor import Rule

#: Files allowed to read host time without a suppression. The source
#: table itself lives in :mod:`repro.lint.sources`, shared with the
#: whole-program taint pass (REP101) so the two layers cannot drift.
ALLOWLIST = WALLCLOCK_BOUNDARY


class WallclockRule(Rule):
    """Host-time call outside the sanctioned profiler module."""

    code = "REP001"
    name = "wallclock"
    severity = Severity.ERROR

    def visit_Call(self, node: ast.Call, ctx) -> None:
        if ctx.path_is(*ALLOWLIST):
            return
        target = ctx.resolved_call(node)
        if target in WALLCLOCK_CALLS:
            ctx.report(
                self, node,
                f"wallclock read {target}() — simulation code must use the "
                "virtual clock (Engine.now); host time is allowed only in "
                "repro.obs.engine_hooks",
            )
