"""REP002 — unseeded or process-global randomness.

Reproducible fault plans and workloads draw from *owned, seeded*
generators (``random.Random(plan.seed)``, ``np.random.default_rng(seed)``)
consumed in virtual-clock event order. The process-global ``random``
module functions share one hidden stream across every caller — adding a
draw anywhere reorders everyone else's — and OS-entropy sources
(``os.urandom``, ``uuid.uuid4``, ``secrets``) are nondeterministic by
design.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.sources import (
    ENTROPY_CALLS,
    GLOBAL_RANDOM_FNS,
    SEEDED_CTORS,
    has_seed as _has_seed,
)
from repro.lint.visitor import Rule

# The source tables live in :mod:`repro.lint.sources`, shared with the
# whole-program taint pass (REP102) so the two layers cannot drift.


class RandomnessRule(Rule):
    """Global random module, unseeded generator, or OS entropy source."""

    code = "REP002"
    name = "randomness"
    severity = Severity.ERROR

    def visit_Call(self, node: ast.Call, ctx) -> None:
        target = ctx.resolved_call(node)
        if target is None:
            return
        if target in ENTROPY_CALLS or target.startswith("secrets."):
            ctx.report(
                self, node,
                f"{target}() draws OS entropy — runs can never be replayed; "
                "derive values from the plan seed instead",
            )
            return
        mod, _, fn = target.rpartition(".")
        if mod == "random" and fn in GLOBAL_RANDOM_FNS:
            ctx.report(
                self, node,
                f"random.{fn}() uses the process-global RNG — own a seeded "
                "random.Random(seed) so streams cannot interleave",
            )
            return
        if target in SEEDED_CTORS:
            if target == "random.SystemRandom":
                ctx.report(self, node,
                           "random.SystemRandom is OS entropy — unseedable")
            elif not _has_seed(node):
                ctx.report(
                    self, node,
                    f"{target}() without a seed falls back to OS entropy — "
                    "pass the plan/workload seed explicitly",
                )
