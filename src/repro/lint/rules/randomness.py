"""REP002 — unseeded or process-global randomness.

Reproducible fault plans and workloads draw from *owned, seeded*
generators (``random.Random(plan.seed)``, ``np.random.default_rng(seed)``)
consumed in virtual-clock event order. The process-global ``random``
module functions share one hidden stream across every caller — adding a
draw anywhere reorders everyone else's — and OS-entropy sources
(``os.urandom``, ``uuid.uuid4``, ``secrets``) are nondeterministic by
design.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.visitor import Rule

#: The global-RNG module functions (shared hidden state).
GLOBAL_RANDOM_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

#: Constructors that must receive an explicit seed.
SEEDED_CTORS = frozenset({
    "random.Random",
    "random.SystemRandom",  # never seedable — flagged outright below
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
})

#: OS-entropy sources: nondeterministic regardless of seeding.
ENTROPY_CALLS = frozenset({"os.urandom", "uuid.uuid4", "uuid.uuid1"})


def _has_seed(node: ast.Call) -> bool:
    """True when the constructor call passes any seed-like argument."""
    if node.args and not any(
        isinstance(a, ast.Constant) and a.value is None for a in node.args[:1]
    ):
        return True
    return any(kw.arg in ("seed", "x") for kw in node.keywords)


class RandomnessRule(Rule):
    """Global random module, unseeded generator, or OS entropy source."""

    code = "REP002"
    name = "randomness"
    severity = Severity.ERROR

    def visit_Call(self, node: ast.Call, ctx) -> None:
        target = ctx.resolved_call(node)
        if target is None:
            return
        if target in ENTROPY_CALLS or target.startswith("secrets."):
            ctx.report(
                self, node,
                f"{target}() draws OS entropy — runs can never be replayed; "
                "derive values from the plan seed instead",
            )
            return
        mod, _, fn = target.rpartition(".")
        if mod == "random" and fn in GLOBAL_RANDOM_FNS:
            ctx.report(
                self, node,
                f"random.{fn}() uses the process-global RNG — own a seeded "
                "random.Random(seed) so streams cannot interleave",
            )
            return
        if target in SEEDED_CTORS:
            if target == "random.SystemRandom":
                ctx.report(self, node,
                           "random.SystemRandom is OS entropy — unseedable")
            elif not _has_seed(node):
                ctx.report(
                    self, node,
                    f"{target}() without a seed falls back to OS entropy — "
                    "pass the plan/workload seed explicitly",
                )
