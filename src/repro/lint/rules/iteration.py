"""REP003 — iteration whose order the language does not pin down.

Sets and ``vars()``/``__dict__`` views iterate in hash order; directory
listings come back in filesystem order. When such an order reaches
simulation state (event scheduling, frame allocation, report rows), two
hosts — or two interpreter invocations with a different
``PYTHONHASHSEED`` — replay differently. Dicts are insertion-ordered
and are fine; the fix is almost always ``sorted(...)`` at the loop
header.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.visitor import Rule

#: Callables producing unordered collections.
UNORDERED_CALLS = frozenset({"set", "frozenset", "vars"})

#: Directory-listing calls whose result order is filesystem-dependent.
LISTING_CALLS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})

#: Order-insensitive consumers: wrapping in one of these launders the
#: hazard (sorted pins the order; the reductions ignore it).
ORDER_SAFE_WRAPPERS = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset",
})

_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


def is_unordered_expr(node: ast.AST) -> bool:
    """True when ``node`` syntactically yields an unordered collection."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Attribute) and node.attr == "__dict__":
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        if isinstance(fn, ast.Name) and fn.id in UNORDERED_CALLS:
            return True
        # set-algebra methods on a set-typed receiver we can prove
        if (isinstance(fn, ast.Attribute)
                and fn.attr in ("union", "intersection", "difference",
                                "symmetric_difference")
                and is_unordered_expr(fn.value)):
            return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return is_unordered_expr(node.left) or is_unordered_expr(node.right)
    return False


class IterationOrderRule(Rule):
    """Iterating a set / vars() / unsorted directory listing."""

    code = "REP003"
    name = "iteration-order"
    severity = Severity.WARNING

    def _flag(self, ctx, node: ast.AST, what: str) -> None:
        ctx.report(
            self, node,
            f"iterating {what} — order is interpreter/filesystem dependent "
            "and can reach simulation state; wrap in sorted(...)",
        )

    def _check_iter(self, ctx, iter_node: ast.AST) -> None:
        if is_unordered_expr(iter_node):
            self._flag(ctx, iter_node, "an unordered set/vars() expression")

    def visit_For(self, node: ast.For, ctx) -> None:
        self._check_iter(ctx, node.iter)

    def visit_comprehension(self, node: ast.comprehension, ctx) -> None:
        self._check_iter(ctx, node.iter)

    def visit_Call(self, node: ast.Call, ctx) -> None:
        target = ctx.resolved_call(node)
        # list(<set>) / tuple(<set>) / enumerate(<set>) materialize the
        # unordered order; sorted(<set>) et al. are the sanctioned fix.
        fn = node.func
        if (isinstance(fn, ast.Name) and fn.id in ("list", "tuple", "enumerate")
                and node.args and is_unordered_expr(node.args[0])):
            self._flag(ctx, node, f"{fn.id}() over a set/vars() expression")
            return
        if target in LISTING_CALLS:
            parent = ctx.parent()
            if (isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id in ORDER_SAFE_WRAPPERS):
                return
            self._flag(ctx, node, f"{target}() output unsorted")
