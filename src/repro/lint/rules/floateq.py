"""REP004 — float equality in runtime arithmetic.

Cost-model math mixes integer nanoseconds with float rates; branching on
``==``/``!=`` against a float makes control flow depend on the last ulp
of an intermediate — the classic source of results that differ across
numpy versions or C libraries. ``assert`` statements are exempt by
design: exact-equality asserts *are* this repo's determinism contract
(byte-identical replay checks), and a failing assert is a loud test
failure, not a silent behavioral fork.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.visitor import Rule


def _is_floatish(node: ast.AST) -> bool:
    """Syntactically certain to be a float: literal, float(), or division."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "float":
        return True
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    return False


class FloatEqualityRule(Rule):
    """== / != against a float expression outside an assert."""

    code = "REP004"
    name = "float-equality"
    severity = Severity.WARNING

    def visit_Compare(self, node: ast.Compare, ctx) -> None:
        if ctx.in_assert():
            return
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_floatish(left) or _is_floatish(right):
                ctx.report(
                    self, node,
                    "float ==/!= in runtime code — branch on truthiness, an "
                    "integer representation, or an explicit tolerance",
                )
                return
