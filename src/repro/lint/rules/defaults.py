"""REP008 — mutable default arguments.

A mutable default is evaluated once at ``def`` time and shared across
every call — state leaks between supposedly independent simulations
(two rigs sharing one accidental cache is exactly the cross-run
contamination the differential tests cannot see). Use ``None`` plus an
in-body default, or ``dataclasses.field(default_factory=...)``.
"""

from __future__ import annotations

import ast

from repro.lint.findings import Severity
from repro.lint.visitor import Rule

#: Constructor calls whose result is mutable (beyond the display forms).
MUTABLE_CTORS = frozenset({
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "collections.OrderedDict",
    "collections.Counter", "collections.deque",
})

_MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)


def _is_mutable(node: ast.AST, ctx) -> bool:
    if isinstance(node, _MUTABLE_DISPLAYS):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in MUTABLE_CTORS:
            return True
        resolved = ctx.resolved_call(node)
        return resolved in MUTABLE_CTORS
    return False


class MutableDefaultRule(Rule):
    """Mutable default argument (shared across all calls)."""

    code = "REP008"
    name = "mutable-default"
    severity = Severity.ERROR

    def _check(self, node, ctx) -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None and _is_mutable(default, ctx):
                ctx.report(
                    self, default,
                    "mutable default argument is shared across calls — use "
                    "None and default inside the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef, ctx) -> None:
        self._check(node, ctx)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef, ctx) -> None:
        self._check(node, ctx)

    def visit_Lambda(self, node: ast.Lambda, ctx) -> None:
        self._check(node, ctx)
