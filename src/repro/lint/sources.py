"""Shared nondeterminism-source tables and sanctioned boundaries.

One place declares what "nondeterministic" means, consumed from both
directions: the per-file rules (REP001/REP002) flag a *direct* read at
its call site, and the whole-program taint pass (REP101-REP104) flags
every function that *transitively* reaches one through the call graph.
Keeping the tables here means the two layers can never disagree about
what counts as a source.

Each taint category also names its **sanctioned boundaries** — modules
whose job is to absorb the nondeterminism (the opt-in wallclock
profiler, the env-reading switchboards). Functions in a sanctioned
module neither seed nor propagate that category's taint.
"""

from __future__ import annotations

import ast

# ---------------------------------------------------------------------------
# Wallclock (REP001 direct / REP101 transitive)
# ---------------------------------------------------------------------------

#: Host-time entry points. Resolution is import-aware, so
#: ``from time import perf_counter as pc; pc()`` is still caught.
WALLCLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.clock_gettime",
    "time.clock_gettime_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: Modules allowed to read host time: the opt-in wallclock profiler,
#: whose output never enters traces or metrics.
WALLCLOCK_BOUNDARY = ("repro/obs/engine_hooks.py",)

# ---------------------------------------------------------------------------
# Randomness / OS entropy (REP002 direct / REP102 transitive)
# ---------------------------------------------------------------------------

#: The global-RNG module functions (shared hidden state).
GLOBAL_RANDOM_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

#: Constructors that must receive an explicit seed.
SEEDED_CTORS = frozenset({
    "random.Random",
    "random.SystemRandom",  # never seedable — flagged outright
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.Generator",
})

#: OS-entropy sources: nondeterministic regardless of seeding.
ENTROPY_CALLS = frozenset({"os.urandom", "uuid.uuid4", "uuid.uuid1"})

#: No module is sanctioned to draw unseeded randomness.
ENTROPY_BOUNDARY = ()


def has_seed(node: ast.Call) -> bool:
    """True when a seeded-constructor call passes a seed-like argument."""
    if node.args and not any(
        isinstance(a, ast.Constant) and a.value is None for a in node.args[:1]
    ):
        return True
    return any(kw.arg in ("seed", "x") for kw in node.keywords)


def entropy_source_name(node: ast.Call, resolved: str) -> str:
    """The source label when ``node`` is an entropy/randomness source,
    else ``""``.

    Mirrors the REP002 classification exactly: OS entropy, the
    process-global ``random`` module functions, and unseeded seeded-
    constructor calls count; an explicitly seeded constructor does not.
    """
    if resolved in ENTROPY_CALLS or resolved.startswith("secrets."):
        return resolved
    mod, _, fn = resolved.rpartition(".")
    if mod == "random" and fn in GLOBAL_RANDOM_FNS:
        return resolved
    if resolved in SEEDED_CTORS:
        if resolved == "random.SystemRandom" or not has_seed(node):
            return resolved
    return ""

# ---------------------------------------------------------------------------
# Environment reads (REP103, direct + transitive)
# ---------------------------------------------------------------------------

#: Direct env-value reads. ``dict(os.environ)`` — passing the whole
#: environment to a subprocess — is deliberately *not* a source; the
#: hazard is branching simulation behaviour on a specific variable.
ENV_READ_CALLS = frozenset({"os.getenv"})
ENV_MAPPING = frozenset({"os.environ", "os.environb"})
ENV_MAPPING_READERS = frozenset({"get", "items", "keys", "values", "copy"})

#: The construction-time switchboards are the sanctioned place for env
#: configuration (docs/COSTMODEL.md); everything else derives behaviour
#: from explicit arguments so runs are replayable from their config.
ENV_BOUNDARY = ("repro/sim/fastpath.py", "repro/sim/fidelity.py")

# ---------------------------------------------------------------------------
# Address/hash-seed dependence (REP104, direct + transitive)
# ---------------------------------------------------------------------------

#: Builtins whose value depends on the process memory map (``id``) or
#: on ``PYTHONHASHSEED`` (``hash`` of str/bytes/composites). Values are
#: meaningless across host processes — exactly what sharded node
#: engines with a deterministic merge cannot tolerate.
ADDRESS_CALLS = frozenset({"id", "hash"})

ADDRESS_BOUNDARY = ()

# ---------------------------------------------------------------------------
# Shared-state audit (REP110-REP113)
# ---------------------------------------------------------------------------

#: Modules allowed to own and mutate process-wide state: the two
#: construction-time switchboards. Everything else must key state
#: per-``Engine`` so node engines can run in parallel host processes
#: (ROADMAP item 1) without cross-engine aliasing.
STATE_BOUNDARY = ("repro/sim/fastpath.py", "repro/sim/fidelity.py")

# ---------------------------------------------------------------------------
# Category registry for the taint pass
# ---------------------------------------------------------------------------

#: code -> (per-file twin code or None, boundary path suffixes).
#: A line carrying a reasoned suppression of the twin code (REP001 /
#: REP002) is a declared boundary, so the whole-program pass does not
#: re-taint through it.
TAINT_CATEGORIES = {
    "REP101": ("REP001", WALLCLOCK_BOUNDARY),
    "REP102": ("REP002", ENTROPY_BOUNDARY),
    "REP103": (None, ENV_BOUNDARY),
    "REP104": (None, ADDRESS_BOUNDARY),
}
