"""The lint driver: files in, findings out — in two phases.

Phase 1 (**index**) parses every file in the project scope once,
building a serializable :class:`~repro.lint.index.FileIndex` per file
(symbols, call sites, nondeterminism sources, shared-state facts).
Indexes are cacheable keyed on the source sha256, which is what lets
CI skip re-indexing unchanged files.

Phase 2 (**analyze**) merges the indexes into a
:class:`~repro.lint.project.ProjectIndex` (the call graph), runs the
whole-program REP1xx rules over it, runs the per-file REP0xx rules
over each *target* file's tree, then applies suppression centrally:
one noqa pass covers both tiers, marks used directives, and reports
stale ones (REP000).

Targets vs. project scope: findings are only reported for target
files, but the call graph can be wider — ``repro lint --changed``
analyzes just the diffed files against the full project graph, so a
changed helper still sees its unchanged callers.

This is the library surface the CLI and the test suite share:
:func:`lint_source` for one blob (fixture tests — a one-file project),
:func:`lint_paths` for files/directories.
"""

from __future__ import annotations

import ast
import json
import os

from repro.lint import noqa as noqa_mod
from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.index import FileIndex, build_file_index, source_sha
from repro.lint.project import ProjectIndex
from repro.lint.rules import ALL_RULES, _chosen, make_project_rules
from repro.lint.visitor import run_rules

#: Directories never descended into.
SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".hypothesis", ".pytest_cache", "build",
})

#: Index-cache file schema version.
CACHE_VERSION = 1


class ProjectReporter:
    """Finding sink for project rules: anchors to source lines."""

    def __init__(self, lines_by_path: dict) -> None:
        self._lines = lines_by_path
        self.findings: list = []

    def report(self, rule, path: str, line: int, col: int, message: str,
               chain=()) -> None:
        lines = self._lines.get(path, ())
        text = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        self.findings.append(
            Finding(rule.code, message, path, line, col, rule.severity,
                    source_line=text, chain=tuple(chain))
        )


class _Workspace:
    """Everything both phases track for one lint run."""

    def __init__(self) -> None:
        self.sources: dict = {}  #: path -> source text
        self.lines: dict = {}  #: path -> source lines
        self.trees: dict = {}  #: path -> parsed AST (target files)
        self.directives: dict = {}  #: path -> {line: Directive}
        self.malformed: dict = {}  #: path -> [REP000 findings]
        self.broken: dict = {}  #: path -> syntax-error finding
        self.project = ProjectIndex()

    def load(self, path: str, source: str, is_target: bool,
             cache_entry=None) -> None:
        """Phase-1 intake of one file (from disk or a string)."""
        self.sources[path] = source
        self.lines[path] = source.splitlines()
        sha = source_sha(source)
        if not is_target and cache_entry is not None \
                and cache_entry.get("sha256") == sha:
            self.project.add(FileIndex.from_dict(cache_entry["index"]),
                             cached=True)
            return
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            if is_target:
                self.broken[path] = Finding(
                    noqa_mod.META_CODE, f"syntax error: {exc.msg}", path,
                    exc.lineno or 1, (exc.offset or 1) - 1, Severity.ERROR,
                )
            return
        directives, malformed = noqa_mod.scan(source, path)
        if is_target:
            self.trees[path] = tree
            self.directives[path] = directives
            self.malformed[path] = malformed
        self.project.add(
            build_file_index(path, source, tree, directives),
            cached=False,
        )


def _analyze(ws: _Workspace, targets, select, ignore) -> list:
    """Phase 2: project rules + per-file rules + central noqa."""
    active = _chosen(select, ignore)

    project_findings: dict = {}
    reporter = ProjectReporter(ws.lines)
    for rule in make_project_rules(select=select, ignore=ignore):
        rule.check(ws.project, reporter)
    for f in reporter.findings:
        project_findings.setdefault(f.path, []).append(f)

    file_rule_classes = [cls for cls in ALL_RULES if cls.code in active]
    out: list = []
    for path in targets:
        if path in ws.broken:
            out.append(ws.broken[path])
            continue
        if path not in ws.trees:
            continue
        ctx = FileContext(path, ws.sources[path], ws.trees[path])
        raw = run_rules(ctx, [cls() for cls in file_rule_classes])
        raw.extend(project_findings.get(path, ()))
        directives = ws.directives.get(path, {})
        kept, _suppressed = noqa_mod.apply(raw, directives)
        kept.extend(ws.malformed.get(path, ()))
        kept.extend(
            noqa_mod.stale_findings(directives, active, path, ws.lines[path])
        )
        out.extend(kept)
    return sorted(out, key=lambda f: f.sort_key())


def lint_source(source: str, path: str = "<string>", select=None,
                ignore=None) -> list:
    """Lint one source blob as a one-file project; sorted findings.

    Both tiers run — per-file rules on the tree, project rules on the
    single-file call graph — so fixture tests exercise the same
    pipeline as a full run. Syntax errors come back as a single REP000
    finding rather than an exception, so one unparseable file cannot
    hide the rest of a run.
    """
    ws = _Workspace()
    ws.load(path, source, is_target=True)
    return _analyze(ws, [path], select, ignore)


def iter_python_files(paths) -> list:
    """Expand files/directories into a sorted list of ``.py`` files.

    Sorted traversal keeps finding order — and therefore text/JSON
    output — byte-identical across filesystems (the linter holds itself
    to REP003). Paths are normalized so the same file discovered via
    different spellings (``app.py`` vs ``./app.py``) dedupes instead of
    indexing twice.
    """
    out: list = []
    for root_path in paths:
        if os.path.isfile(root_path):
            out.append(os.path.normpath(root_path))
            continue
        for dirpath, dirnames, filenames in os.walk(root_path):
            dirnames[:] = sorted(d for d in dirnames if d not in SKIP_DIRS)
            out.extend(
                os.path.normpath(os.path.join(dirpath, name))
                for name in sorted(filenames)
                if name.endswith(".py")
            )
    return sorted(dict.fromkeys(out))


def lint_paths(paths, select=None, ignore=None, project_paths=None,
               cache_file=None, stats=None) -> tuple:
    """Lint every ``.py`` file under ``paths``.

    ``project_paths`` widens the *call-graph* scope beyond the report
    targets (``--changed`` passes the default tree here); ``None``
    keeps the run self-contained. ``cache_file`` names a phase-1 index
    cache to read and refresh (missing/corrupt = cold start). Pass a
    dict as ``stats`` to receive phase-1 counters
    (``{"indexed": fresh, "cached": from-cache}``).

    Returns ``(findings, files_scanned)``; findings are sorted by
    (path, line, col, code). ``files_scanned`` counts the target files.
    """
    targets = iter_python_files(paths)
    scope = list(targets)
    if project_paths is not None:
        target_set = set(targets)
        scope.extend(p for p in iter_python_files(project_paths)
                     if p not in target_set)
        scope.sort()
    cached = load_index_cache(cache_file) if cache_file else {}

    ws = _Workspace()
    target_set = set(targets)
    for path in scope:
        try:
            with open(path, encoding="utf-8") as fp:
                source = fp.read()
        except OSError:
            if path in target_set:
                raise
            continue
        ws.load(path, source, is_target=path in target_set,
                cache_entry=cached.get(path))

    findings = _analyze(ws, targets, select, ignore)
    if cache_file:
        save_index_cache(cache_file, ws.project)
    if stats is not None:
        stats.update(ws.project.stats)
    return findings, len(targets)


# ---------------------------------------------------------------------------
# Index cache (phase-1 skip for unchanged files)
# ---------------------------------------------------------------------------


def load_index_cache(path: str) -> dict:
    """``{file path: {"sha256": ..., "index": ...}}`` or empty.

    Any unreadable/mismatched cache degrades to a cold start — the
    cache can only ever make a run faster, never change its output.
    """
    try:
        with open(path, encoding="utf-8") as fp:
            data = json.load(fp)
        if data.get("version") != CACHE_VERSION:
            return {}
        files = data.get("files", {})
        return files if isinstance(files, dict) else {}
    except (OSError, ValueError):
        return {}


def save_index_cache(path: str, project: ProjectIndex) -> None:
    """Persist every indexed file for the next run (best effort)."""
    files = {
        file_path: {"sha256": idx.sha256, "index": idx.to_dict()}
        for file_path, idx in sorted(project.files.items())
    }
    try:
        with open(path, "w", encoding="utf-8") as fp:
            json.dump({"version": CACHE_VERSION, "files": files}, fp,
                      sort_keys=True)
            fp.write("\n")
    except OSError:  # pragma: no cover - cache is advisory
        pass
