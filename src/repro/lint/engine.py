"""The lint driver: files in, findings out.

This is the library surface the CLI and the test suite share:
:func:`lint_source` for one blob (fixture tests), :func:`lint_paths`
for files/directories (the CLI and the self-check meta-test).
"""

from __future__ import annotations

import ast
import os

from repro.lint.context import FileContext
from repro.lint.findings import Finding, Severity
from repro.lint.rules import make_rules
from repro.lint.visitor import run_rules

#: Directories never descended into.
SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".hypothesis", ".pytest_cache", "build",
})


def lint_source(source: str, path: str = "<string>", select=None,
                ignore=None) -> list:
    """Lint one source blob; returns sorted findings.

    Syntax errors come back as a single REP000 finding rather than an
    exception, so one unparseable file cannot hide the rest of a run.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding("REP000", f"syntax error: {exc.msg}", path,
                    exc.lineno or 1, (exc.offset or 1) - 1, Severity.ERROR)
        ]
    ctx = FileContext(path, source, tree)
    return run_rules(ctx, make_rules(select=select, ignore=ignore))


def iter_python_files(paths) -> list:
    """Expand files/directories into a sorted list of ``.py`` files.

    Sorted traversal keeps finding order — and therefore text/JSON
    output — byte-identical across filesystems (the linter holds itself
    to REP003).
    """
    out: list = []
    for root_path in paths:
        if os.path.isfile(root_path):
            out.append(root_path)
            continue
        for dirpath, dirnames, filenames in os.walk(root_path):
            dirnames[:] = sorted(d for d in dirnames if d not in SKIP_DIRS)
            out.extend(
                os.path.join(dirpath, name)
                for name in sorted(filenames)
                if name.endswith(".py")
            )
    return sorted(dict.fromkeys(out))


def lint_paths(paths, select=None, ignore=None) -> tuple:
    """Lint every ``.py`` file under ``paths``.

    Returns ``(findings, files_scanned)``; findings are sorted by
    (path, line, col, code).
    """
    findings: list = []
    files = iter_python_files(paths)
    for file_path in files:
        with open(file_path, encoding="utf-8") as fp:
            source = fp.read()
        findings.extend(
            lint_source(source, path=file_path, select=select, ignore=ignore)
        )
    return sorted(findings, key=lambda f: f.sort_key()), len(files)
