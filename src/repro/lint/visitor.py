"""Single-pass AST dispatch: one tree walk feeds every rule.

Rules declare interest by defining ``visit_<NodeType>`` methods (same
naming convention as :class:`ast.NodeVisitor`); the engine builds one
dispatch table mapping node type → bound handlers and walks the tree
exactly once, maintaining the ancestor stack on the shared
:class:`~repro.lint.context.FileContext`. With ~8 rules and a handful
of interesting node types each, this is O(nodes + hits) rather than
O(rules × nodes).
"""

from __future__ import annotations

import ast

from repro.lint import noqa as noqa_mod
from repro.lint.context import FileContext


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`code`, :attr:`name`, :attr:`severity`, and a
    docstring (the first line becomes the ``--list-rules`` summary), and
    implement ``visit_<NodeType>(node, ctx)`` handlers. Rules are
    instantiated once per file, so per-file state (e.g. REP005's gate
    stack) lives on ``self``.
    """

    code: str = ""
    name: str = ""
    severity = None  # set by subclasses (Severity.ERROR / WARNING)

    @classmethod
    def summary(cls) -> str:
        return (cls.__doc__ or "").strip().splitlines()[0]

    def handlers(self) -> dict:
        """Map of node type → bound handler, from visit_* methods."""
        table: dict = {}
        for attr in dir(self):
            if not attr.startswith("visit_"):
                continue
            node_type = getattr(ast, attr[len("visit_"):], None)
            if node_type is not None:
                table[node_type] = getattr(self, attr)
        return table


def run_rules(ctx: FileContext, rules: list) -> list:
    """Run ``rules`` over ``ctx``'s tree in one walk; returns findings.

    Findings suppressed by a valid same-line ``# repro: noqa[...]``
    directive are dropped here; malformed directives come back as
    REP000 findings. The result is sorted by location.
    """
    dispatch: dict = {}
    for rule in rules:
        for node_type, handler in rule.handlers().items():
            dispatch.setdefault(node_type, []).append(handler)

    def walk(node: ast.AST) -> None:
        for handler in dispatch.get(type(node), ()):
            handler(node, ctx)
        ctx.ancestors.append(node)
        for child in ast.iter_child_nodes(node):
            walk(child)
        ctx.ancestors.pop()

    walk(ctx.tree)

    directives, malformed = noqa_mod.scan(ctx.source, ctx.path)
    kept, _suppressed = noqa_mod.apply(ctx.findings, directives)
    kept.extend(malformed)
    return sorted(kept, key=lambda f: f.sort_key())
