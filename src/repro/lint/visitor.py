"""Single-pass AST dispatch: one tree walk feeds every rule.

Rules declare interest by defining ``visit_<NodeType>`` methods (same
naming convention as :class:`ast.NodeVisitor`); the engine builds one
dispatch table mapping node type → bound handlers and walks the tree
exactly once, maintaining the ancestor stack on the shared
:class:`~repro.lint.context.FileContext`. With ~8 rules and a handful
of interesting node types each, this is O(nodes + hits) rather than
O(rules × nodes).
"""

from __future__ import annotations

import ast

from repro.lint.context import FileContext


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`code`, :attr:`name`, :attr:`severity`, and a
    docstring (the first line becomes the ``--list-rules`` summary), and
    implement ``visit_<NodeType>(node, ctx)`` handlers. Rules are
    instantiated once per file, so per-file state (e.g. REP005's gate
    stack) lives on ``self``.
    """

    code: str = ""
    name: str = ""
    severity = None  # set by subclasses (Severity.ERROR / WARNING)

    @classmethod
    def summary(cls) -> str:
        return (cls.__doc__ or "").strip().splitlines()[0]

    def handlers(self) -> dict:
        """Map of node type → bound handler, from visit_* methods."""
        table: dict = {}
        for attr in dir(self):
            if not attr.startswith("visit_"):
                continue
            node_type = getattr(ast, attr[len("visit_"):], None)
            if node_type is not None:
                table[node_type] = getattr(self, attr)
        return table


class ProjectRule(Rule):
    """Base class for one whole-program (REP1xx) rule.

    Project rules run in phase 2, after every file has been indexed:
    instead of ``visit_*`` handlers they implement
    ``check(project, reporter)`` against the merged
    :class:`~repro.lint.project.ProjectIndex`, reporting through a
    :class:`~repro.lint.engine.ProjectReporter` (which anchors findings
    to source lines and carries propagation chains). One instance
    checks the whole project, not one file.
    """

    def check(self, project, reporter) -> None:  # pragma: no cover
        raise NotImplementedError


def run_rules(ctx: FileContext, rules: list) -> list:
    """Run per-file ``rules`` over ``ctx``'s tree in one walk.

    Returns the **raw** findings sorted by location; suppression
    (``# repro: noqa[...]``), staleness checks, and merging with the
    project-rule findings happen centrally in the engine, so per-file
    and whole-program findings share one noqa application.
    """
    dispatch: dict = {}
    for rule in rules:
        for node_type, handler in rule.handlers().items():
            dispatch.setdefault(node_type, []).append(handler)

    def walk(node: ast.AST) -> None:
        for handler in dispatch.get(type(node), ()):
            handler(node, ctx)
        ctx.ancestors.append(node)
        for child in ast.iter_child_nodes(node):
            walk(child)
        ctx.ancestors.pop()

    walk(ctx.tree)
    return sorted(ctx.findings, key=lambda f: f.sort_key())
