"""``python -m repro.lint`` — direct entry to the lint CLI."""

import sys

from repro.lint.cli import main

sys.exit(main())
