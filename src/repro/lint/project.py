"""Phase 2 of the whole-program analyzer: the project call graph.

A :class:`ProjectIndex` merges the per-file indexes from
:mod:`repro.lint.index` into one namespace — every function, class,
module-level mutable, and singleton in the project — resolves call
edges (including ``self.``/``cls.`` receivers through the class
hierarchy and method calls on module singletons), and runs the
interprocedural analyses the REP1xx rules consume:

* :meth:`ProjectIndex.taint` — reverse-edge BFS from nondeterminism
  sources (:data:`repro.lint.sources.TAINT_CATEGORIES`), honoring
  sanctioned boundary modules and reasoned ``noqa`` cuts, with a
  shortest propagation chain recorded per tainted function;
* :meth:`ProjectIndex.state_owner` — classifies a state write's target
  as a module-level mutable or a module singleton, across modules.

Everything here is deterministic by construction: iteration is over
sorted qualnames/paths, and BFS discovery order is fixed, so two runs
over the same tree emit byte-identical findings (the analyzer holds
itself to the contract it enforces).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.lint.index import FileIndex
from repro.lint.sources import TAINT_CATEGORIES


def _norm(path: str) -> str:
    return path.replace("\\", "/")


class ProjectIndex:
    """The merged, queryable view of every indexed file."""

    def __init__(self) -> None:
        self.files: dict = {}  #: path -> FileIndex
        self.functions: dict = {}  #: qualname -> FunctionInfo
        self.classes: dict = {}  #: qualname -> ClassInfo
        self.modules: dict = {}  #: module -> path
        #: "module.NAME" -> [line, class dotted name, path]
        self.singletons: dict = {}
        #: "module.NAME" -> [line, path]
        self.mutables: dict = {}
        #: how phase 1 went: files indexed fresh vs. served from cache
        self.stats = {"indexed": 0, "cached": 0}
        self._resolved: dict = {}
        self._reverse: Optional[dict] = None
        self._taint_cache: dict = {}

    def add(self, idx: FileIndex, cached: bool = False) -> None:
        self.files[idx.path] = idx
        self.modules[idx.module] = idx.path
        self.functions.update(idx.functions)
        self.classes.update(idx.classes)
        for name, line in idx.module_mutables.items():
            self.mutables[f"{idx.module}.{name}"] = [line, idx.path]
        for name, (line, cls) in idx.module_singletons.items():
            self.singletons[f"{idx.module}.{name}"] = [line, cls, idx.path]
        self.stats["cached" if cached else "indexed"] += 1

    # -- name resolution ----------------------------------------------------

    def method(self, cls_qual: str, meth: str) -> Optional[str]:
        """Resolve ``meth`` against ``cls_qual``'s project MRO (BFS)."""
        queue: deque = deque([cls_qual])
        seen: set = set()
        while queue:
            cls = queue.popleft()
            if cls in seen:
                continue
            seen.add(cls)
            qual = f"{cls}.{meth}"
            if qual in self.functions:
                return qual
            info = self.classes.get(cls)
            if info is not None:
                queue.extend(info.bases)
        return None

    def resolve_callee(self, callee: str) -> Optional[str]:
        """Map a call-site callee string to a known function qualname.

        Handles plain functions, class constructors (``C()`` →
        ``C.__init__``), ``self::``/``cls``-receiver markers from the
        indexer, and method calls on module singletons
        (``FASTPATH.enabled()`` → ``FastPath.enabled``). ``None`` means
        the edge leaves the project (stdlib, third-party, dynamic).
        """
        if callee in self._resolved:
            return self._resolved[callee]
        result = self._resolve_uncached(callee)
        self._resolved[callee] = result
        return result

    def _resolve_uncached(self, callee: str) -> Optional[str]:
        if callee.startswith("self::"):
            cls_qual, _, meth = callee[len("self::"):].rpartition(".")
            return self.method(cls_qual, meth)
        if callee in self.functions:
            return callee
        if callee in self.classes:
            return self.method(callee, "__init__")
        prefix, _, meth = callee.rpartition(".")
        if prefix in self.classes:
            return self.method(prefix, meth)
        if prefix in self.singletons:
            return self.method(self.singletons[prefix][1], meth)
        return None

    # -- noqa / boundary plumbing -------------------------------------------

    def noqa_codes(self, path: str, line: int) -> frozenset:
        idx = self.files.get(path)
        if idx is None:
            return frozenset()
        return frozenset(idx.noqa.get(line, ()))

    @staticmethod
    def in_boundary(path: str, suffixes) -> bool:
        p = _norm(path)
        return any(p.endswith(_norm(s)) for s in suffixes)

    # -- interprocedural taint ----------------------------------------------

    def reverse_edges(self) -> dict:
        """callee qualname -> [(caller qualname, CallSite), ...]."""
        if self._reverse is None:
            rev: dict = {}
            for caller in sorted(self.functions):
                fn = self.functions[caller]
                for site in fn.calls:
                    callee = self.resolve_callee(site.callee)
                    if callee is not None:
                        rev.setdefault(callee, []).append((caller, site))
            self._reverse = rev
        return self._reverse

    def taint(self, code: str) -> dict:
        """Tainted functions for one REP1xx category.

        Returns ``{qualname: entry}`` where ``entry`` is either
        ``("source", path, line, label)`` for a function containing an
        unsanctioned direct source, or ``("edge", path, line, display,
        callee_qualname)`` recording the first (shortest) call edge that
        taints it. Sanctions that stop seeding/propagation:

        * the function's file is in the category's boundary tuple;
        * the source line carries a reasoned noqa for the category code
          or its per-file twin (``REP001``/``REP002``) — the suppression
          is a declared boundary, not just a silenced message;
        * a call edge whose line carries such a noqa cuts propagation
          to the caller (the edge itself is still reported, and the
          same noqa suppresses it).
        """
        if code in self._taint_cache:
            return self._taint_cache[code]
        twin, boundaries = TAINT_CATEGORIES[code]
        sanction = frozenset(c for c in (code, twin) if c)
        tainted: dict = {}
        queue: deque = deque()
        for qual in sorted(self.functions):
            fn = self.functions[qual]
            if self.in_boundary(fn.path, boundaries):
                continue
            for line, col, label in sorted(fn.taints.get(code, ())):
                if self.noqa_codes(fn.path, line) & sanction:
                    continue
                tainted[qual] = ("source", fn.path, line, label)
                queue.append(qual)
                break
        rev = self.reverse_edges()
        while queue:
            callee = queue.popleft()
            for caller, site in rev.get(callee, ()):
                if caller in tainted:
                    continue
                fn = self.functions[caller]
                if self.in_boundary(fn.path, boundaries):
                    continue
                if self.noqa_codes(fn.path, site.line) & sanction:
                    continue  # reasoned cut: edge reported, not spread
                tainted[caller] = ("edge", fn.path, site.line, site.display,
                                   callee)
                queue.append(caller)
        self._taint_cache[code] = tainted
        return tainted

    def chain(self, qualname: str, code: str) -> tuple:
        """Propagation chain from ``qualname`` down to the source.

        A tuple of ``(path, line, text)`` steps, ending at the direct
        source; empty when ``qualname`` is not tainted for ``code``.
        """
        tainted = self.taint(code)
        steps: list = []
        cursor: Optional[str] = qualname
        while cursor is not None:
            entry = tainted.get(cursor)
            if entry is None:
                break
            if entry[0] == "source":
                _, path, line, label = entry
                steps.append((path, line, f"{cursor}: source {label}"))
                break
            _, path, line, display, callee = entry
            steps.append((path, line, f"{cursor} calls {display}"))
            cursor = callee
        return tuple(steps)

    # -- shared-state ownership ---------------------------------------------

    def state_owner(self, target: str, idx: FileIndex) -> Optional[tuple]:
        """Classify a write target as project-level shared state.

        ``target`` is a bare module-level name (same-module write) or a
        dotted path (cross-module, via imports). Returns ``(kind, key,
        extra)`` with ``kind`` in ``{"mutable", "singleton"}``, ``key``
        the fully-qualified ``module.NAME``, and ``extra`` the
        singleton's class dotted name (``""`` for mutables); ``None``
        when the target is not recognizable shared state.
        """
        if "." not in target:
            key = f"{idx.module}.{target}"
            if target in idx.module_mutables:
                return ("mutable", key, "")
            if target in idx.module_singletons:
                return ("singleton", key, idx.module_singletons[target][1])
            return None
        parts = target.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:i])
            if module not in self.modules:
                continue
            key = f"{module}.{parts[i]}"
            if key in self.mutables:
                return ("mutable", key, "")
            if key in self.singletons:
                return ("singleton", key, self.singletons[key][1])
            return None
        return None

    def mro_attr(self, cls_qual: str, attr: str, field: str) -> bool:
        """True when ``attr`` is in ``field`` anywhere in the MRO."""
        queue: deque = deque([cls_qual])
        seen: set = set()
        while queue:
            cls = queue.popleft()
            if cls in seen:
                continue
            seen.add(cls)
            info = self.classes.get(cls)
            if info is None:
                continue
            if attr in getattr(info, field):
                return True
            queue.extend(info.bases)
        return False


def build_project(indexes) -> ProjectIndex:
    """Assemble a :class:`ProjectIndex` from ``(FileIndex, cached)``
    pairs (any iterable order; the merge itself sorts)."""
    project = ProjectIndex()
    for idx, cached in indexes:
        project.add(idx, cached=cached)
    return project
