"""Finding and severity types shared by every lint rule.

A :class:`Finding` is one diagnostic: a rule code anchored to a
``path:line:col`` with a human message. Findings are value objects —
the CLI sorts, filters (``--select``/``--ignore``), suppresses
(``# repro: noqa[REPxxx]``), baselines, and renders them, but never
mutates them after creation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings break the determinism contract outright (wallclock
    in simulation code, unseeded RNG). ``WARNING`` findings are hazards
    that need a structural argument to be safe (set iteration, float
    equality). Both fail the CI gate; severity only orders the report.
    """

    ERROR = "error"
    WARNING = "warning"

    def __lt__(self, other: "Severity") -> bool:
        order = {"error": 0, "warning": 1}
        return order[self.value] < order[other.value]


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by one rule at one source location."""

    code: str  #: rule code, e.g. ``"REP001"``
    message: str  #: one-line human explanation
    path: str  #: file the finding is in (as given to the linter)
    line: int  #: 1-based source line
    col: int  #: 0-based column, matching ``ast`` node offsets
    severity: Severity = Severity.ERROR
    #: the stripped source line, used for baseline fingerprinting so
    #: grandfathered findings survive unrelated line-number drift
    source_line: str = field(default="", compare=False)
    #: interprocedural propagation chain (whole-program REP1xx rules):
    #: ``(path, line, text)`` steps from this site down to the
    #: nondeterminism source; empty for per-file findings
    chain: tuple = field(default=(), compare=False)

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)

    def fingerprint(self) -> tuple:
        """Identity used by the baseline: stable across pure line drift."""
        return (self.path, self.code, self.source_line)

    def render(self) -> str:
        """The canonical ``path:line:col: CODE message`` text form.

        Chain steps follow on indented continuation lines so the full
        propagation path reads top-down to the source.
        """
        text = f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
        for path, line, step in self.chain:
            text += f"\n    {path}:{line}: {step}"
        return text

    def as_dict(self) -> dict:
        """JSON-ready form (schema documented in docs/LINT.md)."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "source_line": self.source_line,
            "chain": [
                {"path": path, "line": line, "text": text}
                for path, line, text in self.chain
            ],
        }
