"""``# repro: noqa[REPxxx] reason=...`` suppression directives.

The project linter deliberately does **not** honor bare ``# noqa``: every
exemption must name the rule codes it waives and state a reason, so the
suppression itself documents why the determinism contract still holds at
that site. Malformed directives are findings in their own right
(:data:`META_CODE`), not silent no-ops — a typo'd suppression that
quietly suppressed nothing would be the worst of both worlds.

Grammar (one directive per physical line, anywhere in the comment)::

    # repro: noqa[REP001]            reason=<free text to end of line>
    # repro: noqa[REP001,REP004]     reason=...

The directive suppresses matching findings **on its own line** only.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.findings import Finding, Severity

#: Code for malformed-suppression findings emitted by this module.
META_CODE = "REP000"

#: Matches the directive itself; groups: codes blob (may be absent), tail.
_DIRECTIVE = re.compile(
    r"#\s*repro:\s*noqa(?P<codes>\[[^\]]*\])?(?P<tail>[^#]*)"
)
_CODE = re.compile(r"^REP\d{3}$")
_REASON = re.compile(r"reason\s*=\s*(?P<text>\S.*)")


@dataclass
class Directive:
    """One parsed suppression directive."""

    line: int
    codes: frozenset
    reason: str
    #: set by the engine when the directive suppresses at least one finding
    used: bool = field(default=False, compare=False)
    #: the subset of :attr:`codes` that matched a finding (stale check)
    hits: set = field(default_factory=set, compare=False)

    def matches(self, code: str) -> bool:
        return code in self.codes


def _comments(source: str):
    """Yield ``(lineno, comment_text)`` for every comment token.

    Tokenizing (rather than scanning raw lines) is what keeps directive
    *mentions* inside strings and docstrings — docs/LINT.md quotes the
    grammar, so does this module — from parsing as directives.
    """
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            yield tok.start[0], tok.string


def scan(source: str, path: str) -> tuple:
    """Parse every directive in ``source``'s comments.

    Returns ``(directives_by_line, malformed_findings)``. A directive
    that fails validation is reported and **dropped** (it suppresses
    nothing) — failing open would let a typo waive a real violation.
    """
    directives: dict = {}
    problems: list = []

    def problem(lineno: int, text: str, message: str) -> None:
        problems.append(
            Finding(META_CODE, message, path, lineno, 0,
                    Severity.ERROR, source_line=text.strip())
        )

    for lineno, text in _comments(source):
        if "repro:" not in text or "noqa" not in text:
            continue
        m = _DIRECTIVE.search(text)
        if m is None:
            continue
        codes_blob = m.group("codes")
        if not codes_blob:
            problem(lineno, text,
                    "bare 'repro: noqa' — name the codes: noqa[REPxxx]")
            continue
        codes = frozenset(
            c.strip() for c in codes_blob[1:-1].split(",") if c.strip()
        )
        bad = sorted(c for c in codes if not _CODE.match(c))
        if not codes or bad:
            problem(lineno, text,
                    f"malformed noqa codes {bad or '[]'} — want REPxxx")
            continue
        reason_m = _REASON.search(m.group("tail"))
        if reason_m is None:
            problem(lineno, text,
                    f"noqa[{','.join(sorted(codes))}] without reason= — "
                    "every suppression must say why it is safe")
            continue
        directives[lineno] = Directive(
            lineno, codes, reason_m.group("text").strip()
        )
    return directives, problems


def apply(findings: list, directives: dict) -> tuple:
    """Split ``findings`` into (kept, suppressed) per the directives.

    ``META_CODE`` findings are never suppressible — a directive cannot
    waive the rule that validates directives. Each directive records
    per-code which of its waivers actually matched a finding
    (:attr:`Directive.hits`), feeding :func:`stale_findings`.
    """
    kept: list = []
    suppressed: list = []
    for f in findings:
        d = directives.get(f.line)
        if f.code != META_CODE and d is not None and d.matches(f.code):
            d.used = True
            d.hits.add(f.code)
            suppressed.append(f)
        else:
            kept.append(f)
    return kept, suppressed


def stale_findings(directives: dict, active_codes, path: str,
                   lines) -> list:
    """REP000 findings for stale directives after :func:`apply` ran.

    A waived code is *stale* when the linter actually ran that rule
    over the file (``active_codes``) and the directive's line produced
    no matching finding — the suppression has outlived its violation
    and must be deleted, or it would silently waive a future
    regression. Codes outside the active battery (``--select`` runs,
    project codes during a per-file-only pass) are never reported
    stale: absence of evidence only counts when the rule looked.
    """
    active = frozenset(active_codes)
    out: list = []
    for lineno in sorted(directives):
        d = directives[lineno]
        stale = sorted((d.codes & active) - d.hits)
        if not stale:
            continue
        text = lines[lineno - 1].strip() if 0 < lineno <= len(lines) else ""
        out.append(
            Finding(META_CODE,
                    f"stale noqa[{','.join(stale)}] — nothing on this "
                    "line triggers it any more; delete the directive",
                    path, lineno, 0, Severity.ERROR, source_line=text)
        )
    return out
