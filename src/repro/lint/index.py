"""Phase 1 of the whole-program analyzer: the per-file symbol index.

One walk over each file's tree produces a :class:`FileIndex` — pure
data, no AST references — recording everything the project-wide
analysis passes need:

* every function/method with its **call sites** (callees resolved
  lexically through imports, module-local definitions, and
  ``self.``/``cls.`` receivers),
* **direct nondeterminism sources** per taint category (the tables in
  :mod:`repro.lint.sources`),
* **shared-state facts** for the parallelism audit: module-level
  mutables and singletons, class-level mutable attributes, function-code
  writes to any of them, and loop-variable closure captures,
* the file's ``# repro: noqa`` directive lines, so the taint pass can
  treat reasoned suppressions as declared boundaries.

Because a ``FileIndex`` is plain data it round-trips through JSON —
that is what lets the CI cache the index between runs keyed on each
file's source hash (:mod:`repro.lint.engine` owns the cache file).
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.lint import sources
from repro.lint.context import ImportTable

#: Bump when the index layout changes; stale caches are ignored.
INDEX_VERSION = 1

#: Constructors/literals that make a module-level binding a shared
#: mutable container.
MUTABLE_CALLS = frozenset({
    "dict", "list", "set", "bytearray",
    "collections.defaultdict", "collections.deque",
    "collections.Counter", "collections.OrderedDict",
})

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popitem", "popleft", "remove",
    "reverse", "setdefault", "sort", "update",
})

#: Decorators installing a process-wide memo table.
CACHE_DECORATORS = frozenset({"functools.lru_cache", "functools.cache"})

_MUTABLE_LITERALS = (ast.Dict, ast.List, ast.Set, ast.DictComp,
                     ast.ListComp, ast.SetComp)
_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def module_name(path: str) -> str:
    """Dotted module name for ``path``, anchored at ``src/`` or ``tests/``.

    ``src/repro/xemem/module.py`` → ``repro.xemem.module``;
    ``tests/obs/test_tracer.py`` → ``tests.obs.test_tracer``; paths
    outside both anchors keep their full (slash→dot) spelling so
    distinct fixture files cannot collide.
    """
    p = path.replace("\\", "/")
    if p.endswith(".py"):
        p = p[:-3]
    parts = [x for x in p.split("/") if x and x != "."]
    if "src" in parts:
        cut = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[cut + 1:]
    elif "tests" in parts:
        cut = len(parts) - 1 - parts[::-1].index("tests")
        parts = parts[cut:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or "<root>"


@dataclass
class CallSite:
    """One call edge candidate inside a function body."""

    line: int
    col: int
    #: dotted callee (``repro.x.f``), or ``self::module.Class.meth``
    #: for receiver-based calls resolved against the class hierarchy.
    callee: str
    display: str  #: the callee expression as written in source


@dataclass
class FunctionInfo:
    """One function/method (or the module's top-level pseudo-function)."""

    qualname: str
    path: str
    line: int
    calls: list = field(default_factory=list)
    #: taint code -> [[line, col, source label], ...] direct sources
    taints: dict = field(default_factory=dict)
    #: names bound locally (params + assignments); sorted for stability
    locals: list = field(default_factory=list)
    #: line of a functools.lru_cache/cache decorator, 0 when absent
    cached: int = 0


@dataclass
class ClassInfo:
    """Shared-state facts about one class definition."""

    qualname: str
    path: str
    line: int
    bases: list = field(default_factory=list)  #: resolved dotted names
    #: class-body mutable containers: attr -> line
    class_mutables: dict = field(default_factory=dict)
    #: attrs assigned through ``self.attr = ...`` anywhere in the class
    instance_assigned: list = field(default_factory=list)
    #: in-place mutations through self: [[attr, line, col, display], ...]
    self_mutations: list = field(default_factory=list)


@dataclass
class StateWrite:
    """One function-code write against module/class-level state."""

    scope: str  #: qualname of the function containing the write
    #: ``global-rebind`` | ``mutate`` | ``subscript`` | ``attr-store``
    #: | ``class-attr``
    kind: str
    target: str  #: bare module-level name, or dotted cross-module path
    line: int
    col: int
    display: str


@dataclass
class FileIndex:
    """Everything the analysis phase needs to know about one file."""

    path: str
    module: str
    sha256: str
    functions: dict = field(default_factory=dict)
    classes: dict = field(default_factory=dict)
    module_mutables: dict = field(default_factory=dict)  #: name -> line
    #: name -> [line, resolved class dotted name]
    module_singletons: dict = field(default_factory=dict)
    writes: list = field(default_factory=list)
    #: loop-variable closure captures: [[line, col, var, display], ...]
    captures: list = field(default_factory=list)
    #: noqa directive lines: line(str in JSON) -> sorted code list
    noqa: dict = field(default_factory=dict)

    # -- serialization (the CI index cache) ---------------------------------

    def to_dict(self) -> dict:
        data = asdict(self)
        data["functions"] = {q: asdict(f) for q, f in self.functions.items()}
        data["classes"] = {q: asdict(c) for q, c in self.classes.items()}
        data["writes"] = [asdict(w) for w in self.writes]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FileIndex":
        idx = cls(
            path=data["path"], module=data["module"], sha256=data["sha256"],
            module_mutables=dict(data["module_mutables"]),
            module_singletons=dict(data["module_singletons"]),
            captures=[list(c) for c in data["captures"]],
            noqa={int(k): list(v) for k, v in data["noqa"].items()},
        )
        for qual, f in data["functions"].items():
            fn = FunctionInfo(
                qualname=f["qualname"], path=f["path"], line=f["line"],
                taints={k: [list(s) for s in v]
                        for k, v in f["taints"].items()},
                locals=list(f["locals"]), cached=f["cached"],
            )
            fn.calls = [CallSite(**c) for c in f["calls"]]
            idx.functions[qual] = fn
        for qual, c in data["classes"].items():
            idx.classes[qual] = ClassInfo(
                qualname=c["qualname"], path=c["path"], line=c["line"],
                bases=list(c["bases"]),
                class_mutables=dict(c["class_mutables"]),
                instance_assigned=list(c["instance_assigned"]),
                self_mutations=[list(m) for m in c["self_mutations"]],
            )
        idx.writes = [StateWrite(**w) for w in data["writes"]]
        return idx


def source_sha(source: str) -> str:
    """Cache key for one file's contents."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The indexer walk
# ---------------------------------------------------------------------------


class _FunctionFrame:
    """Per-function bookkeeping while the walk is inside it."""

    def __init__(self, info: FunctionInfo) -> None:
        self.info = info
        self.bound: set = set()
        self.globals: set = set()


class _Indexer:
    """One-pass tree walk building a :class:`FileIndex`."""

    def __init__(self, path: str, source: str, tree: ast.AST) -> None:
        self.tree = tree
        self.imports = ImportTable(tree)
        self.idx = FileIndex(path=path, module=module_name(path),
                             sha256=source_sha(source))
        # Module-level definitions, pre-collected so bare-name calls and
        # base classes resolve to this module regardless of order.
        self.top_defs: set = set()
        self.top_classes: set = set()
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.top_defs.add(node.name)
            elif isinstance(node, ast.ClassDef):
                self.top_defs.add(node.name)
                self.top_classes.add(node.name)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    self.top_defs.update(_target_names(target))
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(node.target, ast.Name):
                    self.top_defs.add(node.target.id)
        self.class_stack: list = []  # ClassInfo chain
        self.func_stack: list = []  # _FunctionFrame chain
        #: loop-target scopes; None is a function barrier
        self.loop_stack: list = []
        module_fn = FunctionInfo(qualname=self.idx.module, path=path, line=1)
        self.idx.functions[module_fn.qualname] = module_fn
        self.module_frame = _FunctionFrame(module_fn)

    # -- naming -------------------------------------------------------------

    def _scope_prefix(self) -> str:
        parts = [self.idx.module]
        parts.extend(c.qualname.rpartition(".")[2] for c in self.class_stack)
        parts.extend(
            f.info.qualname.rpartition(".")[2] for f in self.func_stack
        )
        return ".".join(parts)

    def current(self) -> _FunctionFrame:
        return self.func_stack[-1] if self.func_stack else self.module_frame

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name via imports, falling back to module-level defs."""
        dotted = self.imports.resolve(node)
        if dotted is not None:
            return dotted
        parts: list = []
        probe = node
        while isinstance(probe, ast.Attribute):
            parts.append(probe.attr)
            probe = probe.value
        if not isinstance(probe, ast.Name):
            return None
        root = probe.id
        if root not in self.top_defs or self._is_local(root):
            return None
        parts.append(root)
        parts.append(self.idx.module)
        return ".".join(reversed(parts))

    def _is_local(self, name: str) -> bool:
        for frame in reversed(self.func_stack):
            if name in frame.globals:
                return False
            if name in frame.bound:
                return True
        return False

    # -- entry point --------------------------------------------------------

    def build(self) -> FileIndex:
        for child in ast.iter_child_nodes(self.tree):
            self._walk(child)
        self._prune_writes()
        return self.idx

    def _prune_writes(self) -> None:
        """Drop bare-name write candidates that cannot hit shared state.

        Local bindings are only complete once the whole file has been
        walked (an assignment anywhere in a function makes the name
        local throughout), so the locals test runs here, not inline.
        """
        kept: list = []
        for w in self.idx.writes:
            if w.kind in ("global-rebind", "class-attr"):
                kept.append(w)
                continue
            base = w.target.rpartition(".")[0] if w.kind == "attr-store" \
                else w.target
            if "." in base:  # dotted cross-module path — analyzed later
                kept.append(w)
                continue
            fn = self.idx.functions.get(w.scope)
            if fn is not None and base in fn.locals:
                continue
            if base in self.idx.module_mutables \
                    or base in self.idx.module_singletons:
                kept.append(w)
        self.idx.writes = kept

    # -- the walk -----------------------------------------------------------

    def _walk(self, node: ast.AST) -> None:
        handler = getattr(self, f"_visit_{type(node).__name__}", None)
        if handler is not None:
            handler(node)
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child)

    def _walk_children(self, node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            self._walk(child)

    # -- scopes -------------------------------------------------------------

    def _visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = f"{self._scope_prefix()}.{node.name}"
        info = ClassInfo(qualname=qual, path=self.idx.path, line=node.lineno,
                         bases=[b for b in
                                (self.resolve(base) for base in node.bases)
                                if b is not None])
        self.idx.classes[qual] = info
        for stmt in node.body:  # class-level mutable attributes
            target = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                target = stmt.targets[0].id
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name) \
                    and stmt.value is not None:
                target = stmt.target.id
            if target is not None and self._is_mutable_expr(stmt.value):
                info.class_mutables[target] = stmt.lineno
        self.class_stack.append(info)
        for decorator in node.decorator_list:
            self._walk(decorator)
        self._handle_loop_barrier_body(node.body)
        self.class_stack.pop()

    def _visit_FunctionDef(self, node) -> None:
        self._enter_function(node)

    def _visit_AsyncFunctionDef(self, node) -> None:
        self._enter_function(node)

    def _enter_function(self, node) -> None:
        self._check_capture(node)
        qual = f"{self._scope_prefix()}.{node.name}"
        info = FunctionInfo(qualname=qual, path=self.idx.path,
                            line=node.lineno)
        for decorator in node.decorator_list:
            probe = decorator.func if isinstance(decorator, ast.Call) \
                else decorator
            if self.resolve(probe) in CACHE_DECORATORS:
                info.cached = decorator.lineno
            self._walk(decorator)
        self.idx.functions[qual] = info
        frame = _FunctionFrame(info)
        frame.bound.update(_arg_names(node.args))
        for default in node.args.defaults + \
                [d for d in node.args.kw_defaults if d is not None]:
            self._walk(default)  # defaults evaluate in the outer scope
        self.func_stack.append(frame)
        self._handle_loop_barrier_body(node.body)
        frame.info.locals = sorted(frame.bound)
        self.func_stack.pop()

    def _visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_capture(node)
        for default in node.args.defaults + \
                [d for d in node.args.kw_defaults if d is not None]:
            self._walk(default)
        self.loop_stack.append(None)  # barrier: outer loop vars invisible
        self._walk(node.body)
        self.loop_stack.pop()

    def _handle_loop_barrier_body(self, body: list) -> None:
        self.loop_stack.append(None)
        for stmt in body:
            self._walk(stmt)
        self.loop_stack.pop()

    def _visit_Global(self, node: ast.Global) -> None:
        self.current().globals.update(node.names)

    # -- loops & captures ---------------------------------------------------

    def _visit_For(self, node) -> None:
        self._walk(node.iter)
        self._bind_target(node.target)
        self._walk(node.target)
        self.loop_stack.append(frozenset(_target_names(node.target)))
        for stmt in node.body:
            self._walk(stmt)
        self.loop_stack.pop()
        for stmt in node.orelse:
            self._walk(stmt)

    _visit_AsyncFor = _visit_For

    def _comprehension(self, node) -> None:
        pushed = 0
        for gen in node.generators:
            self._walk(gen.iter)
            self.loop_stack.append(frozenset(_target_names(gen.target)))
            pushed += 1
            for cond in gen.ifs:
                self._walk(cond)
        if isinstance(node, ast.DictComp):
            self._walk(node.key)
            self._walk(node.value)
        else:
            self._walk(node.elt)
        for _ in range(pushed):
            self.loop_stack.pop()

    _visit_ListComp = _comprehension
    _visit_SetComp = _comprehension
    _visit_DictComp = _comprehension
    _visit_GeneratorExp = _comprehension

    def _active_loop_targets(self) -> set:
        names: set = set()
        for entry in reversed(self.loop_stack):
            if entry is None:
                break
            names.update(entry)
        return names

    def _check_capture(self, node) -> None:
        """Flag a closure made inside a loop that reads the loop variable."""
        active = self._active_loop_targets()
        if not active:
            return
        free = _free_names(node) & active
        for name in sorted(free):
            self.idx.captures.append(
                [node.lineno, node.col_offset, name,
                 "lambda" if isinstance(node, ast.Lambda) else node.name]
            )

    # -- statements ---------------------------------------------------------

    def _bind_target(self, target: ast.AST) -> None:
        frame = self.current()
        for name in _target_names(target):
            if name not in frame.globals:
                frame.bound.add(name)

    def _visit_Assign(self, node: ast.Assign) -> None:
        self._walk(node.value)
        at_module = not self.func_stack and not self.class_stack
        for target in node.targets:
            self._record_store(target, node)
            self._bind_target(target)
            if at_module and isinstance(target, ast.Name):
                self._record_module_binding(target.id, node.value)
            self._walk_target_exprs(target)

    def _walk_target_exprs(self, target: ast.AST) -> None:
        """Visit the *expressions* inside an assignment target.

        ``d[key(x)] = v`` evaluates ``d`` and ``key(x)`` — both must go
        through the normal walk (call edges, taint sources) even though
        the target as a whole binds nothing.
        """
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._walk_target_exprs(elt)
        elif isinstance(target, ast.Starred):
            self._walk_target_exprs(target.value)
        elif isinstance(target, ast.Subscript):
            self._walk(target.value)
            self._walk(target.slice)
        elif isinstance(target, ast.Attribute):
            self._walk(target.value)

    def _visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._walk(node.value)
            self._record_store(node.target, node)
            if not self.func_stack and not self.class_stack \
                    and isinstance(node.target, ast.Name):
                self._record_module_binding(node.target.id, node.value)
        self._bind_target(node.target)
        self._walk_target_exprs(node.target)

    def _visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._walk(node.value)
        self._record_store(node.target, node, aug=True)
        if isinstance(node.target, ast.Name):
            self._bind_target(node.target)
        else:
            self._walk_target_exprs(node.target)

    def _visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._record_store(target, node)
                self._walk_target_exprs(target)
            else:
                self._walk(target)

    def _record_module_binding(self, name: str, value: ast.AST) -> None:
        if self._is_mutable_expr(value):
            self.idx.module_mutables[name] = value.lineno
        elif isinstance(value, ast.Call):
            cls = self.resolve(value.func)
            if cls is not None and cls not in MUTABLE_CALLS:
                self.idx.module_singletons[name] = [value.lineno, cls]

    def _is_mutable_expr(self, value) -> bool:
        if isinstance(value, _MUTABLE_LITERALS):
            return True
        return (isinstance(value, ast.Call)
                and self.resolve(value.func) in MUTABLE_CALLS)

    def _record_store(self, target: ast.AST, stmt: ast.AST,
                      aug: bool = False) -> None:
        """Classify one assignment target as a shared-state write."""
        if not self.func_stack:
            return  # module/class-level initialization is not a write
        frame = self.current()
        if isinstance(target, ast.Name):
            if target.id in frame.globals:
                self._write("global-rebind", target.id, stmt,
                            f"global {target.id}")
            return
        if isinstance(target, ast.Subscript):
            attr = self._self_attr(target.value)
            if attr is not None:
                self._self_mutation(attr, stmt, f"self.{attr}[...]")
                return
            base = self._state_base(target.value)
            if base is not None:
                self._write("subscript", base, stmt, f"{base}[...]")
            return
        if isinstance(target, ast.Attribute):
            if isinstance(target.value, ast.Name) \
                    and target.value.id == "self" and self.class_stack:
                cls = self.class_stack[-1]
                if aug:
                    self._self_mutation(
                        target.attr, stmt, f"self.{target.attr} (augmented)"
                    )
                elif target.attr not in cls.instance_assigned:
                    cls.instance_assigned.append(target.attr)
                return
            cls = self._class_receiver(target.value)
            if cls is not None:
                self._write("class-attr", f"{cls}.{target.attr}", stmt,
                            f"{cls.rpartition('.')[2]}.{target.attr}")
                return
            base = self._state_base(target.value)
            if base is not None:
                self._write("attr-store", f"{base}.{target.attr}", stmt,
                            f"{base}.{target.attr}")

    def _self_attr(self, node: ast.AST) -> Optional[str]:
        """``attr`` when ``node`` is exactly ``self.attr``."""
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self" and self.class_stack:
            return node.attr
        return None

    def _self_mutation(self, attr: str, stmt: ast.AST,
                       display: str) -> None:
        self.class_stack[-1].self_mutations.append(
            [attr, stmt.lineno, stmt.col_offset, display]
        )

    def _state_base(self, node: ast.AST) -> Optional[str]:
        """Bare or dotted base name when ``node`` may be shared state."""
        if isinstance(node, ast.Name):
            if self._is_local(node.id):
                return None
            return self.imports.resolve(node) or node.id
        return self.resolve(node)

    def _class_receiver(self, node: ast.AST) -> Optional[str]:
        """Class qualname when ``node`` denotes a class object."""
        if isinstance(node, ast.Attribute) and node.attr == "__class__" \
                and isinstance(node.value, ast.Name) \
                and node.value.id in ("self", "cls"):
            if self.class_stack:
                return self.class_stack[-1].qualname
            return f"{self.idx.module}.<class>"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "type" and len(node.args) == 1 \
                and isinstance(node.args[0], ast.Name) \
                and node.args[0].id in ("self", "cls"):
            if self.class_stack:
                return self.class_stack[-1].qualname
            return f"{self.idx.module}.<class>"
        if isinstance(node, ast.Name) and not self._is_local(node.id):
            for cls in reversed(self.class_stack):
                if cls.qualname.rpartition(".")[2] == node.id:
                    return cls.qualname
            if node.id in self.top_classes:
                return f"{self.idx.module}.{node.id}"
        return None

    def _write(self, kind: str, target: str, stmt: ast.AST,
               display: str) -> None:
        self.idx.writes.append(
            StateWrite(scope=self.current().info.qualname, kind=kind,
                       target=target, line=stmt.lineno,
                       col=stmt.col_offset, display=display)
        )

    # -- expressions --------------------------------------------------------

    def _visit_Call(self, node: ast.Call) -> None:
        self._classify_call(node)
        self._walk(node.func)
        for arg in node.args:
            self._walk(arg)
        for kw in node.keywords:
            self._walk(kw.value)

    def _visit_Subscript(self, node: ast.Subscript) -> None:
        if isinstance(node.ctx, ast.Load) \
                and self.resolve(node.value) in sources.ENV_MAPPING:
            self._taint("REP103", node, "os.environ[...]")
        self._walk_children(node)

    def _taint(self, code: str, node: ast.AST, label: str) -> None:
        fn = self.current().info
        fn.taints.setdefault(code, []).append(
            [node.lineno, node.col_offset, label]
        )

    def _classify_call(self, node: ast.Call) -> None:
        fn = node.func
        info = self.current().info
        # Receiver-based call: resolve against the class hierarchy later.
        if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name) \
                and fn.value.id in ("self", "cls") and self.class_stack:
            info.calls.append(CallSite(
                line=node.lineno, col=node.col_offset,
                callee=f"self::{self.class_stack[-1].qualname}.{fn.attr}",
                display=f"{fn.value.id}.{fn.attr}",
            ))
            return
        resolved = self.resolve(fn)
        if resolved is None:
            if isinstance(fn, ast.Name) and not self._is_local(fn.id):
                if fn.id in sources.ADDRESS_CALLS:
                    self._taint("REP104", node, fn.id)
                elif fn.id == "setattr" and node.args and self.func_stack:
                    base = self._state_base(node.args[0])
                    if base is not None:
                        self._write("attr-store", f"{base}.*", node,
                                    f"setattr({base}, ...)")
            elif isinstance(fn, ast.Attribute) \
                    and fn.attr in MUTATOR_METHODS and self.func_stack:
                attr = self._self_attr(fn.value)
                if attr is not None:
                    self._self_mutation(attr, node,
                                        f"self.{attr}.{fn.attr}()")
            return
        if resolved in sources.WALLCLOCK_CALLS:
            self._taint("REP101", node, resolved)
            return
        entropy = sources.entropy_source_name(node, resolved)
        if entropy:
            self._taint("REP102", node, entropy)
            return
        if resolved in sources.ENV_READ_CALLS:
            self._taint("REP103", node, resolved)
            return
        if isinstance(fn, ast.Attribute) \
                and fn.attr in sources.ENV_MAPPING_READERS \
                and self.resolve(fn.value) in sources.ENV_MAPPING:
            self._taint("REP103", node, f"os.environ.{fn.attr}")
            return
        if resolved == "builtins.setattr" or (
                isinstance(fn, ast.Name) and fn.id == "setattr"
                and not self._is_local("setattr")):
            if node.args and self.func_stack:
                base = self._state_base(node.args[0])
                if base is not None:
                    self._write("attr-store", f"{base}.*", node,
                                f"setattr({base}, ...)")
            return
        if isinstance(fn, ast.Attribute) and fn.attr in MUTATOR_METHODS \
                and self.func_stack:
            base = self._state_base(fn.value)
            if base is not None:
                self._write("mutate", base, node, f"{base}.{fn.attr}()")
                return
        info.calls.append(CallSite(
            line=node.lineno, col=node.col_offset, callee=resolved,
            display=_display(fn),
        ))


def _display(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except (ValueError, AttributeError):  # pragma: no cover
        return "<call>"


def _arg_names(args: ast.arguments) -> list:
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _target_names(target: ast.AST) -> list:
    """Names *bound* by an assignment/loop target.

    ``x``, ``(a, b)``, ``[a, *rest]`` bind names; ``obj.attr`` and
    ``d[k]`` bind nothing (they mutate an existing object), so their
    base names must not be mistaken for locals.
    """
    out: list = []
    stack = [target]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            out.append(node.id)
        elif isinstance(node, ast.Starred):
            stack.append(node.value)
        elif isinstance(node, (ast.Tuple, ast.List)):
            stack.extend(node.elts)
    return out


def _free_names(node) -> set:
    """Names a closure reads from enclosing scopes (body only)."""
    bound = set(_arg_names(node.args))
    loads: set = set()
    body = node.body if isinstance(node.body, list) else [node.body]
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name):
                if isinstance(sub.ctx, ast.Load):
                    loads.add(sub.id)
                else:
                    bound.add(sub.id)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(sub.name)
            elif isinstance(sub, ast.arg):
                bound.add(sub.arg)
    return loads - bound


def build_file_index(path: str, source: str, tree: ast.AST,
                     noqa_directives: Optional[dict] = None) -> FileIndex:
    """Index one parsed file; ``noqa_directives`` come from
    :func:`repro.lint.noqa.scan` (line → Directive)."""
    idx = _Indexer(path, source, tree).build()
    if noqa_directives:
        idx.noqa = {
            line: sorted(d.codes) for line, d in noqa_directives.items()
        }
    return idx
