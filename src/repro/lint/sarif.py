"""SARIF 2.1.0 emission for GitHub code scanning.

:func:`to_sarif` renders a lint run as one SARIF log: rule metadata
from the battery, one result per finding (new *and* baselined —
baselined results carry a ``suppressions`` entry so code scanning
shows them resolved rather than new), ``partialFingerprints`` from the
same ``(path, code, source line)`` identity the baseline uses, and a
``codeFlows`` thread for every interprocedural propagation chain so a
REP101 annotation walks the reviewer from the call edge down to the
``time.time()`` it reaches.

:func:`validate_sarif` is a vendored *minimal* structural check of the
2.1.0 shape — the subset GitHub's ingestion actually requires — so the
schema test runs without a jsonschema dependency. It is deliberately
strict about the properties we emit and silent about ones we don't.
"""

from __future__ import annotations

import json

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {"error": "error", "warning": "warning"}


def _uri(path: str) -> str:
    """Repo-relative forward-slash artifact URI."""
    p = path.replace("\\", "/")
    while p.startswith("./"):
        p = p[2:]
    return p


def _location(path: str, line: int, col: int, message=None) -> dict:
    loc = {
        "physicalLocation": {
            "artifactLocation": {"uri": _uri(path)},
            "region": {"startLine": max(line, 1),
                       "startColumn": max(col, 0) + 1},
        }
    }
    if message is not None:
        loc["message"] = {"text": message}
    return loc


def _code_flow(finding) -> dict:
    """The propagation chain as one SARIF thread flow."""
    steps = [
        {"location": _location(path, line, 0, message=text)}
        for path, line, text in finding.chain
    ]
    return {"threadFlows": [{"locations": steps}]}


def _result(finding, suppressed: bool) -> dict:
    result = {
        "ruleId": finding.code,
        "level": _LEVELS.get(finding.severity.value, "warning"),
        "message": {"text": finding.message},
        "locations": [_location(finding.path, finding.line, finding.col)],
        "partialFingerprints": {
            "reproLintFingerprint/v1":
                f"{_uri(finding.path)}:{finding.code}:{finding.source_line}",
        },
    }
    if finding.chain:
        result["codeFlows"] = [_code_flow(finding)]
    if suppressed:
        result["suppressions"] = [{
            "kind": "external",
            "justification": "grandfathered in lint-baseline.json",
        }]
    return result


def to_sarif(new, baselined, rule_classes) -> dict:
    """Build the SARIF log object for one run."""
    rules = [
        {
            "id": cls.code,
            "name": cls.name,
            "shortDescription": {"text": cls.summary()},
            "defaultConfiguration": {
                "level": _LEVELS.get(cls.severity.value, "warning"),
            },
            "helpUri": "docs/LINT.md",
        }
        for cls in rule_classes
    ]
    results = [_result(f, suppressed=False) for f in new]
    results.extend(_result(f, suppressed=True) for f in baselined)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro/docs/LINT.md",
                    "rules": rules,
                },
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }


def render_sarif(new, baselined, rule_classes) -> str:
    return json.dumps(to_sarif(new, baselined, rule_classes), indent=2,
                      sort_keys=True)


# ---------------------------------------------------------------------------
# Minimal structural validation (vendored subset of the 2.1.0 schema)
# ---------------------------------------------------------------------------


def validate_sarif(doc) -> list:
    """Structural errors in ``doc`` against the SARIF 2.1.0 subset we
    emit; an empty list means valid. Paths in messages use dotted/JSON
    pointer-ish notation for quick diagnosis."""
    errors: list = []

    def err(where: str, what: str) -> None:
        errors.append(f"{where}: {what}")

    def expect(obj, where, key, types, required=True):
        if key not in obj:
            if required:
                err(where, f"missing required property '{key}'")
            return None
        if not isinstance(obj[key], types):
            err(f"{where}.{key}",
                f"expected {types}, got {type(obj[key]).__name__}")
            return None
        return obj[key]

    if not isinstance(doc, dict):
        return ["document: expected object"]
    if doc.get("version") != SARIF_VERSION:
        err("version", f"must be '{SARIF_VERSION}'")
    runs = expect(doc, "document", "runs", list)
    for i, run in enumerate(runs or ()):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            err(where, "expected object")
            continue
        tool = expect(run, where, "tool", dict)
        driver = tool and expect(tool, f"{where}.tool", "driver", dict)
        if driver is not None:
            expect(driver, f"{where}.tool.driver", "name", str)
            for j, rule in enumerate(driver.get("rules", ())):
                rwhere = f"{where}.tool.driver.rules[{j}]"
                if not isinstance(rule, dict):
                    err(rwhere, "expected object")
                    continue
                expect(rule, rwhere, "id", str)
        results = expect(run, where, "results", list)
        for j, result in enumerate(results or ()):
            _validate_result(result, f"{where}.results[{j}]", err, expect)
    return errors


def _validate_result(result, where, err, expect) -> None:
    if not isinstance(result, dict):
        err(where, "expected object")
        return
    expect(result, where, "ruleId", str)
    level = result.get("level")
    if level is not None and level not in ("none", "note", "warning",
                                           "error"):
        err(f"{where}.level", f"invalid level {level!r}")
    message = expect(result, where, "message", dict)
    if message is not None:
        expect(message, f"{where}.message", "text", str)
    locations = expect(result, where, "locations", list)
    for k, loc in enumerate(locations or ()):
        _validate_location(loc, f"{where}.locations[{k}]", err, expect)
    for k, flow in enumerate(result.get("codeFlows", ())):
        fwhere = f"{where}.codeFlows[{k}]"
        if not isinstance(flow, dict):
            err(fwhere, "expected object")
            continue
        threads = expect(flow, fwhere, "threadFlows", list)
        for t, thread in enumerate(threads or ()):
            twhere = f"{fwhere}.threadFlows[{t}]"
            if not isinstance(thread, dict):
                err(twhere, "expected object")
                continue
            steps = expect(thread, twhere, "locations", list)
            for s, step in enumerate(steps or ()):
                swhere = f"{twhere}.locations[{s}]"
                if not isinstance(step, dict):
                    err(swhere, "expected object")
                    continue
                inner = expect(step, swhere, "location", dict)
                if inner is not None:
                    _validate_location(inner, f"{swhere}.location", err,
                                       expect)
    for k, sup in enumerate(result.get("suppressions", ())):
        swhere = f"{where}.suppressions[{k}]"
        if not isinstance(sup, dict):
            err(swhere, "expected object")
            continue
        kind = sup.get("kind")
        if kind not in ("inSource", "external"):
            err(f"{swhere}.kind", f"invalid suppression kind {kind!r}")


def _validate_location(loc, where, err, expect) -> None:
    if not isinstance(loc, dict):
        err(where, "expected object")
        return
    phys = expect(loc, where, "physicalLocation", dict)
    if phys is None:
        return
    art = expect(phys, f"{where}.physicalLocation", "artifactLocation",
                 dict)
    if art is not None:
        uri = expect(art, f"{where}.physicalLocation.artifactLocation",
                     "uri", str)
        if uri is not None and (uri.startswith("/") or "\\" in uri):
            err(f"{where}.physicalLocation.artifactLocation.uri",
                f"must be a relative forward-slash URI, got {uri!r}")
    region = expect(phys, f"{where}.physicalLocation", "region", dict,
                    required=False)
    if region is not None:
        for key in ("startLine", "startColumn"):
            value = region.get(key)
            if value is not None and (not isinstance(value, int)
                                      or value < 1):
                err(f"{where}.physicalLocation.region.{key}",
                    f"must be a positive integer, got {value!r}")
