"""repro.lint — determinism & simulation-safety static analysis.

A single-pass AST linter enforcing the project's determinism contract
as machine-checked rules (REP001-REP008): no wallclock or OS entropy in
simulation code, no order-unstable iteration, no float equality
branching, fast-path gates with slow twins, engine/event-queue
discipline, accounted exception handling, no mutable defaults.

Library entry points::

    from repro.lint import lint_source, lint_paths
    findings = lint_source("import time\\ntime.time()\\n")

CLI (wired into ``python -m repro``)::

    python -m repro lint [paths...] [--format text|json]
                         [--select/--ignore REPxxx,...]
                         [--baseline FILE] [--write-baseline]

See docs/LINT.md for the rule catalog and the suppression/baseline
workflow.
"""

from repro.lint.baseline import Baseline
from repro.lint.engine import iter_python_files, lint_paths, lint_source
from repro.lint.findings import Finding, Severity
from repro.lint.rules import ALL_RULES, CODES, make_rules
from repro.lint.visitor import Rule

__all__ = [
    "ALL_RULES",
    "Baseline",
    "CODES",
    "Finding",
    "Rule",
    "Severity",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "make_rules",
]
