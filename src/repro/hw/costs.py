"""The calibrated cost model.

Every nanosecond constant in the simulation lives here, in one dataclass,
so that (a) no figure can be produced by per-experiment tuning, and (b) the
calibration story is auditable in one screenful.

Calibration (DESIGN.md §4) is against the paper's *headline* numbers on the
Dell R420 testbed:

* Native cross-enclave attach sustains ≈13 GB/s (Fig. 5). One attachment of
  ``S`` bytes over 4 KiB pages costs ``S/4096`` iterations of the pipeline
  *walk → PFN-list transfer → PTE install*, so the per-page total must come
  to ≈293 ns. We split it 90/50/150 ns (walk / channel / install) plus a
  ≈10 µs fixed cost per attachment (name-server lookup, routing, IPIs),
  which is <0.2 % at 128 MB — hence the flat curve in Fig. 5.
* The attach+read series sits ≈1 GB/s lower. The gap corresponds to a
  ≈25 ns *per-page* validation touch, i.e. the reader touches each mapped
  page rather than streaming every byte.
* RDMA verbs over QDR InfiniBand: 40 Gb/s signalling, 8b/10b → 32 Gb/s data,
  verbs efficiency ≈0.85 → ≈3.4 GB/s payload (Fig. 5 baseline).
* Table 2's VM-attach asymmetry comes from the Palacios memory map: guest
  attachments *insert* one red-black tree node per (non-contiguous) host
  frame — O(log n) node visits each, at ``rb_node_visit_ns`` — while host
  attachments only *look up* guest frames in a small tree whose last entry
  is cached (``memmap_cache_hit_ns``), because VM RAM is a handful of large
  contiguous blocks.
* Fig. 7's detour magnitudes fall straight out of the walk constant: a 1 GB
  attachment walks 262 144 pages ≈ 23.6 ms on the exporting Kitten core;
  2 MB ≈ 46 µs; 4 KB disappears into the ≈12 µs baseline.

All constants are integers in nanoseconds unless the name says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

#: Base page size. All frame numbers (PFNs) count 4 KiB frames.
PAGE_4K = 4096
#: Large page (2 MiB) — 512 contiguous base frames.
PAGE_2M = 2 * 1024 * 1024
#: Huge page (1 GiB) — 262 144 contiguous base frames.
PAGE_1G = 1024 * 1024 * 1024

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


def gib_per_s(nbytes: int, elapsed_ns: float) -> float:
    """Throughput in GiB/s — the unit the paper's figures use."""
    if elapsed_ns <= 0:
        raise ValueError(f"non-positive elapsed time {elapsed_ns}")
    return nbytes / GB / (elapsed_ns / 1e9)


@dataclass
class CostModel:
    """Nanosecond constants for every modeled hardware/kernel operation."""

    # -- native attach pipeline (per 4 KiB page) -----------------------------
    #: Exporter-side page-table walk + PFN-list append, per page.
    walk_per_page_ns: int = 90
    #: Marshalling + copying one PFN through a kernel channel.
    channel_per_pfn_ns: int = 50
    #: Attacher-side eager PTE install (cross-enclave attaches are eager).
    map_install_per_page_ns: int = 150
    #: Per-page validation touch for the Fig. 5 attach+read series.
    page_touch_ns: int = 25
    #: Fixed per-attachment cost: segid lookup, routing hops, signalling.
    attach_fixed_ns: int = 10_000
    #: Fixed per-export cost: name-server round trip to allocate a segid.
    export_fixed_ns: int = 8_000
    #: Fixed per-detach cost.
    detach_fixed_ns: int = 4_000
    #: Per-page PTE teardown on detach.
    unmap_per_page_ns: int = 20

    # -- Pisces IPI channel ---------------------------------------------------
    #: One-way IPI delivery latency.
    ipi_latency_ns: int = 1_500
    #: Core-0 handler occupancy per channel chunk (paper §5.3: all Linux-side
    #: IPI handling is restricted to core 0).
    ipi_handler_core0_ns: int = 2_000
    #: Size of the Pisces shared-memory message region; PFN lists are
    #: streamed through it in chunks of this size.
    channel_chunk_bytes: int = 64 * KB
    #: Extra per-page cost on the native attach pipeline once two or more
    #: co-kernel enclaves share the core-0 handler (cache-cold handler
    #: dispatch + contended Linux memory-map structures). Models the
    #: measured 1→2 enclave plateau of Fig. 6; the paper calls both causes
    #: "not fundamental" and ablation B sets this to zero (distributed IPI
    #: routing, the paper's proposed future work).
    multi_enclave_channel_penalty_per_page_ns: int = 25

    # -- Palacios VMM ---------------------------------------------------------
    #: Guest→host exit via hypercall.
    hypercall_ns: int = 2_000
    #: Host→guest virtual IRQ injection (next VM entry).
    virq_inject_ns: int = 2_500
    #: Copying one PFN to/from the virtual PCI device window.
    pci_copy_per_pfn_ns: int = 40
    #: Cost per red-black-tree node visited (comparison / rotation step).
    #: The tree's own visit counter includes descent, rotations, and
    #: fixups (~35 visits per insert at 262k entries), so this per-visit
    #: constant calibrates the 1 GiB guest-attach insert work to ≈520
    #: ns/page — the Table 2 gap between 4.0 and 8.8 GiB/s.
    rb_node_visit_ns: int = 15
    #: Cost per radix-tree level traversed (ablation A backend).
    radix_level_ns: int = 12
    #: VMM memory-map last-entry cache hit (TLB-like memoization).
    memmap_cache_hit_ns: int = 4
    #: Guest-side PTE install for pages delivered via the PCI device.
    #: Costlier than the native install: the guest's page-table updates go
    #: through VMM shadow/nested paging. Calibrated with the RB insert
    #: cost so the Table 2 middle row lands near 4.0 GiB/s (8.8 without
    #: the tree inserts).
    guest_map_install_per_page_ns: int = 230

    # -- Linux kernel ---------------------------------------------------------
    #: Demand-paging fault service (single-OS XEMEM attachments map lazily;
    #: the recurring-attach penalty of Fig. 8(b) comes from these).
    linux_page_fault_ns: int = 1_800
    #: get_user_pages pinning, per page (exporter side, Linux enclaves).
    #: Pages are generally already allocated (the paper's footnote 1) and
    #: the refcount bump is cheap; calibrated so the Table 2 bottom row
    #: (Linux-VM export → Kitten attach) stays near-native, as measured.
    linux_gup_pin_per_page_ns: int = 20
    #: vm_mmap fixed cost to carve a VMA.
    vm_mmap_fixed_ns: int = 3_000
    #: Timer tick period and per-tick stolen time (Linux noise floor).
    linux_tick_period_ns: int = 1_000_000
    linux_tick_cost_ns: int = 3_000
    #: Background daemon burst: mean period and mean burst length. Bursts
    #: are sampled exponentially (seeded) by the noise model. Together
    #: with the tick this puts Linux's noise floor near 1.3% with a heavy
    #: tail — enough to open the paper's ≈2 s Fig. 8 gap and the Fig. 9
    #: weak-scaling divergence, without burying the compute signal.
    linux_daemon_period_ns: int = 250_000_000
    linux_daemon_burst_ns: int = 2_500_000

    # -- Kitten kernel --------------------------------------------------------
    #: Kitten's frequent baseline noise (Fig. 7): duration and period.
    kitten_baseline_detour_ns: int = 12_000
    kitten_baseline_period_ns: int = 10_000_000
    #: Periodic firmware SMIs: duration and period (Fig. 7's ≈100 µs band).
    smi_detour_ns: int = 100_000
    smi_period_ns: int = 1_000_000_000

    # -- memory system --------------------------------------------------------
    #: Effective single-socket copy bandwidth (STREAM copy), bytes/second.
    memcpy_bw_bytes_per_s: int = 10 * GB
    #: STREAM triad effective bandwidth, bytes/second.
    stream_bw_bytes_per_s: int = 8 * GB

    # -- InfiniBand -----------------------------------------------------------
    #: Effective RDMA verbs payload bandwidth (QDR, SR-IOV VF), bytes/second.
    rdma_bw_bytes_per_s: int = 3_400_000_000
    #: One-sided RDMA operation posting latency.
    rdma_post_ns: int = 1_200
    #: MPI point-to-point latency over IB.
    mpi_latency_ns: int = 1_500
    #: MPI large-message bandwidth, bytes/second.
    mpi_bw_bytes_per_s: int = 3_400_000_000

    # -- workload compute rates ----------------------------------------------
    #: HPCCG effective cost per matrix nonzero per iteration, per core set
    #: (memory-bound SpMV dominates; calibrated so the single-node Fig. 8
    #: configuration lands in the paper's ≈140–160 s band).
    hpccg_ns_per_nnz: float = 8.6
    #: Slowdown multiplier for HPCCG when virtualized (small; Palacios is a
    #: lightweight VMM and the paper finds virtualized compute competitive).
    vm_compute_overhead: float = 1.01

    def validate(self) -> None:
        """Sanity-check invariants the calibration relies on."""
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, (int, float)) and value < 0:
                raise ValueError(f"negative cost constant {f.name}={value}")
        if self.channel_chunk_bytes % 8 != 0:
            raise ValueError("channel chunk must hold whole 8-byte PFNs")

    # -- derived helpers -------------------------------------------------------

    def native_attach_per_page_ns(self) -> int:
        """Per-page cost of the native cross-enclave attach pipeline."""
        return (
            self.walk_per_page_ns
            + self.channel_per_pfn_ns
            + self.map_install_per_page_ns
        )

    def pages_of(self, nbytes: int) -> int:
        """Number of 4 KiB pages covering ``nbytes`` (ceil)."""
        return -(-nbytes // PAGE_4K)

    def pfn_list_chunks(self, npages: int) -> int:
        """Channel chunks needed to stream a PFN list of ``npages`` entries."""
        pfn_bytes = 8 * npages
        return max(1, -(-pfn_bytes // self.channel_chunk_bytes))

    def memcpy_ns(self, nbytes: int) -> int:
        """Modeled time to copy ``nbytes`` at memcpy bandwidth."""
        return int(nbytes * 1e9 / self.memcpy_bw_bytes_per_s)

    def rdma_transfer_ns(self, nbytes: int) -> int:
        """Posting latency plus wire time for one RDMA transfer."""
        return self.rdma_post_ns + int(nbytes * 1e9 / self.rdma_bw_bytes_per_s)


#: Module-level default used when a component is not handed a model
#: explicitly; benchmarks always construct their own.
DEFAULT_COSTS = CostModel()
DEFAULT_COSTS.validate()
