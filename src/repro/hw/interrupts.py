"""Inter-processor interrupts (IPIs) and per-core handler dispatch.

Pisces cross-enclave channels signal message availability with IPIs
(paper §4.5). An enclave registers a handler for a vector on a specific
core; sending the IPI delivers after :attr:`CostModel.ipi_latency_ns` and
then runs the handler *on the target core*, occupying it — which is what
makes the paper's core-0 bottleneck (§5.3) observable in this model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro import obs
from repro.sim.engine import Engine


@dataclass(frozen=True)
class IpiVector:
    """An interrupt vector number bound to a target core."""

    vector: int
    core_id: int

    def __post_init__(self):
        if not 0 <= self.vector < 256:
            raise ValueError(f"vector {self.vector} out of range [0, 256)")


class InterruptController:
    """Routes IPIs to per-(core, vector) handlers.

    Handlers are generator *factories*: ``handler(payload)`` must return a
    generator that runs to completion while the target core's resource is
    held. Handler occupancy is recorded in the core's steal log with tag
    ``"irq:<vector>"`` so noise measurements see interrupt processing.
    """

    def __init__(self, engine: Engine, node: "object"):
        self.engine = engine
        self.node = node
        self._handlers: Dict[Tuple[int, int], Callable] = {}
        self._next_vector = 32  # vectors below 32 are reserved (exceptions)
        self.delivered = 0

    def allocate_vector(self, core_id: int) -> IpiVector:
        """Reserve a fresh vector targeting ``core_id``."""
        vec = IpiVector(self._next_vector, core_id)
        self._next_vector += 1
        if self._next_vector >= 256:
            raise RuntimeError("out of interrupt vectors")
        return vec

    def register(self, vec: IpiVector, handler: Callable) -> None:
        """Bind a handler generator-factory to a (core, vector)."""
        key = (vec.core_id, vec.vector)
        if key in self._handlers:
            raise ValueError(f"vector {vec.vector} on core {vec.core_id} already bound")
        self._handlers[key] = handler

    def unregister(self, vec: IpiVector) -> None:
        """Unbind a vector (idempotent)."""
        self._handlers.pop((vec.core_id, vec.vector), None)

    def send_ipi(self, vec: IpiVector, payload: Optional[object] = None):
        """Generator: deliver an IPI and wait until its handler completes.

        The sender pays the delivery latency; the handler then contends for
        the target core and runs there.
        """
        handler = self._handlers.get((vec.core_id, vec.vector))
        if handler is None:
            raise RuntimeError(
                f"IPI to unbound vector {vec.vector} on core {vec.core_id}"
            )
        costs = self.node.costs
        faults = self.engine.faults
        if faults is not None and faults.affects_ipi:
            # A lost IPI costs the sender the delivery latency plus a
            # retransmit timeout before it tries again (bounded, so a
            # pathological plan cannot wedge the sender forever).
            lost = 0
            while lost < faults.MAX_IPI_RETRANSMITS and faults.ipi_lost():
                lost += 1
                obs.get().counter("faults.ipi.lost").inc()
                yield self.engine.sleep(
                    costs.ipi_latency_ns + faults.plan.ipi_retransmit_ns
                )
        yield self.engine.sleep(costs.ipi_latency_ns)
        core = self.node.core(vec.core_id)
        yield core.resource.acquire()
        start = self.engine.now
        try:
            result = yield from handler(payload)
        finally:
            core.resource.release()
            core.log_steal(start, self.engine.now - start, f"irq:{vec.vector}")
        self.delivered += 1
        o = obs.get()
        o.counter("hw.ipi.delivered").inc()
        o.counter(f"hw.ipi.core{vec.core_id}.delivered").inc()
        o.histogram("hw.ipi.handler_ns").observe(self.engine.now - start)
        return result

    def vectors_on_core(self, core_id: int) -> int:
        """How many vectors currently have handlers bound on ``core_id``."""
        return sum(1 for (cid, _v) in self._handlers if cid == core_id)

    def send_ipi_burst(self, vec: IpiVector, rounds: int, occupancy_ns: int):
        """Generator: ``rounds`` identical back-to-back IPIs as one reservation.

        Equivalent to calling :meth:`send_ipi` ``rounds`` times with a
        handler that occupies the core for ``occupancy_ns``, *provided the
        target core is uncontended for the duration*: the caller must check
        that before choosing this path (see
        :meth:`repro.pisces.channel.PiscesChannel._transfer`). The core is
        held once for the whole burst, then the per-round steal-log
        entries and statistics are reconstructed arithmetically so traces,
        counters, and ``ResourceStats`` match the per-round path.
        """
        if rounds <= 0:
            raise ValueError(f"bad burst of {rounds} rounds")
        if (vec.core_id, vec.vector) not in self._handlers:
            raise RuntimeError(
                f"IPI to unbound vector {vec.vector} on core {vec.core_id}"
            )
        costs = self.node.costs
        lat = costs.ipi_latency_ns
        yield self.engine.sleep(lat)
        core = self.node.core(vec.core_id)
        yield core.resource.acquire()
        start = self.engine.now
        try:
            yield self.engine.sleep(rounds * occupancy_ns + (rounds - 1) * lat)
        finally:
            core.resource.release()
            stats = core.resource.stats
            # Per-round parity: rounds short acquisitions of occupancy_ns
            # each, not one long hold spanning the inter-round gaps. Skip
            # the busy correction if a waiter slipped in mid-burst (busy
            # time then accrues at *their* release).
            stats.acquisitions += rounds - 1
            if stats._busy_since is None:
                stats.busy_ns -= (rounds - 1) * lat
            for i in range(rounds):
                core.log_steal(
                    start + i * (occupancy_ns + lat), occupancy_ns, f"irq:{vec.vector}"
                )
        self.delivered += rounds
        o = obs.get()
        o.counter("hw.ipi.delivered").inc(rounds)
        o.counter(f"hw.ipi.core{vec.core_id}.delivered").inc(rounds)
        hist = o.histogram("hw.ipi.handler_ns")
        for _ in range(rounds):
            hist.observe(occupancy_ns)

    def post_ipi(self, vec: IpiVector, payload: Optional[object] = None):
        """Fire-and-forget IPI: spawn delivery as its own process."""
        return self.engine.spawn(
            self.send_ipi(vec, payload), name=f"ipi:{vec.vector}@core{vec.core_id}"
        )
