"""Physical memory: frames over a real numpy backing store.

A node's RAM is one ``numpy`` byte array. Page frame number (PFN) ``n``
names bytes ``[n*4096, (n+1)*4096)`` of that array. Every mapping anywhere
in the simulation — a Kitten process heap, a Linux VMA, a guest-physical
region inside a Palacios VM — ultimately resolves to PFNs here, so shared
memory is genuinely shared: stores through one mapping are loads through
another.

NUMA is modeled as disjoint PFN zones, each with its own first-fit
allocator, because the paper pins every enclave to a single NUMA socket
(§5.1) and Pisces partitions memory *blocks* between enclaves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.hw.costs import PAGE_4K


class OutOfMemoryError(MemoryError):
    """Raised when a frame allocation cannot be satisfied."""


@dataclass(frozen=True)
class FrameRange:
    """A physically contiguous run of 4 KiB frames."""

    start_pfn: int
    nframes: int

    def __post_init__(self):
        if self.nframes <= 0:
            raise ValueError(f"empty frame range at pfn {self.start_pfn}")
        if self.start_pfn < 0:
            raise ValueError(f"negative pfn {self.start_pfn}")

    @property
    def end_pfn(self) -> int:
        """One past the last frame of the run."""
        return self.start_pfn + self.nframes

    @property
    def nbytes(self) -> int:
        return self.nframes * PAGE_4K

    def pfns(self) -> np.ndarray:
        """The run's frame numbers as an int64 array."""
        return np.arange(self.start_pfn, self.end_pfn, dtype=np.int64)

    def overlaps(self, other: "FrameRange") -> bool:
        """True when the two runs share any frame."""
        return self.start_pfn < other.end_pfn and other.start_pfn < self.end_pfn


class FrameRangeList:
    """Structure-of-arrays arena of contiguous frame runs.

    Run ``i`` covers frames ``[starts[i], starts[i] + lengths[i])``. The
    columns live in two flat ``int64`` arrays, so building, flattening,
    and freeing a million-frame scattered allocation is a handful of
    numpy operations instead of one :class:`FrameRange` object per run.
    Behaves like a read-only sequence of :class:`FrameRange` — indexing
    materializes a view object on demand — so existing per-range callers
    keep working unchanged.
    """

    __slots__ = ("starts", "lengths")

    def __init__(self, starts: np.ndarray, lengths: np.ndarray):
        self.starts = np.asarray(starts, dtype=np.int64)
        self.lengths = np.asarray(lengths, dtype=np.int64)
        if len(self.starts) != len(self.lengths):
            raise ValueError("starts and lengths disagree on length")
        if len(self.lengths) and (self.lengths.min() <= 0 or self.starts.min() < 0):
            raise ValueError("frame runs must be non-empty with non-negative starts")

    @classmethod
    def from_pfns(cls, pfns: np.ndarray) -> "FrameRangeList":
        """Coalesce an ascending PFN array into maximal runs (vectorized)."""
        pfns = np.asarray(pfns, dtype=np.int64)
        if len(pfns) == 0:
            return cls(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        heads = np.concatenate(([0], np.flatnonzero(np.diff(pfns) != 1) + 1))
        lengths = np.diff(np.concatenate((heads, [len(pfns)])))
        return cls(pfns[heads], lengths)

    @property
    def nframes(self) -> int:
        """Total frames across all runs."""
        return int(self.lengths.sum())

    def pfns(self) -> np.ndarray:
        """Flatten into a PFN array, preserving run order (vectorized).

        Run-length decode: an array of ones with a corrective jump at
        each run head turns into the frame numbers under a cumulative sum.
        """
        total = self.nframes
        if total == 0:
            return np.empty(0, dtype=np.int64)
        out = np.ones(total, dtype=np.int64)
        out[0] = self.starts[0]
        if len(self.starts) > 1:
            heads = np.cumsum(self.lengths[:-1])
            out[heads] = self.starts[1:] - (self.starts[:-1] + self.lengths[:-1] - 1)
        return np.cumsum(out)

    def __len__(self) -> int:
        return len(self.starts)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return FrameRangeList(self.starts[i], self.lengths[i])
        return FrameRange(int(self.starts[i]), int(self.lengths[i]))

    def __iter__(self):
        for start, length in zip(self.starts.tolist(), self.lengths.tolist()):
            yield FrameRange(start, length)

    def __eq__(self, other) -> bool:
        if isinstance(other, FrameRangeList):
            return bool(
                len(self) == len(other)
                and (self.starts == other.starts).all()
                and (self.lengths == other.lengths).all()
            )
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:
        return f"FrameRangeList({len(self)} runs, {self.nframes} frames)"


def ranges_to_pfns(ranges: Sequence[FrameRange]) -> np.ndarray:
    """Flatten contiguous ranges into a PFN array, preserving order."""
    if isinstance(ranges, FrameRangeList):
        return ranges.pfns()
    if not len(ranges):
        return np.empty(0, dtype=np.int64)
    return np.concatenate([r.pfns() for r in ranges])


def pfns_to_ranges(pfns: np.ndarray) -> FrameRangeList:
    """Coalesce a PFN array back into maximal contiguous runs.

    Returns a :class:`FrameRangeList`; it compares equal to (and
    iterates as) the list of :class:`FrameRange` it used to return.
    """
    return FrameRangeList.from_pfns(pfns)


class FrameAllocator:
    """First-fit allocator over a contiguous PFN window.

    Keeps an ordered free list of ``[start, end)`` runs. ``alloc`` returns
    contiguous ranges when possible; ``alloc_scattered`` deliberately caps
    run length to produce the fragmented frame lists whose mapping cost the
    paper analyses in §5.4.
    """

    def __init__(self, start_pfn: int, nframes: int):
        if nframes <= 0:
            raise ValueError("allocator needs at least one frame")
        self.start_pfn = start_pfn
        self.nframes = nframes
        self._free: List[List[int]] = [[start_pfn, start_pfn + nframes]]

    @property
    def free_frames(self) -> int:
        """Frames currently free in this allocator."""
        return sum(end - start for start, end in self._free)

    @property
    def used_frames(self) -> int:
        """Frames currently allocated from this allocator."""
        return self.nframes - self.free_frames

    def alloc(self, nframes: int) -> FrameRange:
        """Allocate one physically contiguous run of ``nframes``."""
        if nframes <= 0:
            raise ValueError(f"bad allocation size {nframes}")
        for i, (start, end) in enumerate(self._free):
            if end - start >= nframes:
                self._free[i][0] = start + nframes
                if self._free[i][0] == self._free[i][1]:
                    del self._free[i]
                return FrameRange(start, nframes)
        raise OutOfMemoryError(
            f"no contiguous run of {nframes} frames "
            f"({self.free_frames} free, fragmented into {len(self._free)} runs)"
        )

    def alloc_pages(self, nframes: int, max_run: Optional[int] = None) -> FrameRangeList:
        """Allocate ``nframes`` as a run list, first-fit, possibly split.

        ``max_run`` caps each run's length (``alloc_scattered`` passes 1 to
        produce fully discontiguous lists). Returns a
        :class:`FrameRangeList`; splitting a fragmented multi-GiB grab by
        ``max_run`` is a vectorized chop per free-list run, not one
        Python object per resulting run.
        """
        if nframes <= 0:
            raise ValueError(f"bad allocation size {nframes}")
        if self.free_frames < nframes:
            raise OutOfMemoryError(
                f"need {nframes} frames, only {self.free_frames} free"
            )
        taken: List[List[int]] = []  # whole [start, take] grabs, pre-split
        remaining = nframes
        while remaining > 0:
            start, end = self._free[0]
            take = min(remaining, end - start)
            self._free[0][0] = start + take
            if self._free[0][0] == self._free[0][1]:
                del self._free[0]
            taken.append([start, take])
            remaining -= take
        if max_run is None:
            grabs = np.asarray(taken, dtype=np.int64)
            return FrameRangeList(grabs[:, 0], grabs[:, 1])
        parts = []
        for start, take in taken:
            heads = np.arange(0, take, max_run, dtype=np.int64)
            lengths = np.minimum(max_run, take - heads)
            parts.append((start + heads, lengths))
        return FrameRangeList(
            np.concatenate([p[0] for p in parts]),
            np.concatenate([p[1] for p in parts]),
        )

    def alloc_scattered(self, nframes: int) -> FrameRangeList:
        """Allocate ``nframes`` pairwise *non-adjacent* frames.

        Models the paper's §4.4 observation that host frames pinned for
        XEMEM "are not guaranteed to be contiguous": a hole is left after
        every allocated frame (by allocating in pairs and returning the
        second frame of each), so downstream run-coalescing sees one run
        per page. Falls back to plain single-frame allocation when memory
        is too tight for holes.
        """
        if nframes <= 0:
            raise ValueError(f"bad allocation size {nframes}")
        if self.free_frames < 2 * nframes:
            return self.alloc_pages(nframes, max_run=1)
        pairs = self.alloc_pages(2 * nframes, max_run=2)
        ones = np.ones(nframes, dtype=np.int64)
        got = FrameRangeList(pairs.starts[:nframes], ones)
        wide = pairs.lengths[:nframes] == 2
        self.free_run_list(
            FrameRangeList(
                np.concatenate((pairs.starts[:nframes][wide] + 1, pairs.starts[nframes:])),
                np.concatenate((ones[: int(wide.sum())], pairs.lengths[nframes:])),
            )
        )
        return got

    def free(self, rng: FrameRange) -> None:
        """Return a range to the free list, coalescing neighbours."""
        if rng.start_pfn < self.start_pfn or rng.end_pfn > self.start_pfn + self.nframes:
            raise ValueError(f"range {rng} outside allocator window")
        new = [rng.start_pfn, rng.end_pfn]
        # insert sorted by start
        lo = 0
        for i, (start, _end) in enumerate(self._free):
            if start > new[0]:
                break
            lo = i + 1
        # overlap checks against neighbours
        if lo > 0 and self._free[lo - 1][1] > new[0]:
            raise ValueError(f"double free of frames near pfn {rng.start_pfn}")
        if lo < len(self._free) and self._free[lo][0] < new[1]:
            raise ValueError(f"double free of frames near pfn {rng.start_pfn}")
        self._free.insert(lo, new)
        self._coalesce(lo)

    def free_all(self, ranges: Iterable[FrameRange]) -> None:
        """Free every range in the iterable."""
        if isinstance(ranges, FrameRangeList):
            self.free_run_list(ranges)
            return
        for rng in ranges:
            self.free(rng)

    def free_run_list(self, runs: FrameRangeList) -> None:
        """Return a whole run list to the free list in one merge.

        Vectorized counterpart of per-range :meth:`free`: one sorted
        merge of the incoming runs with the existing free list, with the
        same window and double-free checks, then a single coalescing
        pass. All-or-nothing — a bad run leaves the free list untouched.
        """
        if len(runs) == 0:
            return
        order = np.argsort(runs.starts, kind="stable")
        new_starts = runs.starts[order]
        new_ends = new_starts + runs.lengths[order]
        if new_starts[0] < self.start_pfn or new_ends[-1] > self.start_pfn + self.nframes:
            bad = int(new_starts[0] if new_starts[0] < self.start_pfn else new_starts[-1])
            raise ValueError(f"range at pfn {bad} outside allocator window")
        if len(self._free):
            free_arr = np.asarray(self._free, dtype=np.int64)
            starts = np.concatenate((free_arr[:, 0], new_starts))
            ends = np.concatenate((free_arr[:, 1], new_ends))
        else:
            starts, ends = new_starts, new_ends
        order = np.argsort(starts, kind="stable")
        starts, ends = starts[order], ends[order]
        if len(starts) > 1 and (ends[:-1] > starts[1:]).any():
            where = int(np.flatnonzero(ends[:-1] > starts[1:])[0])
            raise ValueError(f"double free of frames near pfn {int(starts[where + 1])}")
        keep = np.concatenate(([True], starts[1:] != ends[:-1]))
        heads = np.flatnonzero(keep)
        merged_starts = starts[heads]
        merged_ends = ends[np.concatenate((heads[1:] - 1, [len(ends) - 1]))]
        self._free = [list(pair) for pair in zip(merged_starts.tolist(), merged_ends.tolist())]

    def _coalesce(self, i: int) -> None:
        # merge with next
        if i + 1 < len(self._free) and self._free[i][1] == self._free[i + 1][0]:
            self._free[i][1] = self._free[i + 1][1]
            del self._free[i + 1]
        # merge with previous
        if i > 0 and self._free[i - 1][1] == self._free[i][0]:
            self._free[i - 1][1] = self._free[i][1]
            del self._free[i]


class NumaZone:
    """A NUMA socket's memory: a PFN window plus its allocator."""

    def __init__(self, zone_id: int, start_pfn: int, nframes: int):
        self.zone_id = zone_id
        self.start_pfn = start_pfn
        self.nframes = nframes
        self.allocator = FrameAllocator(start_pfn, nframes)

    @property
    def nbytes(self) -> int:
        return self.nframes * PAGE_4K

    def contains_pfn(self, pfn: int) -> bool:
        """True when ``pfn`` belongs to this NUMA zone."""
        return self.start_pfn <= pfn < self.start_pfn + self.nframes

    def __repr__(self) -> str:
        return (
            f"NumaZone(id={self.zone_id}, pfns=[{self.start_pfn},"
            f"{self.start_pfn + self.nframes}), free={self.allocator.free_frames})"
        )


class PhysicalMemory:
    """All RAM of one node: the backing store plus NUMA zones.

    The backing store is *sparse*: a frame's 4 KiB array materializes on
    first touch (hardware zero-fills, so untouched frames read as zeros).
    This lets the simulator model 32 GB nodes without allocating 32 GB of
    host RAM, while preserving the aliasing property: every
    :meth:`frame_view` of the same PFN returns the same mutable array.
    """

    def __init__(self, zone_bytes: Sequence[int]):
        if not zone_bytes:
            raise ValueError("need at least one NUMA zone")
        for nb in zone_bytes:
            if nb <= 0 or nb % PAGE_4K != 0:
                raise ValueError(f"zone size must be a positive page multiple: {nb}")
        self.total_bytes = int(sum(zone_bytes))
        self._frames: dict = {}
        self.zones: List[NumaZone] = []
        pfn = 0
        for zid, nb in enumerate(zone_bytes):
            nframes = nb // PAGE_4K
            self.zones.append(NumaZone(zid, pfn, nframes))
            pfn += nframes
        self.total_frames = pfn

    @property
    def resident_frames(self) -> int:
        """Number of frames actually materialized in host memory."""
        return len(self._frames)

    def zone(self, zone_id: int) -> NumaZone:
        """The NUMA zone with the given id."""
        return self.zones[zone_id]

    def zone_of_pfn(self, pfn: int) -> NumaZone:
        """The NUMA zone containing ``pfn``."""
        for z in self.zones:
            if z.contains_pfn(pfn):
                return z
        raise ValueError(f"pfn {pfn} outside physical memory")

    def frame_view(self, pfn: int) -> np.ndarray:
        """The writable 4096-byte array backing one frame (lazily created)."""
        if not 0 <= pfn < self.total_frames:
            raise ValueError(f"pfn {pfn} outside physical memory")
        frame = self._frames.get(pfn)
        if frame is None:
            frame = self._frames[pfn] = np.zeros(PAGE_4K, dtype=np.uint8)
        return frame

    def map_region(self, pfns: np.ndarray, writable: bool = True) -> "MappedRegion":
        """A MappedRegion viewing the given ordered frame list."""
        return MappedRegion(self, np.asarray(pfns, dtype=np.int64), writable=writable)


class MappedRegion:
    """User-visible window onto an ordered list of frames.

    Byte ``i`` of the region lives in frame ``pfns[i // 4096]`` at offset
    ``i % 4096``. Reads and writes hit the node's single backing store, so
    two regions over the same frames alias — that *is* shared memory.

    A read-only mapping (``writable=False`` — e.g. an XEMEM attachment to
    a segment granted without write permission) refuses stores with
    :class:`PermissionError` and hands out non-writeable page views.
    """

    def __init__(self, mem: PhysicalMemory, pfns: np.ndarray, writable: bool = True):
        if len(pfns) == 0:
            raise ValueError("empty mapping")
        if pfns.min() < 0 or pfns.max() >= mem.total_frames:
            raise ValueError("mapping references frames outside physical memory")
        self.mem = mem
        self.pfns = pfns.astype(np.int64, copy=True)
        self.nbytes = len(pfns) * PAGE_4K
        self.writable = writable

    @property
    def npages(self) -> int:
        """Pages in the mapping."""
        return len(self.pfns)

    def _check(self, offset: int, length: int) -> None:
        if offset < 0 or length < 0 or offset + length > self.nbytes:
            raise ValueError(
                f"access [{offset}, {offset + length}) outside region of {self.nbytes} bytes"
            )

    def write(self, offset: int, data: bytes) -> None:
        """Scatter ``data`` into the region starting at ``offset``."""
        if not self.writable:
            raise PermissionError("write through read-only mapping")
        self._check(offset, len(data))
        src = np.frombuffer(data, dtype=np.uint8)
        pos = 0
        while pos < len(data):
            page = (offset + pos) // PAGE_4K
            in_page = (offset + pos) % PAGE_4K
            take = min(len(data) - pos, PAGE_4K - in_page)
            frame = self.mem.frame_view(int(self.pfns[page]))
            frame[in_page : in_page + take] = src[pos : pos + take]
            pos += take

    def read(self, offset: int, length: int) -> bytes:
        """Gather ``length`` bytes starting at ``offset``."""
        self._check(offset, length)
        out = np.empty(length, dtype=np.uint8)
        pos = 0
        while pos < length:
            page = (offset + pos) // PAGE_4K
            in_page = (offset + pos) % PAGE_4K
            take = min(length - pos, PAGE_4K - in_page)
            frame = self.mem.frame_view(int(self.pfns[page]))
            out[pos : pos + take] = frame[in_page : in_page + take]
            pos += take
        return out.tobytes()

    def page_view(self, index: int) -> np.ndarray:
        """View of page ``index``; non-writeable for read-only mappings."""
        if not 0 <= index < self.npages:
            raise ValueError(f"page {index} outside region of {self.npages} pages")
        frame = self.mem.frame_view(int(self.pfns[index]))
        if not self.writable:
            frame = frame.view()
            frame.flags.writeable = False
        return frame

    def as_array(self) -> np.ndarray:
        """Gather the whole region into one contiguous array (a copy)."""
        return np.concatenate([self.page_view(i) for i in range(self.npages)])

    def fill(self, value: int) -> None:
        """Set every byte of the region to ``value``."""
        if not self.writable:
            raise PermissionError("fill of read-only mapping")
        for i in range(self.npages):
            self.page_view(i)[:] = value

    def checksum(self) -> int:
        """Order-sensitive checksum of the region contents (for tests)."""
        total = 0
        for i in range(self.npages):
            page = self.page_view(i).astype(np.uint64)
            weights = np.arange(1, len(page) + 1, dtype=np.uint64) + np.uint64(i)
            total = (total + int((page * weights).sum())) % (2**61 - 1)
        return total
