"""Node topology: sockets, cores, hyperthreads, and whole-node assembly.

Two concrete specs mirror the paper's testbeds:

* :data:`R420_SPEC` — Dell PowerEdge R420: 2 sockets × 6 cores × 2 HT = 24
  hardware threads, 2 × 16 GB NUMA (§5.1, §7.1).
* :data:`OPTIPLEX_SPEC` — Dell OptiPlex: 1 socket × 4 cores × 2 HT = 8
  hardware threads, 1 × 8 GB (§6.3).

A :class:`Core` is a hardware thread. It carries a contention
:class:`~repro.sim.resources.Resource` (capacity 1) and a *steal log* of
``(start_ns, duration_ns, tag)`` intervals during which something other
than the running application held the core — noise daemons, interrupt
handlers, XEMEM attachment service. The Selfish Detour benchmark (Fig. 7)
reads this log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.hw.costs import CostModel, DEFAULT_COSTS, GB
from repro.hw.memory import PhysicalMemory
from repro.sim.engine import Engine
from repro.sim.resources import Resource


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a node's hardware."""

    name: str
    sockets: int
    cores_per_socket: int
    threads_per_core: int
    memory_per_socket_bytes: int
    cpu_ghz: float

    @property
    def total_threads(self) -> int:
        """Hardware threads on the node."""
        return self.sockets * self.cores_per_socket * self.threads_per_core

    @property
    def total_memory_bytes(self) -> int:
        """Total RAM across sockets."""
        return self.sockets * self.memory_per_socket_bytes


R420_SPEC = NodeSpec(
    name="PowerEdge-R420",
    sockets=2,
    cores_per_socket=6,
    threads_per_core=2,
    memory_per_socket_bytes=16 * GB,
    cpu_ghz=2.10,
)

OPTIPLEX_SPEC = NodeSpec(
    name="OptiPlex",
    sockets=1,
    cores_per_socket=4,
    threads_per_core=2,
    memory_per_socket_bytes=8 * GB,
    cpu_ghz=3.40,
)


class Core:
    """One hardware thread."""

    def __init__(self, engine: Engine, core_id: int, socket_id: int):
        self.engine = engine
        self.core_id = core_id
        self.socket_id = socket_id
        #: Which enclave currently owns this core (set by Pisces).
        self.owner: Optional[object] = None
        #: Contention resource: kernel handlers and app threads serialize here.
        self.resource = Resource(engine, capacity=1, name=f"core{core_id}")
        #: Intervals stolen from the application: (start_ns, duration_ns, tag).
        self.steal_log: List[Tuple[int, int, str]] = []

    def log_steal(self, start_ns: int, duration_ns: int, tag: str) -> None:
        """Record an interval stolen from the application on this core."""
        if duration_ns < 0:
            raise ValueError(f"negative steal duration {duration_ns}")
        self.steal_log.append((start_ns, duration_ns, tag))

    def occupy(self, duration_ns: int, tag: str):
        """Generator: hold the core for ``duration_ns`` and log the steal."""
        yield self.resource.acquire()
        start = self.engine.now
        try:
            yield self.engine.sleep(duration_ns)
        finally:
            self.resource.release()
        self.log_steal(start, duration_ns, tag)

    def stolen_between(self, t0: int, t1: int, tags: Optional[Sequence[str]] = None) -> int:
        """Total stolen nanoseconds overlapping window [t0, t1)."""
        total = 0
        for start, dur, tag in self.steal_log:
            if tags is not None and tag not in tags:
                continue
            lo = max(start, t0)
            hi = min(start + dur, t1)
            if hi > lo:
                total += hi - lo
        return total

    def __repr__(self) -> str:
        return f"Core({self.core_id}, socket={self.socket_id}, owner={self.owner!r})"


class Socket:
    """A CPU socket: a set of cores plus its NUMA zone id."""

    def __init__(self, socket_id: int, cores: List[Core]):
        self.socket_id = socket_id
        self.cores = cores

    @property
    def zone_id(self) -> int:
        """The NUMA zone this socket's memory lives in."""
        return self.socket_id


class NodeHardware:
    """A fully assembled node: engine, memory, cores, cost model.

    This is the root object every enclave on a node hangs off.
    """

    def __init__(
        self,
        engine: Engine,
        spec: NodeSpec = R420_SPEC,
        costs: Optional[CostModel] = None,
        node_id: int = 0,
    ):
        self.engine = engine
        self.spec = spec
        self.costs = costs or DEFAULT_COSTS
        self.node_id = node_id
        self.memory = PhysicalMemory(
            [spec.memory_per_socket_bytes] * spec.sockets
        )
        self.cores: List[Core] = []
        self.sockets: List[Socket] = []
        cid = 0
        for sid in range(spec.sockets):
            socket_cores = []
            for _ in range(spec.cores_per_socket * spec.threads_per_core):
                core = Core(engine, cid, sid)
                self.cores.append(core)
                socket_cores.append(core)
                cid += 1
            self.sockets.append(Socket(sid, socket_cores))
        # Interrupt controller is attached lazily to avoid an import cycle.
        from repro.hw.interrupts import InterruptController

        self.intc = InterruptController(engine, self)

    def core(self, core_id: int) -> Core:
        """The Core with the given global id."""
        return self.cores[core_id]

    def socket_cores(self, socket_id: int) -> List[Core]:
        """All hardware threads of one socket."""
        return self.sockets[socket_id].cores

    def free_cores(self) -> List[Core]:
        """Cores not yet owned by any enclave."""
        return [c for c in self.cores if c.owner is None]

    def __repr__(self) -> str:
        return (
            f"NodeHardware(node={self.node_id}, spec={self.spec.name}, "
            f"cores={len(self.cores)}, mem={self.memory.total_bytes // GB}GB)"
        )
