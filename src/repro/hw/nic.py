"""InfiniBand NIC model: ConnectX-3 with SR-IOV virtual functions.

The Fig. 5 baseline assigns two SR-IOV virtual functions of the dual-port
QDR device to two VMs and runs an RDMA write bandwidth test between them.
We model the device as a shared serial link with an effective verbs payload
bandwidth (:attr:`CostModel.rdma_bw_bytes_per_s`) plus a per-operation
posting latency; virtual functions multiplex the link.
"""

from __future__ import annotations

from typing import List, Optional

from repro import obs
from repro.hw.costs import CostModel
from repro.sim.engine import Engine
from repro.sim.resources import Resource


class VirtualFunction:
    """One SR-IOV virtual function handed to a guest."""

    def __init__(self, nic: "InfinibandNic", vf_id: int):
        self.nic = nic
        self.vf_id = vf_id
        self.bytes_sent = 0
        self.ops_posted = 0

    def rdma_write(self, nbytes: int, mtu: Optional[int] = None):
        """Generator: one-sided RDMA write of ``nbytes`` to the peer.

        The transfer is segmented at the MTU; segmentation affects only
        per-op accounting (the wire is modeled at effective payload
        bandwidth, which already folds in header overhead at the
        recommended MTU, per the paper's methodology).
        """
        if nbytes <= 0:
            raise ValueError(f"bad RDMA size {nbytes}")
        mtu = mtu or self.nic.recommended_mtu
        nsegs = -(-nbytes // mtu)
        self.ops_posted += 1
        o = obs.get()
        with o.span("nic.rdma.write", self.nic.engine, track="nic",
                    vf=self.vf_id, nbytes=nbytes, nsegs=nsegs):
            yield self.nic.engine.sleep(self.nic.costs.rdma_post_ns)
            # The link is serial: concurrent VFs queue.
            yield self.nic.link.acquire()
            try:
                wire_ns = int(nbytes * 1e9 / self.nic.costs.rdma_bw_bytes_per_s)
                yield self.nic.engine.sleep(wire_ns)
            finally:
                self.nic.link.release()
        o.counter("nic.rdma.msgs").inc()
        o.counter("nic.rdma.bytes").inc(nbytes)
        self.bytes_sent += nbytes
        self.nic.bytes_on_wire += nbytes
        return nsegs


class InfinibandNic:
    """Dual-port QDR Mellanox ConnectX-3 with SR-IOV."""

    #: QDR InfiniBand's recommended MTU.
    recommended_mtu = 4096

    def __init__(self, engine: Engine, costs: CostModel, num_vfs: int = 2):
        if num_vfs < 1:
            raise ValueError("need at least one virtual function")
        self.engine = engine
        self.costs = costs
        self.link = Resource(engine, capacity=1, name="ib-link")
        self.vfs: List[VirtualFunction] = [
            VirtualFunction(self, i) for i in range(num_vfs)
        ]
        self.bytes_on_wire = 0

    def vf(self, vf_id: int) -> VirtualFunction:
        """The SR-IOV virtual function with the given index."""
        return self.vfs[vf_id]
