"""Hardware substrate: frames, NUMA topology, interrupts, NIC, cost model.

Physical memory is *real*: every node owns a numpy byte array, and a frame
is a 4 KiB window into it. Cross-enclave mappings therefore give genuine
zero-copy semantics — bytes stored through one mapping are visible through
every other mapping of the same frames — which the test suite verifies
frame by frame.

Time, by contrast, is *modeled*: :class:`~repro.hw.costs.CostModel` holds
every nanosecond constant in the simulation, calibrated once against the
paper's headline numbers (see DESIGN.md §4) and never tuned per-figure.
"""

from repro.hw.costs import CostModel, PAGE_4K, PAGE_2M, PAGE_1G
from repro.hw.memory import (
    PhysicalMemory,
    NumaZone,
    FrameAllocator,
    FrameRange,
    MappedRegion,
    OutOfMemoryError,
)
from repro.hw.topology import NodeSpec, Core, Socket, NodeHardware, R420_SPEC, OPTIPLEX_SPEC
from repro.hw.interrupts import InterruptController, IpiVector
from repro.hw.nic import InfinibandNic, VirtualFunction

__all__ = [
    "CostModel",
    "PAGE_4K",
    "PAGE_2M",
    "PAGE_1G",
    "PhysicalMemory",
    "NumaZone",
    "FrameAllocator",
    "FrameRange",
    "MappedRegion",
    "OutOfMemoryError",
    "NodeSpec",
    "Core",
    "Socket",
    "NodeHardware",
    "R420_SPEC",
    "OPTIPLEX_SPEC",
    "InterruptController",
    "IpiVector",
    "InfinibandNic",
    "VirtualFunction",
]
