"""XEMEM: cross-enclave shared memory (the paper's contribution).

Public surface:

* :class:`~repro.xemem.api.XpmemApi` — the XPMEM-backwards-compatible
  user API of Table 1 (``xpmem_make`` / ``remove`` / ``get`` / ``release``
  / ``attach`` / ``detach``), bound to one OS process. Applications use
  only this; they never see enclave IDs or channels (§3.1's transparency
  goal).
* :class:`~repro.xemem.module.XememModule` — the per-enclave "kernel
  module": local segment registry, command routing, remote attach
  serving via page-table walks, and mapping of remote PFN lists.
* :class:`~repro.xemem.nameserver.NameServer` — the centralized segid
  authority providing the common global name space (§3.1) and segid→
  enclave mapping used to forward attachment commands (§4.2).
* :func:`~repro.xemem.routing.run_discovery` — the §3.2 hierarchical
  discovery/routing protocol.
* :func:`~repro.xemem.module.install_xemem` — convenience: put a module
  on every enclave of a system and run discovery.
"""

from repro.xemem.ids import (
    Permit, SegmentId, ApId, XememError, XememOverload, XememTimeout,
    PermissionError_,
)
from repro.xemem.nameserver import NameServer
from repro.xemem.module import XememModule, install_xemem
from repro.xemem.api import XpmemApi
from repro.xemem.shmem import AttachedRegion, ExportedSegment
from repro.xemem.routing import run_discovery
from repro.xemem.overload import (
    AdmissionController, CircuitBreaker, ModuleOverload, OverloadConfig,
    RetryBudget, arm_overload, disarm_overload,
)

__all__ = [
    "Permit",
    "SegmentId",
    "ApId",
    "XememError",
    "XememOverload",
    "XememTimeout",
    "PermissionError_",
    "NameServer",
    "XememModule",
    "install_xemem",
    "XpmemApi",
    "AttachedRegion",
    "ExportedSegment",
    "run_discovery",
    "AdmissionController",
    "CircuitBreaker",
    "ModuleOverload",
    "OverloadConfig",
    "RetryBudget",
    "arm_overload",
    "disarm_overload",
]
