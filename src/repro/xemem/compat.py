"""Strict XPMEM C-API compatibility layer.

The paper's compatibility claim (§4.1) is that XEMEM's API "is backwards
compatible with the API exported by XPMEM", so unmodified applications
deploy without knowing about enclaves. :class:`XpmemCompat` renders that
claim literally: the SGI/Cray ``xpmem.h`` call shapes, C-style —

* ``xpmem_make(vaddr, size, permit_type, permit_value) -> segid | -errno``
* ``xpmem_remove(segid) -> 0 | -errno``
* ``xpmem_get(segid, flags, permit_type, permit_value) -> apid | -errno``
* ``xpmem_release(apid) -> 0 | -errno``
* ``xpmem_attach(apid, offset, size, vaddr_hint) -> vaddr | -errno``
* ``xpmem_detach(vaddr) -> 0 | -errno``

Failures return negative errno values instead of raising; attach returns
a virtual *address*, and detach takes that address back — exactly the C
contract, down to ``XPMEM_PERMIT_MODE`` being the only supported permit
type. The idiomatic Python surface is :class:`repro.xemem.api.XpmemApi`;
this shim exists for porting code written against real XPMEM, and as an
executable test of the compatibility claim.
"""

from __future__ import annotations

import errno
from typing import Dict, Optional

from repro.xemem.api import XpmemApi
from repro.xemem.ids import ApId, Permit, PermissionError_, SegmentId, XememError

#: The only permit type XPMEM (and XEMEM) define.
XPMEM_PERMIT_MODE = 0x1

#: xpmem_get flags.
XPMEM_RDONLY = 0x1
XPMEM_RDWR = 0x2

#: Current version of the emulated XPMEM interface (mirrors xpmem.h's
#: XPMEM_CURRENT_VERSION encoding: major << 16 | minor).
XPMEM_CURRENT_VERSION = (2 << 16) | 6


def xpmem_version() -> int:
    """The classic sanity-check entry point."""
    return XPMEM_CURRENT_VERSION


class XpmemCompat:
    """C-shaped XPMEM interface bound to one process.

    All methods are generators (simulation calls); their *return values*
    follow the C convention: handles/addresses on success, ``-errno`` on
    failure. Nothing raises for protocol-level errors.
    """

    def __init__(self, proc):
        self._api = XpmemApi(proc)
        self._attachments_by_vaddr: Dict[int, object] = {}

    # -- exporter ------------------------------------------------------------------

    def xpmem_make(self, vaddr: int, size: int, permit_type: int, permit_value: int):
        """C shape: export a region; returns segid or -errno."""
        if permit_type != XPMEM_PERMIT_MODE:
            return -errno.EINVAL
        try:
            permit = Permit(mode=permit_value)
        except ValueError:
            return -errno.EINVAL
        try:
            segid = yield from self._api.xpmem_make(vaddr, size, permit=permit)
        except XememError:
            return -errno.EINVAL
        return int(segid)

    def xpmem_remove(self, segid: int):
        """C shape: remove an exported segid; returns 0 or -errno."""
        try:
            yield from self._api.xpmem_remove(SegmentId(segid))
        except (XememError, ValueError):
            return -errno.EINVAL
        return 0

    # -- attacher ------------------------------------------------------------------

    def xpmem_get(self, segid: int, flags: int, permit_type: int, _permit_value: int):
        """C shape: request access; returns apid or -errno."""
        if permit_type != XPMEM_PERMIT_MODE:
            return -errno.EINVAL
        if flags not in (XPMEM_RDONLY, XPMEM_RDWR):
            return -errno.EINVAL
        try:
            apid = yield from self._api.xpmem_get(
                SegmentId(segid), write=(flags == XPMEM_RDWR)
            )
        except PermissionError_:
            return -errno.EACCES
        except (XememError, ValueError):
            return -errno.ENOENT
        return int(apid)

    def xpmem_release(self, apid: int):
        """C shape: release a grant; returns 0 or -errno."""
        try:
            yield from self._api.xpmem_release(ApId(apid))
        except XememError:
            return -errno.EINVAL
        return 0

    def xpmem_attach(self, apid: int, offset: int, size: Optional[int],
                     vaddr_hint: Optional[int] = None):
        """Returns the attached virtual address (vaddr hints, like real
        XPMEM, are advisory and ignored by this implementation)."""
        del vaddr_hint
        try:
            att = yield from self._api.xpmem_attach(
                ApId(apid), offset=offset, size=size
            )
        except XememError:
            return -errno.EINVAL
        self._attachments_by_vaddr[att.vaddr] = att
        return att.vaddr

    def xpmem_detach(self, vaddr: int):
        att = self._attachments_by_vaddr.pop(vaddr, None)
        if att is None:
            return -errno.EINVAL
        try:
            yield from self._api.xpmem_detach(att)
        except XememError:
            return -errno.EINVAL
        return 0

    # -- reads/writes for tests (stand-in for dereferencing the vaddr) -------------

    def deref(self, vaddr: int):
        """The attachment object backing an attached address (the moral
        equivalent of dereferencing the returned pointer)."""
        att = self._attachments_by_vaddr.get(vaddr)
        if att is None:
            raise KeyError(f"no attachment at {vaddr:#x}")
        return att
