"""Identifier and permission types for the XEMEM name space.

Segment IDs (*segids*) are allocated by the centralized name server and
are globally unique across every enclave on the system (§3.1) — no
enclave coordinate is embedded in them, which is exactly what keeps
applications enclave-unaware. Access permits (*apids*) are grants handed
out by ``xpmem_get`` and consumed by ``xpmem_attach``, mirroring XPMEM.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Segids start here; low values are reserved for protocol sentinels.
SEGID_BASE = 0x1000


class XememError(RuntimeError):
    """Any XEMEM protocol or usage failure visible to applications."""


class PermissionError_(XememError):
    """``xpmem_get`` denied by the segment's permit."""


class XememTimeout(XememError):
    """A protocol request exhausted its deadline and retry budget.

    Only raised while a fault plan is armed (or a module-level request
    timeout is set): in the fault-free simulation every request is
    answered, so requests park on their response event without a timer."""


class XememOverload(XememError):
    """A request refused by overload protection.

    Raised client-side when a server rejects/sheds under admission
    control, when the local circuit breaker to that destination is open,
    or when the per-module retry budget is exhausted. Carries the
    server's seeded, deterministic retry-after hint so callers (and the
    module's own retry loop) can back off without guessing.

    Only raised while overload protection is armed
    (:func:`repro.xemem.overload.arm_overload`); the unarmed module is
    byte-identical to the pre-overload code."""

    def __init__(self, message: str, retry_after_ns: int = 0,
                 verdict: str = "reject"):
        super().__init__(message)
        self.retry_after_ns = retry_after_ns
        self.verdict = verdict


@dataclass(frozen=True)
class SegmentId:
    """A globally unique segment identifier."""

    value: int

    def __post_init__(self):
        if self.value < SEGID_BASE:
            raise ValueError(f"segid {self.value:#x} below SEGID_BASE")

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"segid:{self.value:#x}"


@dataclass(frozen=True)
class ApId:
    """An access-permit handle returned by ``xpmem_get``."""

    value: int

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"apid:{self.value:#x}"


@dataclass(frozen=True)
class Permit:
    """XPMEM-style permission: an octal mode, checked at ``xpmem_get``.

    The exporter always passes; others need the "other" read bit
    (0o004), and write access additionally needs 0o002. XPMEM's
    ``permit_type=XPMEM_PERMIT_MODE`` semantics, without users/groups
    (enclaves do not share a uid space — the paper's name server doesn't
    either).
    """

    mode: int = 0o666

    def __post_init__(self):
        if not 0 <= self.mode <= 0o777:
            raise ValueError(f"bad permit mode {self.mode:#o}")

    def allows(self, write: bool, is_owner: bool) -> bool:
        """Permission check: owners always pass; others need mode bits."""
        if is_owner:
            return True
        if not self.mode & 0o004:
            return False
        return bool(self.mode & 0o002) if write else True
