"""The XPMEM-backwards-compatible user API (paper Table 1, §4.1).

Applications hold one :class:`XpmemApi` per process and use exactly the
six XPMEM entry points. Nothing here mentions enclaves, channels, or
topology — "unmodified applications ... without any knowledge of enclave
topology or cross-enclave communication mechanisms".

Every call is a generator to be driven inside a simulation process::

    segid = yield from api.xpmem_make(vaddr, size)
    apid  = yield from peer_api.xpmem_get(segid)
    att   = yield from peer_api.xpmem_attach(apid, 0, size)

One extension beyond XPMEM: ``xpmem_make`` accepts an optional global
``name`` and :meth:`xpmem_search` finds a segid by name — the name
server's discoverability feature (§3.1); single-OS XPMEM applications
would instead pass segids over local IPC, which does not exist across
enclaves.
"""

from __future__ import annotations

from typing import Optional

from repro.xemem.ids import ApId, Permit, SegmentId, XememError
from repro.xemem.shmem import AttachedRegion, ExportedSegment


class XpmemApi:
    """Table 1, bound to one user process."""

    def __init__(self, proc):
        self.proc = proc
        self._module = proc.kernel.enclave_module()
        self._segments = {}
        self._attachments = {}

    # -- exporter side -----------------------------------------------------------

    def xpmem_make(self, vaddr: int, size: int, permit: Permit = Permit(),
                   name: Optional[str] = None):
        """Generator: export an address region; returns its SegmentId."""
        seg: ExportedSegment = yield from self._module.make(
            self.proc, vaddr, size, permit=permit, name=name
        )
        self._segments[int(seg.segid)] = seg
        return seg.segid

    def xpmem_remove(self, segid: SegmentId):
        """Generator: remove an exported region."""
        seg = self._segments.pop(int(segid), None)
        if seg is None:
            raise XememError(f"{segid!r} was not exported by this process")
        yield from self._module.remove(self.proc, seg)

    def segment(self, segid: SegmentId) -> ExportedSegment:
        """The exporter-side record (data view, grant count)."""
        seg = self._segments.get(int(segid))
        if seg is None:
            raise XememError(f"{segid!r} was not exported by this process")
        return seg

    # -- attacher side ------------------------------------------------------------

    def xpmem_get(self, segid: SegmentId, write: bool = True):
        """Generator: request access; returns an ApId permission grant."""
        apid = yield from self._module.get(self.proc, segid, write=write)
        return apid

    def xpmem_release(self, apid: ApId):
        """Generator: release a permission grant."""
        yield from self._module.release(self.proc, apid)

    def xpmem_attach(self, apid: ApId, offset: int = 0, size: Optional[int] = None):
        """Generator: map the shared region; returns an AttachedRegion."""
        att: AttachedRegion = yield from self._module.attach(
            self.proc, apid, offset=offset, nbytes=size
        )
        # Keyed by attach address (unique per live mapping in this
        # process), not id(): object addresses differ across host
        # processes, and sharded node engines replay this bookkeeping.
        self._attachments[att.vaddr] = att
        return att

    def xpmem_detach(self, attached: AttachedRegion):
        """Generator: unmap a shared region."""
        self._attachments.pop(attached.vaddr, None)
        yield from self._module.detach(self.proc, attached)

    # -- discoverability extension ------------------------------------------------

    def xpmem_search(self, name: str):
        """Generator: segid registered under ``name``, or None."""
        segid = yield from self._module.lookup(name)
        return segid

    def xpmem_list(self, prefix: str = ""):
        """Generator: {name: segid} for every registered segment name —
        the name server's existence/names query (§3.1)."""
        names = yield from self._module.list_names(prefix)
        return {name: SegmentId(value) for name, value in names.items()}

    # -- event-notification extension (paper §6.1 future work) ---------------------

    def xpmem_subscribe(self, segid: SegmentId):
        """Generator: register for the segid's doorbell (remote waiters)."""
        yield from self._module.subscribe_signals(self.proc, segid)

    def xpmem_signal(self, segid: SegmentId):
        """Generator: ring the segid's doorbell, waking its waiters."""
        yield from self._module.signal(self.proc, segid)

    def xpmem_wait(self, segid: SegmentId):
        """Generator: block until the doorbell rings (semaphore semantics)."""
        yield from self._module.wait_signal(self.proc, segid)
