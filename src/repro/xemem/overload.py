"""Overload protection for the XEMEM control plane.

The paper pins the control plane's scalability on two serialization
points: the centralized name server (§4.2) and the core-0 IPI handler
every cross-enclave command funnels through (§4.1). Under offered load
past saturation, an unprotected server builds unbounded queues at those
points; client timeouts then trigger retries that *add* load, and
goodput collapses — the classic retry-storm congestion spiral of any
serving stack.

This module is the protection layer, armed explicitly per rig (default
off — an unarmed module is byte-identical to the pre-overload code, the
same zero-cost contract :mod:`repro.faults` keeps):

* :class:`AdmissionController` — a bounded, virtual-time-aware request
  queue in front of each serving module. Policies: ``fail-fast``
  (reject when the queue is full) and ``codel`` (additionally shed at
  dispatch when queue *sojourn* stays above a target for a full
  interval, CoDel-style). Four priority classes guarantee that
  resource-*freeing* traffic (release/remove/depart) always dispatches
  first, *in-progress* traffic (attach — the requester already holds a
  grant) beats *new-flow* traffic (get/alloc), and discovery
  (lookup/list) sheds before everything else — so overload can never
  livelock the system by starving the requests that would shed load,
  and the capacity already invested in a flow is not thrown away at
  its last hop.
* :class:`RetryBudget` + :class:`CircuitBreaker` — client-side
  backpressure honoring. Rejections carry a seeded, deterministic
  retry-after hint; clients retry under a per-module token budget and
  trip a per-destination breaker (closed → open → half-open over
  virtual-time windows) instead of hammering a struggling server with
  unbounded exponential backoff.
* a degradation ladder (see :meth:`ModuleOverload.refresh_level`) —
  under pressure the name server sheds discovery before attach, serves
  lookups from a stale-bounded cache, and defers lease GC; every level
  transition is a metric and a flight-recorder breadcrumb.

Determinism: all randomness (retry-after hints, client backoff jitter)
draws from per-module ``random.Random`` streams seeded from
``OverloadConfig.seed`` and the enclave name, consumed in virtual-clock
event order — runs are byte-identical for the same seed, across reruns
and across the FASTPATH/FIDELITY twins. See docs/OVERLOAD.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.faults.plan import parse_ns
from repro.xemem import commands as C

# -- priority classes ------------------------------------------------------

#: Resource-freeing traffic: always admitted first. Shedding these under
#: overload would leak grants/segids and livelock recovery.
CLASS_RELEASE = 0
#: In-progress traffic: the requester already holds a grant (an attach
#: follows a served get). Rejecting it wastes the capacity the earlier
#: hop already spent, so it ranks just below frees — overload is pushed
#: onto *new* flows at their first gate, where dying is cheap.
CLASS_ATTACH = 1
#: New-flow traffic: first real gate (get/alloc/subscribe).
CLASS_NEW = 2
#: Discovery traffic: first to shed; nothing dangles when it fails.
CLASS_DISCOVERY = 3

_CLASS_NAMES = {CLASS_RELEASE: "release", CLASS_ATTACH: "attach",
                CLASS_NEW: "new", CLASS_DISCOVERY: "discovery"}

_RELEASE_KINDS = frozenset({C.RELEASE_REQ, C.REMOVE_SEGID, C.ENCLAVE_DEPART})
_PROGRESS_KINDS = frozenset({C.ATTACH_REQ, C.SIGNAL_REQ})
_DISCOVERY_KINDS = frozenset({C.LOOKUP_NAME, C.LIST_NAMES})


def priority_class(kind: str) -> int:
    """The admission class of a command kind."""
    if kind in _RELEASE_KINDS:
        return CLASS_RELEASE
    if kind in _PROGRESS_KINDS:
        return CLASS_ATTACH
    if kind in _DISCOVERY_KINDS:
        return CLASS_DISCOVERY
    return CLASS_NEW


# -- configuration ---------------------------------------------------------

_POLICIES = ("fail-fast", "codel")


@dataclass
class OverloadConfig:
    """Everything the protection layer needs, parseable from a CLI spec.

    Spec grammar mirrors :meth:`repro.faults.plan.FaultPlan.parse`::

        policy=codel,workers=1,qcap=8,codeltarget=50us,codelint=100us,
        retryafter=100us,jitter=50us,budget=10,budgetwin=1ms,
        breaker=5,open=500us,clientretries=4,stalettl=500us,
        shedfill=0.5,gcfill=0.75

    Times accept ``ns``/``us``/``ms``/``s`` suffixes (bare numbers ns).
    """

    seed: int = 0

    # -- server-side admission --------------------------------------------
    policy: str = "fail-fast"
    #: concurrent serve slots per module (the paper's core-0 handler is
    #: one core; more workers model batched dispatch)
    workers: int = 1
    #: bound on the total number of queued-but-unserved requests
    queue_cap: int = 8
    #: CoDel: acceptable standing queue sojourn
    codel_target_ns: int = 50_000
    #: CoDel: sojourn must exceed target this long before shedding starts
    codel_interval_ns: int = 100_000

    # -- backpressure hints ------------------------------------------------
    #: base retry-after carried on rejections
    retry_after_ns: int = 100_000
    #: jitter range added to hints and client backoff (seeded)
    retry_jitter_ns: int = 50_000

    # -- client-side budgets / breaker ------------------------------------
    #: retries allowed per module per window (token bucket)
    retry_budget: int = 10
    retry_budget_window_ns: int = 1_000_000
    #: consecutive failures to one destination that open its breaker
    breaker_threshold: int = 5
    #: how long an open breaker fails fast before probing (half-open)
    breaker_open_ns: int = 500_000
    #: retry attempts per request when no fault plan sets a policy
    max_client_retries: int = 4

    # -- name-server degradation ladder -----------------------------------
    #: lookups may be served this stale from the NS cache under pressure
    stale_lookup_ttl_ns: int = 500_000
    #: queue-fill fraction at which discovery sheds (level 1)
    shed_discovery_fill: float = 0.5
    #: queue-fill fraction at which lease GC defers (level 2)
    defer_gc_fill: float = 0.75

    def __post_init__(self):
        if self.policy not in _POLICIES:
            raise ValueError(
                f"unknown admission policy {self.policy!r} "
                f"(want one of {', '.join(_POLICIES)})"
            )
        if self.workers < 1:
            raise ValueError(f"workers={self.workers} < 1")
        if self.queue_cap < 1:
            raise ValueError(f"queue_cap={self.queue_cap} < 1")
        for name in ("codel_target_ns", "codel_interval_ns", "retry_after_ns",
                     "retry_budget_window_ns", "breaker_open_ns",
                     "stale_lookup_ttl_ns"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.retry_jitter_ns < 0:
            raise ValueError("retry_jitter_ns must be non-negative")
        if self.retry_budget < 0 or self.max_client_retries < 0:
            raise ValueError("retry budget/attempts must be non-negative")
        if self.breaker_threshold < 1:
            raise ValueError(f"breaker_threshold={self.breaker_threshold} < 1")
        if not 0.0 < self.shed_discovery_fill <= 1.0:
            raise ValueError("shed_discovery_fill outside (0, 1]")
        if not 0.0 < self.defer_gc_fill <= 1.0:
            raise ValueError("defer_gc_fill outside (0, 1]")

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "OverloadConfig":
        """Build a config from the compact ``key=value,...`` spec string."""
        fields: dict = {"seed": seed}
        keymap = {
            "policy": ("policy", str),
            "workers": ("workers", int),
            "qcap": ("queue_cap", int),
            "codeltarget": ("codel_target_ns", parse_ns),
            "codelint": ("codel_interval_ns", parse_ns),
            "retryafter": ("retry_after_ns", parse_ns),
            "jitter": ("retry_jitter_ns", parse_ns),
            "budget": ("retry_budget", int),
            "budgetwin": ("retry_budget_window_ns", parse_ns),
            "breaker": ("breaker_threshold", int),
            "open": ("breaker_open_ns", parse_ns),
            "clientretries": ("max_client_retries", int),
            "stalettl": ("stale_lookup_ttl_ns", parse_ns),
            "shedfill": ("shed_discovery_fill", float),
            "gcfill": ("defer_gc_fill", float),
        }
        for item in filter(None, (s.strip() for s in spec.split(","))):
            if "=" not in item:
                raise ValueError(
                    f"bad overload spec item {item!r} (want key=value)"
                )
            key, _, value = item.partition("=")
            entry = keymap.get(key.strip())
            if entry is None:
                raise ValueError(f"unknown overload spec key {key.strip()!r}")
            field_name, convert = entry
            fields[field_name] = convert(value.strip())
        return cls(**fields)


# -- admission -------------------------------------------------------------

SERVE = "serve"
REJECT = "reject"
SHED = "shed"


class _Waiter:
    """One parked request: arrival stamp, class, FIFO sequence, event."""

    __slots__ = ("seq", "arrived_ns", "cls", "event")

    def __init__(self, seq: int, arrived_ns: int, cls: int, event):
        self.seq = seq
        self.arrived_ns = arrived_ns
        self.cls = cls
        self.event = event


class AdmissionController:
    """Bounded prioritized admission in front of one serving module.

    ``admit`` is a generator: it returns :data:`SERVE` immediately when a
    slot is free, parks on a virtual-time event otherwise, and resolves
    to :data:`SERVE`/:data:`SHED` when dispatched (or returns
    :data:`REJECT` synchronously when the queue is full). Every admitted
    request must be paired with exactly one :meth:`release`.

    Accounting invariant (the hypothesis suite proves it): at every
    virtual time, ``offered == admitted + rejected + shed + aborted +
    waiting`` and ``waiting <= queue_cap``.
    """

    def __init__(self, config: OverloadConfig, engine, name: str):
        self.cfg = config
        self.engine = engine
        self.name = name
        self.rng = random.Random(f"overload:{config.seed}:{name}")
        self._queues: Tuple[List[_Waiter], ...] = ([], [], [], [])
        self._seq = 0
        self.in_service = 0
        # -- always-on plain-int accounting --
        self.offered = 0
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        self.aborted = 0
        self.completed = 0
        self.peak_waiting = 0
        #: CoDel state: when sojourn first stayed above target, or None
        self._above_since: Optional[int] = None

    # -- introspection -----------------------------------------------------

    @property
    def waiting(self) -> int:
        return sum(len(q) for q in self._queues)

    @property
    def fill(self) -> float:
        """Occupancy of slots + queue in [0, 1+]; drives the ladder."""
        return (self.in_service + self.waiting) / (
            self.cfg.workers + self.cfg.queue_cap
        )

    def snapshot(self) -> Dict[str, int]:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "aborted": self.aborted,
            "completed": self.completed,
            "waiting": self.waiting,
            "peak_waiting": self.peak_waiting,
        }

    # -- hints -------------------------------------------------------------

    def retry_hint_ns(self) -> int:
        """Seeded, deterministic retry-after carried on a rejection."""
        base = self.cfg.retry_after_ns
        jitter = self.cfg.retry_jitter_ns
        return base + (self.rng.randrange(jitter) if jitter else 0)

    # -- admission ---------------------------------------------------------

    def _cap_for(self, cls: int) -> int:
        """Effective queue bound per class: graduated headroom reserves
        keep slots open for higher classes even when lower ones fill the
        queue — frees always have a way in (anti-livelock), in-progress
        attaches outlast new gets, and discovery gets the smallest
        share."""
        cap = self.cfg.queue_cap
        if cls == CLASS_RELEASE:
            return cap
        if cls == CLASS_ATTACH:
            return cap - max(1, cap // 8)
        if cls == CLASS_NEW:
            return cap - max(1, cap // 4)
        return max(1, cap // 2)

    def try_admit(self, kind: str):
        """Non-blocking admission: ``(verdict, waiter_or_None)``.

        ``SERVE`` consumed a slot; ``REJECT`` means queue full; otherwise
        the returned waiter is parked and its event resolves to the final
        verdict. Split from :meth:`admit` so handlers that cannot yield
        (or tests) can drive the queue directly.
        """
        cls = priority_class(kind)
        self.offered += 1
        o = obs.get()
        o.counter("overload.offered").inc()
        if self.in_service < self.cfg.workers and self.waiting == 0:
            self.in_service += 1
            self.admitted += 1
            o.counter("overload.admitted").inc()
            o.histogram("overload.queue_delay_ns").observe(0)
            return SERVE, None
        if self.waiting >= self._cap_for(cls):
            self.rejected += 1
            o.counter("overload.rejected").inc()
            o.counter(f"overload.rejected.{_CLASS_NAMES[cls]}").inc()
            return REJECT, None
        self._seq += 1
        waiter = _Waiter(
            self._seq, self.engine.now, cls,
            self.engine.event(name=f"admit:{self.name}:{self._seq}"),
        )
        self._queues[cls].append(waiter)
        if self.waiting > self.peak_waiting:
            self.peak_waiting = self.waiting
        return None, waiter

    def admit(self, kind: str):
        """Generator: park until this request is dispatched or refused."""
        verdict, waiter = self.try_admit(kind)
        if waiter is None:
            return verdict
        result = yield waiter.event
        return result

    def release(self) -> None:
        """A served request finished: free its slot, dispatch the queue."""
        self.completed += 1
        if self.in_service > 0:
            self.in_service -= 1
        self._dispatch()

    def count_shed_direct(self) -> None:
        """Account a request the degradation ladder shed before it ever
        reached the queue (keeps the offered-balance invariant in one
        place)."""
        self.offered += 1
        self.shed += 1
        o = obs.get()
        o.counter("overload.offered").inc()
        o.counter("overload.shed").inc()

    def count_served_direct(self) -> None:
        """Account a request answered outside the queue (stale-cache
        lookup hits)."""
        self.offered += 1
        self.admitted += 1
        self.completed += 1
        o = obs.get()
        o.counter("overload.offered").inc()
        o.counter("overload.admitted").inc()

    def _codel_should_shed(self, sojourn_ns: int, now: int) -> bool:
        """CoDel-style shedding on *queue delay*, decided at dispatch:
        shed once sojourn has stayed above target for a full interval."""
        if self.cfg.policy != "codel":
            return False
        if sojourn_ns <= self.cfg.codel_target_ns:
            self._above_since = None
            return False
        if self._above_since is None:
            self._above_since = now
            return False
        return now - self._above_since >= self.cfg.codel_interval_ns

    def _dispatch(self) -> None:
        o = obs.get()
        while self.in_service < self.cfg.workers:
            waiter = self._pop_next()
            if waiter is None:
                return
            now = self.engine.now
            sojourn = now - waiter.arrived_ns
            if (waiter.cls >= CLASS_NEW
                    and self._codel_should_shed(sojourn, now)):
                self.shed += 1
                o.counter("overload.shed").inc()
                o.counter(f"overload.shed.{_CLASS_NAMES[waiter.cls]}").inc()
                waiter.event.trigger(SHED)
                continue
            self.in_service += 1
            self.admitted += 1
            o.counter("overload.admitted").inc()
            o.histogram("overload.queue_delay_ns").observe(sojourn)
            waiter.event.trigger(SERVE)

    def _pop_next(self) -> Optional[_Waiter]:
        for queue in self._queues:
            if queue:
                return queue.pop(0)
        return None

    def fail_all(self, err: Exception) -> None:
        """Crash/shutdown: every parked waiter fails (counted aborted)."""
        for queue in self._queues:
            waiters, queue[:] = list(queue), []
            for waiter in waiters:
                self.aborted += 1
                if not waiter.event.triggered:
                    waiter.event.fail(err)


# -- client-side backpressure ----------------------------------------------


class RetryBudget:
    """Token bucket over virtual-time windows: at most ``retry_budget``
    retries per ``retry_budget_window_ns`` per module. A storm of
    timeouts burns the budget and the client abandons instead of
    amplifying the overload."""

    def __init__(self, config: OverloadConfig, engine):
        self.cfg = config
        self.engine = engine
        self.tokens = config.retry_budget
        self._window_start = engine.now
        self.exhausted = 0

    def try_spend(self) -> bool:
        now = self.engine.now
        if now - self._window_start >= self.cfg.retry_budget_window_ns:
            self.tokens = self.cfg.retry_budget
            self._window_start = now
        if self.tokens > 0:
            self.tokens -= 1
            return True
        self.exhausted += 1
        obs.get().counter("overload.retry_budget_exhausted").inc()
        return False


#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-destination breaker over virtual-time windows.

    ``breaker_threshold`` consecutive failures open it; after
    ``breaker_open_ns`` it half-opens and lets exactly one probe
    through; the probe's outcome closes or re-opens it."""

    def __init__(self, config: OverloadConfig, engine, name: str):
        self.cfg = config
        self.engine = engine
        self.name = name
        self.state = CLOSED
        self.failures = 0
        self.open_until_ns = 0
        self._probe_out = False
        self.opens = 0

    def allow(self) -> bool:
        now = self.engine.now
        if self.state == OPEN:
            if now < self.open_until_ns:
                obs.get().counter("overload.breaker.fast_fail").inc()
                return False
            self._transition(HALF_OPEN)
            self._probe_out = True
            return True
        if self.state == HALF_OPEN:
            if self._probe_out:
                obs.get().counter("overload.breaker.fast_fail").inc()
                return False
            self._probe_out = True
            return True
        return True

    def record_success(self) -> None:
        self.failures = 0
        self._probe_out = False
        if self.state != CLOSED:
            self._transition(CLOSED)

    def record_failure(self) -> None:
        self._probe_out = False
        if self.state == HALF_OPEN:
            self._open()
            return
        self.failures += 1
        if self.state == CLOSED and self.failures >= self.cfg.breaker_threshold:
            self._open()

    def _open(self) -> None:
        self.failures = 0
        self.opens += 1
        self.open_until_ns = self.engine.now + self.cfg.breaker_open_ns
        self._transition(OPEN)

    def _transition(self, new_state: str) -> None:
        old, self.state = self.state, new_state
        o = obs.get()
        o.counter(f"overload.breaker.{new_state.replace('-', '_')}").inc()
        recorder = o.flightrec
        if recorder is not None:
            recorder.note(
                "overload.breaker", self.engine.now,
                breaker=self.name, transition=f"{old}->{new_state}",
            )
            recorder.tick(self.engine.now)

    def retry_after_ns(self) -> int:
        """How long a fast-failed caller should wait before re-trying."""
        return max(0, self.open_until_ns - self.engine.now)


# -- per-module bundle -----------------------------------------------------


class ModuleOverload:
    """The armed protection state of one :class:`XememModule`:
    server-side admission, client-side budget/breakers, and (on the
    name-server module) the degradation ladder."""

    def __init__(self, config: OverloadConfig, module):
        self.cfg = config
        self.module = module
        engine = module.engine
        name = module.enclave.name
        self.controller = AdmissionController(config, engine, name)
        self.budget = RetryBudget(config, engine)
        #: seeded client-side jitter stream (never module-level random)
        self.rng = random.Random(f"overload-client:{config.seed}:{name}")
        self._breakers: Dict[str, CircuitBreaker] = {}
        # -- name-server degradation ladder --
        self.level = 0
        self.level_transitions = 0
        #: name -> (segid, cached_at_ns); stale-bounded lookup cache
        self.lookup_cache: Dict[str, tuple] = {}
        self.stale_hits = 0
        self.gc_deferred = 0

    def breaker_for(self, dst_key: str) -> CircuitBreaker:
        breaker = self._breakers.get(dst_key)
        if breaker is None:
            breaker = CircuitBreaker(
                self.cfg, self.module.engine,
                f"{self.module.enclave.name}->{dst_key}",
            )
            self._breakers[dst_key] = breaker
        return breaker

    def jitter_ns(self) -> int:
        """One seeded jitter draw for client backoff."""
        jitter = self.cfg.retry_jitter_ns
        return self.rng.randrange(jitter) if jitter else 0

    def refresh_level(self) -> int:
        """Recompute the degradation level from queue fill; record every
        transition as metrics + a flight-recorder breadcrumb."""
        fill = self.controller.fill
        new = 0
        if fill >= self.cfg.defer_gc_fill:
            new = 2
        elif fill >= self.cfg.shed_discovery_fill:
            new = 1
        if new != self.level:
            old, self.level = self.level, new
            self.level_transitions += 1
            o = obs.get()
            o.gauge("overload.ns.level").set(new)
            o.counter("overload.ns.level_transitions").inc()
            recorder = o.flightrec
            if recorder is not None:
                now = self.module.engine.now
                recorder.note(
                    "overload.degradation", now,
                    enclave=self.module.enclave.name,
                    transition=f"{old}->{new}",
                    fill=round(fill, 4),
                )
                recorder.tick(now)
        return self.level

    def fail_all(self, err: Exception) -> None:
        self.controller.fail_all(err)

    def snapshot(self) -> Dict[str, object]:
        doc: Dict[str, object] = dict(self.controller.snapshot())
        doc["level"] = self.level
        doc["level_transitions"] = self.level_transitions
        doc["stale_hits"] = self.stale_hits
        doc["gc_deferred"] = self.gc_deferred
        doc["budget_exhausted"] = self.budget.exhausted
        doc["breaker_opens"] = sum(
            self._breakers[key].opens for key in sorted(self._breakers)
        )
        return doc


def arm_overload(rig_or_modules, config: OverloadConfig) -> Dict[str, ModuleOverload]:
    """Install the protection layer on every module of a rig (or a
    ``{name: module}`` dict). Returns the per-module state. Arming twice
    is an error — the accounting would split across controllers."""
    modules = getattr(rig_or_modules, "modules", rig_or_modules)
    armed: Dict[str, ModuleOverload] = {}
    for name in sorted(modules):
        module = modules[name]
        if module.overload is not None:
            raise ValueError(f"module {name!r} already has overload armed")
        module.overload = ModuleOverload(config, module)
        armed[name] = module.overload
    return armed


def disarm_overload(rig_or_modules) -> None:
    """Remove the protection layer (unarmed modules are untouched)."""
    modules = getattr(rig_or_modules, "modules", rig_or_modules)
    for name in sorted(modules):
        modules[name].overload = None


def admission_totals(rig_or_modules) -> Dict[str, int]:
    """Summed admission counters across every armed module."""
    modules = getattr(rig_or_modules, "modules", rig_or_modules)
    totals: Dict[str, int] = {}
    for name in sorted(modules):
        ov = modules[name].overload
        if ov is None:
            continue
        for key, value in ov.snapshot().items():
            if isinstance(value, int):
                totals[key] = totals.get(key, 0) + value
    return totals
