"""The centralized XEMEM name server (paper §3.1, §4.2).

One instance lives inside the XEMEM module of the designated name-server
enclave. It is the single authority for:

* **enclave IDs** — allocated during topology discovery (§3.2);
* **segids** — globally unique segment identifiers, so no two enclaves
  can ever collide regardless of local pid/address reuse;
* **the segid→owner map** — used to re-address segment commands to the
  owning enclave;
* **discoverability** — optional human-readable names attached to
  segments, queryable by any process on any enclave ("the name server
  can be queried for information regarding the existence and names of
  shared memory regions").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.xemem.ids import SEGID_BASE, SegmentId, XememError


@dataclass
class SegidRecord:
    """One registered segment: owner enclave, span, optional name."""
    segid: SegmentId
    owner_enclave_id: int
    npages: int
    name: Optional[str] = None


class NameServer:
    """Authoritative state; all methods are pure bookkeeping (no sim time —
    the message round trips to reach the server carry the cost)."""

    def __init__(self) -> None:
        self._next_enclave_id = 1  # the name server's own enclave is 0
        self._next_segid = SEGID_BASE
        self.segids: Dict[int, SegidRecord] = {}
        self._names: Dict[str, int] = {}
        #: enclave id -> channel, maintained by the NS enclave's module.
        self.stats = {"segids_allocated": 0, "lookups": 0, "removed": 0}
        # -- failure detection (fault-injection extension) --
        #: enclave id -> virtual time of its last heartbeat beacon
        self.last_heartbeat_ns: Dict[int, int] = {}
        #: lazy min-heap of (last_hb_ns, enclave_id): the expiry index
        #: that makes lease sweeps O(expired) instead of O(tracked).
        #: Superseded entries (a newer beacon re-stamped the enclave) stay
        #: in the heap and are discarded when popped.
        self._expiry_heap: List[Tuple[int, int]] = []
        #: owner enclave id -> set of owned segids, so :meth:`gc_enclave`
        #: never scans the whole segid table.
        self._segids_by_owner: Dict[int, set] = {}
        #: enclave ids garbage-collected after crash / lease expiry
        self.retired_enclaves: set = set()
        #: segids whose owner was garbage-collected (distinct error text
        #: lets requesters distinguish "never existed" from "owner died")
        self._retired_segids: set = set()

    # -- enclave ids -----------------------------------------------------------

    def alloc_enclave_id(self) -> int:
        """Hand out the next enclave ID (discovery protocol)."""
        eid = self._next_enclave_id
        self._next_enclave_id += 1
        obs.get().counter("xemem.ns.enclave_ids").inc()
        return eid

    # -- segids ------------------------------------------------------------------

    def alloc_segid(self, owner_enclave_id: int, npages: int,
                    name: Optional[str] = None) -> SegmentId:
        """Register a new globally unique segid for ``owner_enclave_id``."""
        if npages <= 0:
            raise XememError(f"segment must span at least one page, got {npages}")
        if name is not None:
            if name in self._names:
                raise XememError(f"segment name {name!r} already registered")
        segid = SegmentId(self._next_segid)
        self._next_segid += 1
        self.segids[int(segid)] = SegidRecord(segid, owner_enclave_id, npages, name)
        self._segids_by_owner.setdefault(owner_enclave_id, set()).add(int(segid))
        if name is not None:
            self._names[name] = int(segid)
        self.stats["segids_allocated"] += 1
        obs.get().counter("xemem.ns.segids_allocated").inc()
        return segid

    def owner_of(self, segid: int) -> int:
        """The enclave ID owning ``segid``; raises XememError if unknown."""
        rec = self.segids.get(int(segid))
        if rec is None:
            if int(segid) in self._retired_segids:
                raise XememError(
                    f"segid {int(segid):#x} retired "
                    "(owner crashed or lease expired)"
                )
            raise XememError(f"unknown segid {int(segid):#x}")
        return rec.owner_enclave_id

    def npages_of(self, segid: int) -> int:
        """The registered page span of ``segid``."""
        rec = self.segids.get(int(segid))
        if rec is None:
            raise XememError(f"unknown segid {int(segid):#x}")
        return rec.npages

    def remove_segid(self, segid: int, enclave_id: int) -> None:
        """Retire a segid; only its owner enclave may do so."""
        rec = self.segids.get(int(segid))
        if rec is None:
            if int(segid) in self._retired_segids:
                return  # already GC'd with its crashed owner: idempotent
            raise XememError(f"unknown segid {int(segid):#x}")
        if rec.owner_enclave_id != enclave_id:
            raise XememError(
                f"enclave {enclave_id} does not own segid {int(segid):#x}"
            )
        del self.segids[int(segid)]
        owned = self._segids_by_owner.get(rec.owner_enclave_id)
        if owned is not None:
            owned.discard(int(segid))
        if rec.name is not None:
            self._names.pop(rec.name, None)
        self.stats["removed"] += 1
        obs.get().counter("xemem.ns.segids_removed").inc()

    def segids_of(self, owner_enclave_id: int) -> list:
        """Sorted segids currently owned by ``owner_enclave_id``
        (O(owned) via the per-owner index)."""
        return sorted(self._segids_by_owner.get(owner_enclave_id, ()))

    def lookup_name(self, name: str) -> Optional[int]:
        """Discoverability: segid registered under ``name``, or None."""
        self.stats["lookups"] += 1
        obs.get().counter("xemem.ns.lookups").inc()
        return self._names.get(name)

    def list_names(self, prefix: str = "") -> Dict[str, int]:
        """Discoverability: every registered name (optionally filtered by
        prefix) with its segid — "the existence and names of shared
        memory regions" (§3.1)."""
        self.stats["lookups"] += 1
        return {
            name: segid
            for name, segid in sorted(self._names.items())
            if name.startswith(prefix)
        }

    # -- failure detection (fault-injection extension) ---------------------------

    def note_heartbeat(self, enclave_id: int, now_ns: int) -> None:
        """Record a liveness beacon from ``enclave_id``."""
        if enclave_id in self.retired_enclaves:
            return  # a zombie beacon from an already-GC'd enclave
        self.last_heartbeat_ns[int(enclave_id)] = int(now_ns)
        heapq.heappush(self._expiry_heap, (int(now_ns), int(enclave_id)))  # repro: noqa[REP006] reason=expiry index over (stamp_ns, enclave_id) int pairs, a data structure, not event scheduling; ordering is total so iteration is deterministic

    def expired_enclaves(self, now_ns: int, lease_ns: int) -> list:
        """Tracked enclaves whose lease has lapsed (sorted for determinism).

        O(expired + stale) via the expiry heap, not O(tracked): only heap
        entries older than the lease window are popped. Entries a newer
        beacon superseded are discarded as encountered; truly expired
        enclaves are re-pushed so the query stays repeatable until
        :meth:`gc_enclave` retires them.
        """
        expired: set = set()
        heap = self._expiry_heap
        while heap and heap[0][0] + lease_ns < now_ns:
            stamp, eid = heapq.heappop(heap)  # repro: noqa[REP006] reason=expiry index over (stamp_ns, enclave_id) int pairs, a data structure, not event scheduling; ordering is total so iteration is deterministic
            current = self.last_heartbeat_ns.get(eid)
            if current is None or current != stamp or eid in expired:
                continue  # retired, superseded, or a duplicate entry
            expired.add(eid)
        result = sorted(expired)
        for eid in result:
            heapq.heappush(heap, (self.last_heartbeat_ns[eid], eid))  # repro: noqa[REP006] reason=expiry index over (stamp_ns, enclave_id) int pairs, a data structure, not event scheduling; ordering is total so iteration is deterministic
        return result

    def gc_enclave(self, enclave_id: int) -> list:
        """Purge everything a dead enclave owned; returns its segids.

        Purged segids move to the retired set so later requests get a
        crash-specific error and retried removals are idempotent.
        O(owned segids) via the per-owner index — GC of one dead enclave
        never scans every registration on the system.
        """
        purged = sorted(self._segids_by_owner.pop(enclave_id, ()))
        for sid in purged:
            rec = self.segids.pop(sid)
            if rec.name is not None:
                self._names.pop(rec.name, None)
            self._retired_segids.add(sid)
            self.stats["removed"] += 1
        self.retired_enclaves.add(enclave_id)
        self.last_heartbeat_ns.pop(int(enclave_id), None)
        if purged:
            obs.get().counter("xemem.ns.segids_removed").inc(len(purged))
        return purged

    def restart_grace(self, now_ns: int) -> None:
        """After a name-server restart: re-stamp every lease from the
        recovery time, so the outage itself never expires a live enclave."""
        for eid in self.last_heartbeat_ns:
            self.last_heartbeat_ns[eid] = int(now_ns)
        # rebuild the expiry index in one shot; the old entries are all
        # superseded and would only be popped to be discarded
        self._expiry_heap = [
            (int(now_ns), eid) for eid in sorted(self.last_heartbeat_ns)
        ]
        heapq.heapify(self._expiry_heap)  # repro: noqa[REP006] reason=expiry index over (stamp_ns, enclave_id) int pairs, a data structure, not event scheduling; ordering is total so iteration is deterministic

    @property
    def live_segments(self) -> int:
        """Number of currently registered segments."""
        return len(self.segids)
