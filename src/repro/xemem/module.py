"""The per-enclave XEMEM kernel module.

One :class:`XememModule` sits in each enclave. It is simultaneously:

* the **router** — implementing the §3.2 forwarding rule over the
  enclave's channels, including the discovery protocol's pending-request
  bookkeeping that builds routing maps as enclave IDs flow back;
* the **name-server host** — on exactly one enclave, resolving
  segid-addressed commands to their owner enclave (§4.2);
* the **segment server** — serving remote attach requests by walking the
  exporting process's page table to generate PFN lists (§4.3);
* the **mapping client** — installing remote PFN lists into local
  processes through the enclave kernel's own mapping routines, and
  handling the *local* fast paths (SMARTMAP on Kitten, lazy VMAs on
  Linux) when both processes share an enclave.

Everything time-consuming is a generator run inside the simulation; all
request/response pairs are correlated by ``req_id`` through the pending
table, and responses route back through the name server exactly as the
paper describes.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Dict, Optional

import numpy as np

from repro import obs
from repro.obs.tracer import NULL_SPAN
from repro.enclave.enclave import Channel, ChannelClosedError, Enclave, KernelMessage
from repro.kernels.pagetable import PAGE_SIZE
from repro.xemem import commands as C
from repro.xemem.ids import (
    ApId,
    Permit,
    PermissionError_,
    SegmentId,
    XememError,
    XememOverload,
    XememTimeout,
)
from repro.xemem.nameserver import NameServer
from repro.xemem import overload as OV
from repro.xemem.routing import RoutingError, RoutingTable
from repro.xemem.shmem import AttachedRegion, ExportedSegment, GrantTable, LiveCounts

#: Bound on the retried-request replay cache (FIFO eviction). Large
#: enough that a response outlives its request's full retry budget.
_REPLAY_CACHE_CAP = 512


class XememModule:
    """The XEMEM service of one enclave."""

    def __init__(self, enclave: Enclave, is_name_server: bool = False):
        self.enclave = enclave
        self.kernel = enclave.kernel
        self.engine = enclave.engine
        self.costs = self.kernel.costs
        self.routing = RoutingTable()
        self.nameserver: Optional[NameServer] = NameServer() if is_name_server else None
        self.segments: Dict[int, ExportedSegment] = {}
        #: Columnar grant list (SoA; dict-like surface keyed by apid).
        self.grants = GrantTable()
        self._pending: Dict[str, object] = {}      # req_id -> Event
        self._ping_pending: Dict[str, object] = {} # token -> Event
        self._forwarded: Dict[str, Channel] = {}   # discovery req_id -> origin
        self._req_counter = itertools.count()
        self._apid_counter = itertools.count(1)
        self._smartmap_refs: Dict[tuple, int] = {}
        # -- event-notification extension state --
        #: owner side: segid -> subscribed enclave ids
        self._signal_subs: Dict[int, list] = {}
        #: waiter side: segid -> (pending signal count, waiting Events)
        self._signal_state: Dict[int, list] = {}
        #: live attachment count per apid (release is refused while > 0)
        self._live_attachments = LiveCounts()
        #: live AttachedRegion objects per apid, for crash-time invalidation
        self._attachments_by_apid: Dict[int, list] = {}
        # -- failure-resilience state --
        #: set by PiscesManager.crash_enclave; a crashed module drops all
        #: traffic and never raises out of handlers
        self.crashed = False
        #: explicit per-module request policy override (tests); None means
        #: "use the armed fault plan's policy, or park forever when none"
        self.request_timeout_ns: Optional[int] = None
        self.max_request_retries = 4
        #: req_id -> completed response (idempotent replay of retried
        #: commands); only populated while a non-empty fault plan is armed
        self._served_responses: "OrderedDict[str, KernelMessage]" = OrderedDict()
        #: req_ids currently being served (suppress duplicates in flight)
        self._in_service: set = set()
        #: name-server restart outage: drop NS traffic until this time
        self._ns_down_until = 0
        # -- overload protection (default off; one attribute check on the
        # hot path, same zero-cost contract as ``engine.faults``) --
        self.overload: Optional["OV.ModuleOverload"] = None
        self.stats = {
            "attaches_served": 0,
            "attaches_made": 0,
            "messages_forwarded": 0,
        }
        enclave.module = self
        enclave.set_receiver(self._receive)

    # ------------------------------------------------------------------ identity

    @property
    def my_id(self) -> Optional[int]:
        """This enclave's ID (None before discovery)."""
        return self.enclave.enclave_id

    @property
    def is_name_server(self) -> bool:
        """True on the single enclave hosting the name server."""
        return self.nameserver is not None

    def _next_req_id(self) -> str:
        return f"{self.enclave.name}:{next(self._req_counter)}"

    def _count_forward(self) -> None:
        self.stats["messages_forwarded"] += 1
        obs.get().counter("xemem.msgs.forwarded").inc()

    # ------------------------------------------------------------- message plumbing

    def _receive(self, msg: KernelMessage, channel: Channel) -> None:
        if self.crashed:
            obs.get().counter("faults.msgs.to_crashed").inc()
            return
        self.engine.spawn(
            self._handle_safely(msg, channel),
            name=f"xemem:{self.enclave.name}:{msg.kind}",
        )

    def _handle_safely(self, msg: KernelMessage, channel: Optional[Channel]):
        """Handler wrapper: a mid-flight enclave crash or a vanished route
        must not blow up the engine (handlers run as unwaited processes)."""
        try:
            yield from self._handle(msg, channel)
        except (RoutingError, ChannelClosedError):
            obs.get().counter("xemem.msgs.undeliverable").inc()
        except Exception:
            if not self.crashed:
                raise
            obs.get().counter("faults.handlers.aborted").inc()

    def _send(self, msg: KernelMessage):
        """Generator: send one hop according to the routing rule."""
        dst = msg.payload.get("dst")
        if dst is None:
            if self.is_name_server:
                # we ARE the name server: resolve/handle without a hop
                yield from self._handle_at_name_server(msg)
                return
            channel = self.routing.ns_channel
            if channel is None:
                raise XememError(
                    f"enclave {self.enclave.name!r} has no name-server path"
                )
        elif dst == self.my_id:
            # a response addressed to ourselves (e.g. the name server
            # serving a segment it also owns): deliver locally
            self.engine.spawn(
                self._handle_safely(msg, channel=None),
                name=f"xemem-local:{msg.kind}",
            )
            return
        else:
            channel = self.routing.channel_for(dst)
        yield from channel.send(self.enclave, msg)

    def _spawn_send(self, msg: KernelMessage) -> None:
        self.engine.spawn(self._send_safely(msg), name=f"send:{msg.kind}")

    def _send_safely(self, msg: KernelMessage):
        """Spawned-send wrapper: the destination may have crashed between
        queueing and delivery; a lost response surfaces as the requester's
        timeout, not as an unwaited exception."""
        try:
            yield from self._send(msg)
        except (RoutingError, ChannelClosedError, XememError):
            obs.get().counter("xemem.msgs.undeliverable").inc()

    def _request_policy(self):
        """(deadline_ns, max_retries, backoff) — (None, 0, 1) = park forever."""
        if self.request_timeout_ns is not None:
            return self.request_timeout_ns, self.max_request_retries, 2
        injector = self.engine.faults
        if injector is not None and injector.active:
            plan = injector.plan
            return plan.request_timeout_ns, plan.max_retries, plan.backoff_factor
        return None, 0, 1

    @staticmethod
    def _check_response(resp: KernelMessage) -> KernelMessage:
        error = resp.payload.get("error")
        if error is not None:
            verdict = resp.payload.get("overload")
            if verdict is not None:
                raise XememOverload(
                    error,
                    retry_after_ns=resp.payload.get("retry_after_ns", 0),
                    verdict=verdict,
                )
            if "permission denied" in error:
                raise PermissionError_(error)
            raise XememError(error)
        return resp

    def _request(self, msg: KernelMessage):
        """Generator: send and wait for the correlated response.

        Returns the response message; raises :class:`XememError` if the
        response carries an error field. With a fault plan armed (or an
        explicit ``request_timeout_ns``) the wait is bounded: the request
        is retried under exponential backoff and raises
        :class:`XememTimeout` when the budget is exhausted. Retries reuse
        the req_id, so receivers can deduplicate replays.
        """
        req_id = msg.payload["req_id"]
        if self.overload is not None:
            result = yield from self._request_protected(msg, self.overload)
            return result
        deadline_ns, max_retries, backoff = self._request_policy()
        if deadline_ns is None:
            # Fault-free baseline: park on the response event with no
            # timer. This path is byte-identical to the pre-fault code.
            event = self.engine.event(name=f"req:{req_id}")
            self._pending[req_id] = event
            yield from self._send(msg)
            resp: KernelMessage = yield event
            return self._check_response(resp)
        o = obs.get()
        for attempt in range(max_retries + 1):
            event = self.engine.event(name=f"req:{req_id}#{attempt}")
            self._pending[req_id] = event
            if attempt:
                o.counter("xemem.req.retries").inc()
            try:
                yield from self._send(msg)
            except (RoutingError, ChannelClosedError) as err:
                if self._pending.get(req_id) is event:
                    del self._pending[req_id]
                raise XememError(
                    f"cannot deliver {msg.kind} from {self.enclave.name!r}: {err}"
                )
            which, value = yield self.engine.any_of(
                [event, self.engine.sleep(deadline_ns)]
            )
            if which == 0:
                return self._check_response(value)
            if self._pending.get(req_id) is event:
                del self._pending[req_id]
            o.counter("xemem.req.timeouts").inc()
            deadline_ns *= backoff
        raise XememTimeout(
            f"{msg.kind} {req_id} unanswered after {max_retries + 1} attempt(s)"
        )

    def _request_protected(self, msg: KernelMessage, ov: "OV.ModuleOverload"):
        """Generator: :meth:`_request` with backpressure honored.

        Replaces unbounded exponential backoff with (a) a per-destination
        circuit breaker that fails fast while the far side is *silent*
        (consecutive timeouts — an overload rejection is a healthy, fast
        answer and never trips it), (b) a per-module retry *budget*
        charged to timeout-driven retries only, so unpaced storms cannot
        amplify an overloaded server — retry-after retries are paced by
        the server itself and ride free, and (c) seeded backoff jitter
        and retry-after-hint waits drawn from the module's overload RNG
        stream (never module-level ``random`` — REP002)."""
        req_id = msg.payload["req_id"]
        o = obs.get()
        dst = msg.payload.get("dst")
        dst_key = "ns" if dst is None else f"e{dst}"
        breaker = ov.breaker_for(dst_key)
        if not breaker.allow():
            raise XememOverload(
                f"{msg.kind} {req_id}: circuit open to {dst_key}",
                retry_after_ns=breaker.retry_after_ns(),
                verdict="breaker-open",
            )
        deadline_ns, max_retries, backoff = self._request_policy()
        attempts = (max_retries if deadline_ns is not None
                    else ov.cfg.max_client_retries)
        last_overload: Optional[XememOverload] = None
        for attempt in range(attempts + 1):
            event = self.engine.event(name=f"req:{req_id}#{attempt}")
            self._pending[req_id] = event
            try:
                yield from self._send(msg)
            except (RoutingError, ChannelClosedError) as err:
                if self._pending.get(req_id) is event:
                    del self._pending[req_id]
                raise XememError(
                    f"cannot deliver {msg.kind} from {self.enclave.name!r}: {err}"
                )
            if deadline_ns is None:
                # no fault plan: the server always answers — with a result
                # or an overload rejection — so no timer is needed
                resp: KernelMessage = yield event
            else:
                which, value = yield self.engine.any_of(
                    [event, self.engine.sleep(deadline_ns)]
                )
                if which != 0:
                    if self._pending.get(req_id) is event:
                        del self._pending[req_id]
                    o.counter("xemem.req.timeouts").inc()
                    breaker.record_failure()
                    if attempt < attempts:
                        # the unpaced kind of retry: charge the budget
                        if not ov.budget.try_spend():
                            raise XememOverload(
                                f"{msg.kind} {req_id}: retry budget exhausted",
                                retry_after_ns=ov.cfg.retry_budget_window_ns,
                                verdict="budget-exhausted",
                            )
                        o.counter("xemem.req.retries").inc()
                        deadline_ns *= backoff
                        jitter = ov.jitter_ns()
                        if jitter:
                            yield self.engine.sleep(jitter)
                    continue
                resp = value
            try:
                result = self._check_response(resp)
            except XememOverload as err:
                # a rejection is the far side answering promptly — proof
                # of liveness, not breaker fodder; honor its pacing
                breaker.record_success()
                o.counter("xemem.req.backpressured").inc()
                last_overload = err
                if attempt < attempts:
                    wait = err.retry_after_ns + ov.jitter_ns()
                    if wait:
                        yield self.engine.sleep(wait)
                continue
            except XememError:
                # an application-level error is still a healthy answer
                breaker.record_success()
                raise
            breaker.record_success()
            return result
        if last_overload is not None:
            raise XememOverload(
                f"{msg.kind} {req_id}: still overloaded after "
                f"{attempts + 1} attempt(s)",
                retry_after_ns=last_overload.retry_after_ns,
                verdict=last_overload.verdict,
            )
        raise XememTimeout(
            f"{msg.kind} {req_id} unanswered after {attempts + 1} attempt(s)"
        )

    # ----------------------------------------------------------------- discovery

    def discover(self):
        """Generator: the paper's three discovery steps for this enclave."""
        with obs.get().span("xemem.discover", self.engine, track=self.enclave.name):
            result = yield from self._discover()
        return result

    def _discover(self):
        deadline_ns, max_retries, backoff = self._request_policy()
        if deadline_ns is None:
            # Fault-free baseline (byte-identical to the pre-fault code):
            # (1) broadcast: find a channel with a path to the name server
            token = self._next_req_id()
            event = self.engine.event(name=f"ping:{token}")
            self._ping_pending[token] = event
            for channel in self.enclave.channels:
                self._spawn_send_on(
                    channel, C.make_command(C.PING_NS_PATH, None, None, token=token)
                )
            first_channel: Channel = yield event
        else:
            first_channel = yield from self._discover_ping(
                deadline_ns, max_retries, backoff
            )
        self.routing.ns_channel = first_channel
        # (2) request an enclave ID through that channel
        req_id = self._next_req_id()
        if deadline_ns is None:
            event = self.engine.event(name=f"req:{req_id}")
            self._pending[req_id] = event
            yield from first_channel.send(
                self.enclave,
                C.make_command(C.ALLOC_ENCLAVE_ID, None, None, req_id=req_id),
            )
            resp: KernelMessage = yield event
        else:
            resp = yield from self._discover_alloc(
                first_channel, req_id, deadline_ns, max_retries, backoff
            )
        self.enclave.enclave_id = resp.payload["enclave_id"]
        self.routing.discovered = True
        return self.enclave.enclave_id

    def _discover_ping(self, deadline_ns: int, max_retries: int, backoff: int):
        """Bounded discovery step 1: re-broadcast the ping until acked.

        Each attempt uses a fresh token, so a late ack for an abandoned
        broadcast is dropped as stray rather than racing a newer one.
        """
        o = obs.get()
        for attempt in range(max_retries + 1):
            token = self._next_req_id()
            event = self.engine.event(name=f"ping:{token}")
            self._ping_pending[token] = event
            for channel in self.enclave.channels:
                self._spawn_send_on(
                    channel, C.make_command(C.PING_NS_PATH, None, None, token=token)
                )
            which, value = yield self.engine.any_of(
                [event, self.engine.sleep(deadline_ns)]
            )
            if which == 0:
                return value
            self._ping_pending.pop(token, None)
            o.counter("xemem.req.timeouts").inc()
            deadline_ns *= backoff
        raise XememTimeout(
            f"enclave {self.enclave.name!r} found no name-server path after "
            f"{max_retries + 1} broadcast(s)"
        )

    def _discover_alloc(self, channel: Channel, req_id: str, deadline_ns: int,
                        max_retries: int, backoff: int):
        """Bounded discovery step 2. The req_id is stable across retries so
        forwarders and the name server can deduplicate replays."""
        o = obs.get()
        for attempt in range(max_retries + 1):
            event = self.engine.event(name=f"req:{req_id}#{attempt}")
            self._pending[req_id] = event
            if attempt:
                o.counter("xemem.req.retries").inc()
            yield from channel.send(
                self.enclave,
                C.make_command(C.ALLOC_ENCLAVE_ID, None, None, req_id=req_id),
            )
            which, value = yield self.engine.any_of(
                [event, self.engine.sleep(deadline_ns)]
            )
            if which == 0:
                return value
            if self._pending.get(req_id) is event:
                del self._pending[req_id]
            o.counter("xemem.req.timeouts").inc()
            deadline_ns *= backoff
        raise XememTimeout(
            f"enclave-id allocation {req_id} unanswered after "
            f"{max_retries + 1} attempt(s)"
        )

    def _spawn_send_on(self, channel: Channel, msg: KernelMessage) -> None:
        self.engine.spawn(
            self._send_on_safely(channel, msg), name=f"send:{msg.kind}"
        )

    def _send_on_safely(self, channel: Channel, msg: KernelMessage):
        try:
            yield from channel.send(self.enclave, msg)
        except ChannelClosedError:
            obs.get().counter("xemem.msgs.undeliverable").inc()

    # ----------------------------------------------------------------- dispatch

    def _handle(self, msg: KernelMessage, channel: Channel):
        kind = msg.kind

        # -- hop-by-hop discovery traffic (no enclave IDs exist yet) --------
        if kind == C.PING_NS_PATH:
            if self.routing.discovered:
                yield from channel.send(
                    self.enclave,
                    C.make_command(
                        C.PING_NS_PATH_ACK, None, None, token=msg.payload["token"]
                    ),
                )
            return
        if kind == C.PING_NS_PATH_ACK:
            event = self._ping_pending.pop(msg.payload["token"], None)
            if event is None:
                # duplicate or late ack for an already-answered (or
                # abandoned) broadcast: drop, don't raise
                obs.get().counter("xemem.msgs.stray_dropped").inc()
                return
            event.trigger(channel)
            return
        if kind == C.ALLOC_ENCLAVE_ID:
            req_id = msg.payload["req_id"]
            if self.is_name_server:
                if self._ns_down_until > self.engine.now:
                    obs.get().counter("faults.ns.dropped_while_down").inc()
                    return
                cached = self._served_responses.get(req_id)
                if cached is not None:
                    # retried allocation: replay the assignment instead of
                    # burning a second enclave ID
                    obs.get().counter("xemem.msgs.replayed").inc()
                    yield from channel.send(
                        self.enclave,
                        KernelMessage(kind=cached.kind,
                                      payload=dict(cached.payload)),
                    )
                    return
                if req_id in self._in_service:
                    obs.get().counter("xemem.msgs.dup_in_service").inc()
                    return
                if self._request_dedup_active():
                    self._in_service.add(req_id)
                new_id = self.nameserver.alloc_enclave_id()
                self.routing.learn(new_id, channel)
                assigned = C.make_command(
                    C.ENCLAVE_ID_ASSIGNED, self.my_id, None,
                    req_id=req_id, enclave_id=new_id,
                )
                self._record_response(req_id, assigned)
                yield from channel.send(self.enclave, assigned)
            else:
                self._forwarded[req_id] = channel
                yield from self._send(msg)
            return
        if kind == C.ENCLAVE_ID_ASSIGNED:
            req_id = msg.payload["req_id"]
            if req_id in self._pending:
                self._pending.pop(req_id).trigger(msg)
                return
            origin = self._forwarded.pop(req_id, None)
            if origin is None:
                # duplicate assignment already delivered (or the waiter
                # timed out and moved on): drop, don't raise
                obs.get().counter("xemem.msgs.stray_dropped").inc()
                return
            # learn the route to the newly assigned enclave (§3.2)
            self.routing.learn(msg.payload["enclave_id"], origin)
            yield from origin.send(self.enclave, msg)
            return

        # -- addressed traffic ------------------------------------------------
        dst = msg.payload.get("dst")
        if dst is None and not self.is_name_server:
            self._count_forward()
            yield from self._send(msg)
            return
        if dst is None and self.is_name_server:
            yield from self._handle_at_name_server(msg)
            return
        if dst != self.my_id:
            self._count_forward()
            yield from self._send(msg)
            return

        # -- mine -------------------------------------------------------------
        reply_to = msg.payload.get("reply_to")
        if reply_to is not None:
            event = self._pending.pop(reply_to, None)
            if event is None:
                # a duplicated response, or one that arrived after the
                # requester's deadline fired: drop, don't raise
                obs.get().counter("xemem.msgs.stray_dropped").inc()
                return
            event.trigger(msg)
            return
        if self.overload is not None and kind not in C.ONE_WAY:
            yield from self._serve_admitted(msg, self.overload)
            return
        yield from self._serve(msg)

    # -- overload admission (armed only) -----------------------------------

    def _serve_admitted(self, msg: KernelMessage, ov: "OV.ModuleOverload"):
        """Owner-side serving behind the bounded admission queue."""
        try:
            verdict = yield from ov.controller.admit(msg.kind)
        except XememError:
            # the module crashed/shut down while this request was queued
            obs.get().counter("overload.aborted").inc()
            return
        if verdict != OV.SERVE:
            self._reject_overloaded(msg, verdict, ov)
            return
        try:
            yield from self._serve(msg)
        finally:
            ov.controller.release()

    def _reject_overloaded(self, msg: KernelMessage, verdict: str,
                           ov: "OV.ModuleOverload") -> None:
        """Answer a refused request with a backpressure response.

        Deliberately *not* routed through :meth:`_respond`: a rejection
        must never enter the replay cache, or a retried request would be
        told "overloaded" forever."""
        obs.get().counter("xemem.msgs.overload_rejected").inc()
        if msg.kind in C.ONE_WAY or msg.kind not in C.RESPONSE_KIND:
            return
        resp = C.make_response(
            msg, self.my_id,
            error=f"overloaded: {verdict} at enclave {self.enclave.name!r}",
            overload=verdict,
            retry_after_ns=ov.controller.retry_hint_ns(),
        )
        self._spawn_send(resp)

    # -- retried-request deduplication -------------------------------------

    def _request_dedup_active(self) -> bool:
        injector = self.engine.faults
        return injector is not None and injector.active

    def _maybe_replay(self, msg: KernelMessage) -> bool:
        """True if ``msg`` is a duplicate of a served/in-flight request.

        A cached response is re-sent (idempotent replay); a duplicate of a
        request still in service is suppressed — the original's response
        will answer both, since they share a req_id.
        """
        if not self._request_dedup_active():
            return False
        req_id = msg.payload.get("req_id")
        if req_id is None:
            return False
        cached = self._served_responses.get(req_id)
        if cached is not None:
            obs.get().counter("xemem.msgs.replayed").inc()
            self._spawn_send(
                KernelMessage(kind=cached.kind, payload=dict(cached.payload),
                              pfns=cached.pfns)
            )
            return True
        if req_id in self._in_service:
            obs.get().counter("xemem.msgs.dup_in_service").inc()
            return True
        self._in_service.add(req_id)
        return False

    def _record_response(self, req_id: Optional[str],
                         resp: KernelMessage) -> None:
        if req_id is None:
            return
        self._in_service.discard(req_id)
        if not self._request_dedup_active():
            return
        self._served_responses[req_id] = resp
        while len(self._served_responses) > _REPLAY_CACHE_CAP:
            self._served_responses.popitem(last=False)

    def _respond(self, request: KernelMessage, pfns=None, **fields) -> None:
        """Build, record (for replay), and spawn-send a response."""
        resp = C.make_response(request, self.my_id, pfns=pfns, **fields)
        self._record_response(request.payload.get("req_id"), resp)
        self._spawn_send(resp)

    # -- name-server failure detection -------------------------------------

    def _lease_ns(self) -> Optional[int]:
        injector = self.engine.faults
        if injector is not None and injector.active and injector.plan.heartbeats:
            return injector.plan.lease_ns
        return None

    def _sweep_leases(self) -> None:
        """GC every tracked enclave whose lease has expired.

        Deferred at degradation level 2: under pressure the sweep's
        bookkeeping yields its cycles to the serving hot path; the next
        sweep below the threshold catches up (leases only get *more*
        expired)."""
        lease = self._lease_ns()
        if lease is None:
            return
        ov = self.overload
        if ov is not None and ov.refresh_level() >= 2:
            ov.gc_deferred += 1
            obs.get().counter("overload.ns.gc_deferred").inc()
            return
        ns = self.nameserver
        for eid in ns.expired_enclaves(self.engine.now, lease):
            purged = ns.gc_enclave(eid)
            obs.get().counter("xemem.ns.lease_gc").inc()
            obs.get().counter("xemem.ns.lease_gc_segids").inc(len(purged))

    def _note_heartbeat(self, msg: KernelMessage) -> None:
        src = msg.payload.get("src")
        if src is not None:
            self.nameserver.note_heartbeat(src, self.engine.now)
        self._sweep_leases()

    def restart_nameserver(self, outage_ns: int = 0) -> None:
        """Model a name-server restart: the service is down for
        ``outage_ns`` (all NS traffic dropped), and its volatile replay
        cache is lost. Registrations (the segid map) persist — the paper's
        name server lives in the management enclave whose state survives a
        service restart. Leases restart from the recovery time so a
        momentarily-silent enclave is not GC'd by the outage itself."""
        if not self.is_name_server:
            raise XememError("restart_nameserver on a non-name-server enclave")
        self._ns_down_until = self.engine.now + outage_ns
        self._served_responses.clear()
        self._in_service.clear()
        self.nameserver.restart_grace(self._ns_down_until)
        obs.get().counter("xemem.ns.restarts").inc()

    def _handle_at_name_server(self, msg: KernelMessage):
        """NS-addressed commands: resolve or answer (§4.2)."""
        kind = msg.kind
        if self._ns_down_until > self.engine.now:
            # restart outage window: the service is down; requesters'
            # retries carry them past it
            obs.get().counter("faults.ns.dropped_while_down").inc()
            return
        if kind == C.ENCLAVE_HEARTBEAT:
            self._note_heartbeat(msg)
            return
        # Journey tag: the req_id ties this serving span to the client
        # operation that sent the command (heartbeats excluded — they
        # belong to no request).
        with obs.get().span("xemem.ns.handle", self.engine,
                            track=self.enclave.name, kind=kind,
                            req_id=msg.payload.get("req_id")):
            if self.overload is not None:
                yield from self._dispatch_protected(msg, self.overload)
            else:
                yield from self._dispatch_at_name_server(msg)

    def _dispatch_protected(self, msg: KernelMessage, ov: "OV.ModuleOverload"):
        """NS dispatch behind admission control + the degradation ladder.

        Ladder (docs/OVERLOAD.md): level 1 — discovery (lookup/list)
        sheds before attach; lookups may still be answered from a
        stale-bounded cache without consuming a serve slot. Level 2 —
        lease GC defers (see :meth:`_sweep_leases`). Release-class
        traffic always admits ahead of both.
        """
        ov.refresh_level()
        kind = msg.kind
        if ov.level >= 1 and kind in (C.LOOKUP_NAME, C.LIST_NAMES):
            if kind == C.LOOKUP_NAME:
                cached = ov.lookup_cache.get(msg.payload.get("name"))
                if cached is not None and (
                    self.engine.now - cached[1] <= ov.cfg.stale_lookup_ttl_ns
                ):
                    ov.stale_hits += 1
                    ov.controller.count_served_direct()
                    obs.get().counter("overload.ns.stale_lookups").inc()
                    self._spawn_send(C.make_response(
                        msg, self.my_id, segid=cached[0], stale=True,
                    ))
                    return
            ov.controller.count_shed_direct()
            self._reject_overloaded(msg, OV.SHED, ov)
            return
        try:
            verdict = yield from ov.controller.admit(kind)
        except XememError:
            obs.get().counter("overload.aborted").inc()
            return
        if verdict != OV.SERVE:
            self._reject_overloaded(msg, verdict, ov)
            return
        try:
            yield from self._dispatch_at_name_server(msg)
        finally:
            ov.controller.release()

    def _dispatch_at_name_server(self, msg: KernelMessage):
        ns = self.nameserver
        kind = msg.kind
        if kind in C.SEGID_ADDRESSED:
            self._sweep_leases()
            try:
                owner = ns.owner_of(msg.payload["segid"])
            except XememError as err:
                if kind == C.RELEASE_REQ:
                    # releasing a grant on an already-removed segid is
                    # fine: the grant is gone either way (idempotent)
                    self._respond(msg, ok=True)
                else:
                    self._respond(msg, error=str(err))
                return
            if owner == self.my_id:
                yield from self._serve(msg)
            else:
                msg.payload["dst"] = owner
                self._count_forward()
                try:
                    yield from self._send(msg)
                except (RoutingError, ChannelClosedError, XememError) as err:
                    # the owner died between resolution and forwarding
                    self._respond(
                        msg, error=f"owner enclave {owner} unreachable: {err}"
                    )
            return
        if self._maybe_replay(msg):
            return
        if kind == C.ALLOC_SEGID:
            try:
                segid = ns.alloc_segid(
                    msg.payload["src"],
                    msg.payload["npages"],
                    msg.payload.get("name"),
                )
                self._respond(msg, segid=int(segid))
            except XememError as err:
                self._respond(msg, error=str(err))
            return
        if kind == C.REMOVE_SEGID:
            try:
                ns.remove_segid(msg.payload["segid"], msg.payload["src"])
                self._respond(msg, ok=True)
            except XememError as err:
                self._respond(msg, error=str(err))
            return
        if kind == C.LOOKUP_NAME:
            segid = ns.lookup_name(msg.payload["name"])
            if self.overload is not None and segid is not None:
                # feed the stale-bounded cache the ladder serves from
                self.overload.lookup_cache[msg.payload["name"]] = (
                    segid, self.engine.now,
                )
            self._respond(msg, segid=segid)
            return
        if kind == C.LIST_NAMES:
            names = ns.list_names(msg.payload.get("prefix", ""))
            self._respond(msg, names=names)
            return
        if kind == C.ENCLAVE_DEPART:
            departing = msg.payload["src"]
            purged = ns.segids_of(departing)
            for sid in purged:
                ns.remove_segid(sid, departing)
            # routing entries are purged by EnclaveSystem.shutdown_enclave
            # once the ack has been delivered (the ack still needs them)
            self._respond(msg, purged_segids=len(purged))
            return
        raise XememError(f"name server cannot handle {kind!r}")
        yield  # pragma: no cover

    # ----------------------------------------------------------------- serving

    def _serve(self, msg: KernelMessage):
        """Requests addressed to this enclave as a segment owner."""
        kind = msg.kind
        if kind == C.SEGID_NOTIFY:
            # one-way, no req_id: dedup does not apply
            self._deliver_signal(msg.payload["segid"])
            return
        if self._maybe_replay(msg):
            # a retried command we already served (or are serving): the
            # replayed/original response answers it. Double-serving would
            # double-count grants_out.
            return
        if kind == C.GET_REQ:
            seg = self.segments.get(msg.payload["segid"])
            if seg is None or seg.removed:
                self._respond(msg, error="unknown or removed segid")
                return
            if not seg.permit.allows(msg.payload["write"], is_owner=False):
                self._respond(msg, error="permission denied")
                return
            seg.grants_out += 1
            self._respond(msg, npages=seg.npages)
            return
        if kind == C.ATTACH_REQ:
            yield from self._serve_attach(msg)
            return
        if kind == C.RELEASE_REQ:
            seg = self.segments.get(msg.payload["segid"])
            if seg is not None and seg.grants_out > 0:
                seg.grants_out -= 1
            self._respond(msg, ok=True)
            return
        if kind == C.NOTIFY_SUBSCRIBE:
            segid = msg.payload["segid"]
            if segid not in self.segments:
                self._respond(msg, error="unknown segid")
                return
            subs = self._signal_subs.setdefault(segid, [])
            if msg.payload["src"] not in subs:
                subs.append(msg.payload["src"])
            self._respond(msg, ok=True)
            return
        if kind == C.SIGNAL_REQ:
            segid = msg.payload["segid"]
            if segid not in self.segments:
                self._respond(msg, error="unknown segid")
                return
            self._fan_out_signal(segid, exclude=None)
            self._respond(msg, ok=True)
            return
        raise XememError(f"enclave {self.enclave.name!r} cannot serve {kind!r}")

    def _serve_attach(self, msg: KernelMessage):
        """Owner side of Fig. 3 steps 5–6: walk pages, return the PFN list."""
        seg = self.segments.get(msg.payload["segid"])
        if seg is None or seg.removed:
            self._respond(msg, error="unknown or removed segid")
            return
        offset_pages = msg.payload["offset_pages"]
        npages = msg.payload["npages"]
        if offset_pages < 0 or npages <= 0 or offset_pages + npages > seg.npages:
            self._respond(msg, error="attach range outside segment")
            return
        o = obs.get()
        with o.span("xemem.serve_attach", self.engine, track=self.enclave.name,
                    npages=npages, req_id=msg.payload.get("req_id")):
            pfns = yield from self.kernel.walk_for_export(
                seg.proc, seg.vaddr + offset_pages * PAGE_SIZE, npages
            )
        o.counter("xemem.attach.served").inc()
        self.stats["attaches_served"] += 1
        resp = C.make_response(msg, self.my_id, pfns=pfns)
        self._record_response(msg.payload.get("req_id"), resp)
        yield from self._send(resp)

    # ============================================================== user operations

    def make(self, proc, vaddr: int, nbytes: int, permit: Permit = Permit(),
             name: Optional[str] = None):
        """Generator: export [vaddr, vaddr+nbytes) → :class:`ExportedSegment`."""
        if vaddr % PAGE_SIZE or nbytes <= 0:
            raise XememError(f"export range [{vaddr:#x}, +{nbytes}) not page aligned")
        npages = -(-nbytes // PAGE_SIZE)
        o = obs.get()
        with o.span("xemem.make", self.engine, track=self.enclave.name,
                    npages=npages, segname=name) as sp:
            yield self.engine.sleep(self.costs.export_fixed_ns)
            if self.is_name_server:
                segid = self.nameserver.alloc_segid(self.my_id, npages, name)
            else:
                req_id = self._next_req_id()
                sp.set(req_id=req_id)
                resp = yield from self._request(
                    C.make_command(
                        C.ALLOC_SEGID, self.my_id, None,
                        req_id=req_id, npages=npages, name=name,
                    )
                )
                segid = SegmentId(resp.payload["segid"])
        o.counter("xemem.make.count").inc()
        seg = ExportedSegment(segid, proc, vaddr, npages, permit, name)
        self.segments[int(segid)] = seg
        return seg

    def remove(self, proc, seg: ExportedSegment):
        """Generator: ``xpmem_remove`` — retire the segid."""
        if seg.proc is not proc:
            raise XememError("only the exporting process may remove a segment")
        if seg.removed:
            raise XememError(f"{seg.segid!r} already removed")
        seg.removed = True
        self.segments.pop(int(seg.segid), None)
        if self.is_name_server:
            self.nameserver.remove_segid(int(seg.segid), self.my_id)
            yield self.engine.sleep(self.costs.detach_fixed_ns)
        else:
            yield from self._request(
                C.make_command(
                    C.REMOVE_SEGID, self.my_id, None,
                    req_id=self._next_req_id(), segid=int(seg.segid),
                )
            )

    def lookup(self, name: str):
        """Generator: discoverability — find a segid by registered name."""
        o = obs.get()
        with o.span("xemem.lookup", self.engine, track=self.enclave.name,
                    segname=name) as sp:
            if self.is_name_server:
                yield self.engine.sleep(self.costs.detach_fixed_ns)
                segid = self.nameserver.lookup_name(name)
            else:
                req_id = self._next_req_id()
                sp.set(req_id=req_id)
                resp = yield from self._request(
                    C.make_command(
                        C.LOOKUP_NAME, self.my_id, None,
                        req_id=req_id, name=name,
                    )
                )
                segid = resp.payload["segid"]
        return None if segid is None else SegmentId(segid)

    def list_names(self, prefix: str = ""):
        """Generator: discoverability — all registered segment names."""
        if self.is_name_server:
            yield self.engine.sleep(self.costs.detach_fixed_ns)
            return self.nameserver.list_names(prefix)
        resp = yield from self._request(
            C.make_command(
                C.LIST_NAMES, self.my_id, None,
                req_id=self._next_req_id(), prefix=prefix,
            )
        )
        return resp.payload["names"]

    def get(self, proc, segid: SegmentId, write: bool = True):
        """Generator: ``xpmem_get`` — request access, returns an ApId."""
        o = obs.get()
        o.counter("xemem.get.count").inc()
        local = self.segments.get(int(segid))
        with o.span("xemem.get", self.engine, track=self.enclave.name,
                    local=local is not None) as sp:
            if local is not None:
                if not local.permit.allows(write, is_owner=local.proc is proc):
                    raise PermissionError_(f"permission denied for {segid!r}")
                local.grants_out += 1
                npages = local.npages
                yield self.engine.sleep(self.costs.detach_fixed_ns)
            else:
                req_id = self._next_req_id()
                sp.set(req_id=req_id)
                resp = yield from self._request(
                    C.make_command(
                        C.GET_REQ, self.my_id, None,
                        req_id=req_id, segid=int(segid), write=write,
                    )
                )
                npages = resp.payload["npages"]
        apid = ApId((self.my_id << 20) | next(self._apid_counter))
        self.grants.insert(
            apid, segid, proc, npages, write, owner_is_local=local is not None
        )
        return apid

    def release(self, proc, apid: ApId):
        """Generator: ``xpmem_release`` — drop a grant.

        Refused while attachments made under the grant are still mapped
        (XPMEM semantics: detach before release)."""
        obs.get().counter("xemem.release.count").inc()
        grant = self._grant_of(proc, apid)
        if self._live_attachments.get(int(apid), 0) > 0:
            raise XememError(
                f"{apid!r} still has {self._live_attachments[int(apid)]} live "
                "attachment(s); xpmem_detach them first"
            )
        grant.released = True
        del self.grants[int(apid)]
        if grant.owner_is_local:
            seg = self.segments.get(int(grant.segid))
            if seg is not None and seg.grants_out > 0:
                seg.grants_out -= 1
            yield self.engine.sleep(self.costs.detach_fixed_ns)
        else:
            yield from self._request(
                C.make_command(
                    C.RELEASE_REQ, self.my_id, None,
                    req_id=self._next_req_id(), segid=int(grant.segid),
                )
            )

    def attach(self, proc, apid: ApId, offset: int = 0, nbytes: Optional[int] = None):
        """Generator: ``xpmem_attach`` — map (a window of) the segment.

        Local segments use the enclave OS's own conventions (SMARTMAP on
        Kitten, a lazy VMA on Linux); remote segments run the full Fig. 3
        protocol and map the returned PFN list eagerly.
        """
        grant = self._grant_of(proc, apid)
        if offset % PAGE_SIZE:
            raise XememError(f"attach offset {offset:#x} not page aligned")
        offset_pages = offset // PAGE_SIZE
        npages = (
            grant.npages - offset_pages
            if nbytes is None
            else -(-nbytes // PAGE_SIZE)
        )
        if offset_pages < 0 or npages <= 0 or offset_pages + npages > grant.npages:
            raise XememError("attach range outside segment")
        o = obs.get()
        t0 = self.engine.now
        with o.span("xemem.attach", self.engine, track=self.enclave.name,
                    npages=npages, local=grant.owner_is_local) as sp:
            yield self.engine.sleep(self.costs.attach_fixed_ns)
            if grant.owner_is_local:
                attached = yield from self._attach_local(proc, grant, offset_pages, npages)
            else:
                attached = yield from self._attach_remote(
                    proc, grant, offset_pages, npages, span=sp
                )
        if self.grants.get(int(grant.apid)) is not grant:
            # The grant was invalidated (its owner enclave crashed) while
            # we were mapping: tear the half-made attachment back down
            # instead of registering a mapping into dead memory.
            attached.detached = True
            if attached.region is not None:
                aspace = proc.aspace
                if attached.region in aspace.regions:
                    if attached.region.populated == attached.region.npages:
                        aspace.unmap_region(attached.region)
                    else:
                        aspace.unmap_populated_pages(attached.region)
            raise XememError(
                f"{grant.apid!r} invalidated while attaching (owner crashed)"
            )
        o.counter("xemem.attach.count").inc()
        o.counter("xemem.attach.pages").inc(npages)
        o.histogram("xemem.attach.ns").observe(self.engine.now - t0)
        self.stats["attaches_made"] += 1
        self._live_attachments.bump(int(grant.apid), 1)
        self._attachments_by_apid.setdefault(int(grant.apid), []).append(attached)
        return attached

    def _attach_local(self, proc, grant: ApGrant, offset_pages: int, npages: int):
        seg = self.segments.get(int(grant.segid))
        if seg is None or seg.removed:
            raise XememError(f"{grant.segid!r} removed")
        if self.kernel.kernel_type == "kitten":
            # SMARTMAP: O(1) whole-address-space aliasing (§4.3)
            key = (proc.pid, seg.proc.pid)
            if self._smartmap_refs.get(key, 0) == 0:
                self.kernel.smartmap_attach(proc, seg.proc)
            self._smartmap_refs[key] = self._smartmap_refs.get(key, 0) + 1
            vaddr = self.kernel.smartmap_address(
                seg.proc, seg.vaddr + offset_pages * PAGE_SIZE
            )
            pfns = seg.proc.aspace.table.translate_range(
                seg.vaddr + offset_pages * PAGE_SIZE, npages
            )
            # SMARTMAP aliases the donor's own PTEs, so a read-only grant
            # is enforced at the view layer, not in the page table.
            view = self.kernel.mem.map_region(pfns, writable=grant.write)
            return AttachedRegion(
                grant.apid, grant.segid, proc, vaddr, npages,
                kind="smartmap", view=view, smartmap_donor=seg.proc,
            )
        # Linux local path: pin the exporter's pages, then lazily map them
        pfns = yield from self.kernel.walk_for_export(
            seg.proc, seg.vaddr + offset_pages * PAGE_SIZE, npages,
            core=self.kernel.node.core(proc.core_id),
        )
        region = yield from self.kernel.attach_local_lazy(
            proc, pfns, name=f"xemem:{int(grant.segid):#x}",
            writable=grant.write,
        )
        view = self.kernel.mem.map_region(pfns, writable=grant.write)
        return AttachedRegion(
            grant.apid, grant.segid, proc, region.start, npages,
            kind="linux-lazy", region=region, local_pfns=pfns, view=view,
        )

    def _attach_remote(self, proc, grant: ApGrant, offset_pages: int,
                       npages: int, span=NULL_SPAN):
        # The req_id is allocated here (not in attach()) so the id
        # sequence is stable; the open attach span gets it as a journey
        # tag via the passed-in handle.
        req_id = self._next_req_id()
        span.set(req_id=req_id)
        resp = yield from self._request(
            C.make_command(
                C.ATTACH_REQ, self.my_id, None,
                req_id=req_id, segid=int(grant.segid),
                offset_pages=offset_pages, npages=npages,
            )
        )
        pfns = resp.pfns
        if pfns is None or len(pfns) != npages:
            raise XememError("malformed attach response")
        extra = (
            self.costs.guest_map_install_per_page_ns
            - self.costs.map_install_per_page_ns
            if getattr(self.kernel, "virtualized", False)
            else 0
        )
        region = yield from self.kernel.map_remote_pfns(
            proc, pfns, name=f"xemem:{int(grant.segid):#x}",
            core=self.kernel.node.core(proc.core_id),
            extra_per_page_ns=extra,
            writable=grant.write,
        )
        view = self.kernel.mem.map_region(pfns, writable=grant.write)
        return AttachedRegion(
            grant.apid, grant.segid, proc, region.start, npages,
            kind="remote", region=region, local_pfns=pfns, view=view,
        )

    def detach(self, proc, attached: AttachedRegion):
        """Generator: ``xpmem_detach`` — unmap an attachment."""
        if attached.detached:
            raise XememError("already detached")
        if attached.proc is not proc:
            raise XememError("only the attaching process may detach")
        obs.get().counter("xemem.detach.count").inc()
        attached.detached = True
        live = self._live_attachments.get(int(attached.apid), 0)
        if live > 0:
            self._live_attachments[int(attached.apid)] = live - 1
        registry = self._attachments_by_apid.get(int(attached.apid))
        if registry is not None and attached in registry:
            registry.remove(attached)
        if attached.kind == "smartmap":
            key = (proc.pid, attached.smartmap_donor.pid)
            refs = self._smartmap_refs.get(key, 0)
            if refs <= 0:
                raise XememError("SMARTMAP refcount underflow")
            self._smartmap_refs[key] = refs - 1
            if refs == 1:
                self.kernel.smartmap_detach(proc, attached.smartmap_donor)
            yield self.engine.sleep(self.costs.detach_fixed_ns)
            return
        yield from self.kernel.unmap_attachment(proc, attached.region)
        if attached.kind == "remote" and getattr(self.kernel, "virtualized", False):
            # drop the guest-physical alias Palacios created for this attach
            yield from self.kernel.vmm.unmap_guest_attachment(attached.local_pfns)

    # ================================================== event-notification extension
    #
    # The paper's §6.1 notes that its OS/Rs "only support application
    # communication through shared memory, and thus operations like event
    # notifications must be supported via ad hoc techniques like polling"
    # and promises to "investigate techniques to support additional
    # features". This is that feature: kernel-level doorbells on a segid.
    # Waiters subscribe once (a routed message to the owner); every signal
    # fans out one message per subscribed enclave. Semaphore semantics —
    # a signal raised before anyone waits is not lost.

    def _signal_cell(self, segid: int) -> list:
        return self._signal_state.setdefault(int(segid), [0, []])

    def _deliver_signal(self, segid: int) -> None:
        cell = self._signal_cell(segid)
        if cell[1]:
            cell[1].pop(0).trigger(None)
        else:
            cell[0] += 1

    def _fan_out_signal(self, segid: int, exclude) -> None:
        """Owner side: wake local waiters, notify remote subscribers.

        Notifications are lossy toward departed enclaves (their routes
        are gone); that mirrors real doorbells — nobody is listening.
        """
        self._deliver_signal(segid)
        for enclave_id in self._signal_subs.get(int(segid), []):
            if enclave_id == exclude:
                continue
            msg = C.make_command(
                C.SEGID_NOTIFY, self.my_id, enclave_id, segid=int(segid)
            )

            def lossy_send(msg=msg):
                from repro.enclave.enclave import ChannelClosedError
                from repro.xemem.routing import RoutingError

                try:
                    yield from self._send(msg)
                except (RoutingError, ChannelClosedError):
                    pass

            self.engine.spawn(lossy_send(), name="notify")

    def subscribe_signals(self, proc, segid: SegmentId):
        """Generator: register this enclave for ``segid``'s doorbell.

        Local waiters of the owning enclave need no subscription; remote
        waiters subscribe once and then receive every signal as a routed
        one-way message.
        """
        if int(segid) in self.segments:
            yield self.engine.sleep(self.costs.detach_fixed_ns)
            return True
        yield from self._request(
            C.make_command(
                C.NOTIFY_SUBSCRIBE, self.my_id, None,
                req_id=self._next_req_id(), segid=int(segid),
            )
        )
        return True

    def signal(self, proc, segid: SegmentId):
        """Generator: ring the segid's doorbell (wakes all waiters once)."""
        if int(segid) in self.segments:
            self._fan_out_signal(int(segid), exclude=None)
            yield self.engine.sleep(self.costs.detach_fixed_ns)
            return
        yield from self._request(
            C.make_command(
                C.SIGNAL_REQ, self.my_id, None,
                req_id=self._next_req_id(), segid=int(segid),
            )
        )

    def wait_signal(self, proc, segid: SegmentId):
        """Generator: block until the segid's doorbell rings.

        Consumes one pending signal if present (semaphore semantics).
        The waiter must have subscribed first unless it is in the owning
        enclave.
        """
        cell = self._signal_cell(int(segid))
        if cell[0] > 0:
            cell[0] -= 1
            return
        event = self.engine.event(name=f"signal:{int(segid):#x}")
        cell[1].append(event)
        yield event

    # ============================================================ enclave lifecycle

    def shutdown(self, force: bool = False):
        """Generator: deregister this enclave from the XEMEM name space.

        The paper's §3.2 expects node partitions to be *dynamic*; this is
        the departure half. All locally exported segments are retired at
        the name server. By default, shutdown refuses while other
        enclaves hold grants on local segments (their mappings would
        dangle); ``force=True`` overrides for failure-injection tests.
        """
        outstanding = sum(seg.grants_out for seg in self.segments.values())
        if outstanding and not force:
            raise XememError(
                f"enclave {self.enclave.name!r} has {outstanding} outstanding "
                "grant(s) on its segments; detach/release first (or force)"
            )
        if self.is_name_server:
            raise XememError("the name-server enclave cannot depart")
        # retire every owned segid in one departure message
        yield from self._request(
            C.make_command(
                C.ENCLAVE_DEPART, self.my_id, None, req_id=self._next_req_id()
            )
        )
        if force:
            # Outstanding waiters (signal waits, in-flight requests) would
            # otherwise hang forever against a departed enclave.
            err = XememError(f"enclave {self.enclave.name!r} departed")
            for cell in self._signal_state.values():
                waiters, cell[1] = cell[1], []
                for event in waiters:
                    if not event.triggered:
                        event.fail(err)
            for pending in (self._pending, self._ping_pending):
                events = list(pending.values())
                pending.clear()
                for event in events:
                    if not event.triggered:
                        event.fail(err)
            if self.overload is not None:
                self.overload.fail_all(err)
        # Drop *all* per-registration state, not just the segments: stale
        # grants, attachment refcounts, and signal subscriptions must not
        # survive into a later re-join of the same enclave.
        self.segments.clear()
        self.grants.clear()
        self._live_attachments.clear()
        self._attachments_by_apid.clear()
        self._smartmap_refs.clear()
        self._signal_subs.clear()
        self._signal_state.clear()
        self._forwarded.clear()
        self._served_responses.clear()
        self._in_service.clear()
        self._apid_counter = itertools.count(1)
        self.routing.discovered = False
        return True

    def crash(self) -> None:
        """Fail-stop this enclave's XEMEM service (no protocol, no costs).

        Called by :meth:`PiscesManager.crash_enclave`. Unlike
        :meth:`shutdown`, nothing is negotiated: every parked waiter fails
        immediately, all state is dropped, and the module ignores any
        traffic that still reaches it.
        """
        if self.crashed:
            return
        self.crashed = True
        recorder = obs.get().flightrec
        if recorder is not None:
            recorder.note(
                "xemem.module.crashed", self.engine.now,
                enclave=self.enclave.name,
                segments=len(self.segments),
                live_attachments=len(self._live_attachments),
            )
        err = XememError(f"enclave {self.enclave.name!r} crashed")
        for cell in self._signal_state.values():
            waiters, cell[1] = cell[1], []
            for event in waiters:
                if not event.triggered:
                    event.fail(err)
        for pending in (self._pending, self._ping_pending):
            events = list(pending.values())
            pending.clear()
            for event in events:
                if not event.triggered:
                    event.fail(err)
        if self.overload is not None:
            self.overload.fail_all(err)
        self.segments.clear()
        self.grants.clear()
        self._live_attachments.clear()
        self._attachments_by_apid.clear()
        self._smartmap_refs.clear()
        self._signal_subs.clear()
        self._signal_state.clear()
        self._forwarded.clear()
        self._served_responses.clear()
        self._in_service.clear()
        self.routing.routes.clear()
        self.routing.ns_channel = None
        self.routing.discovered = False
        obs.get().counter("faults.modules.crashed").inc()

    def invalidate_dead_segments(self, dead_segids, pfn_window,
                                 crashed_enclave_id: Optional[int] = None) -> int:
        """Survivor-side crash cleanup: tear down attachments into a dead
        enclave's memory and drop the matching grants.

        ``dead_segids`` — segids the crashed enclave owned (its exports);
        ``pfn_window`` — the dead enclave's physical partition ``(lo, hi)``,
        catching attachments whose segid records predate the crash (e.g.
        already-GC'd at the name server). The PTEs are unmapped
        synchronously (a real implementation would IPI-shootdown; the
        crash path charges no protocol cost — the frames are gone either
        way). Foreign frames are never freed here; the crashed kernel's
        teardown reclaims them. Returns the number of attachments torn
        down.
        """
        dead_segids = {int(s) for s in dead_segids}
        lo, hi = pfn_window
        dropped = 0
        virtualized = getattr(self.kernel, "virtualized", False)
        for apid, grant in list(self.grants.items()):
            if grant.owner_is_local:
                continue
            dead = int(grant.segid) in dead_segids
            registry = self._attachments_by_apid.get(apid, [])
            for att in list(registry):
                # Guest-side attachments carry guest-physical PFNs whose
                # numbering is unrelated to host frames; match those by
                # segid only.
                in_window = (
                    not virtualized
                    and att.local_pfns is not None
                    and len(att.local_pfns) > 0
                    and lo <= int(att.local_pfns[0]) < hi
                )
                if dead or in_window:
                    self._invalidate_attachment(att)
                    registry.remove(att)
                    dropped += 1
            if dead:
                self.grants.pop(apid, None)
                self._live_attachments.pop(apid, None)
                self._attachments_by_apid.pop(apid, None)
        if crashed_enclave_id is not None:
            for subs in self._signal_subs.values():
                if crashed_enclave_id in subs:
                    subs.remove(crashed_enclave_id)
        if dropped:
            obs.get().counter("faults.attachments.invalidated").inc(dropped)
        return dropped

    def _invalidate_attachment(self, att: AttachedRegion) -> None:
        if att.detached:
            return
        att.detached = True
        live = self._live_attachments.get(int(att.apid), 0)
        if live > 0:
            self._live_attachments[int(att.apid)] = live - 1
        if att.region is not None:
            aspace = att.proc.aspace
            if att.region in aspace.regions:
                if att.region.populated == att.region.npages:
                    aspace.unmap_region(att.region)
                else:
                    aspace.unmap_populated_pages(att.region)

    def _grant_of(self, proc, apid: ApId) -> ApGrant:
        grant = self.grants.get(int(apid))
        if grant is None:
            raise XememError(f"unknown {apid!r}")
        if grant.proc is not proc:
            raise XememError(f"{apid!r} belongs to {grant.proc!r}")
        return grant


def install_xemem(system, run_discovery_now: bool = True) -> Dict[str, XememModule]:
    """Put a module on every enclave; optionally run discovery. Returns
    {enclave name: module}."""
    if system.name_server_enclave is None:
        raise XememError("designate a name-server enclave first")
    modules = {}
    for enclave in system.enclaves:
        modules[enclave.name] = XememModule(
            enclave, is_name_server=enclave is system.name_server_enclave
        )
    if run_discovery_now:
        system.run_discovery()
    return modules
