"""User-visible shared-memory objects.

:class:`ExportedSegment` is what ``xpmem_make`` returns to the exporting
process; :class:`AttachedRegion` is what ``xpmem_attach`` returns to the
attaching process. Both carry a *data view* (:class:`~repro.hw.memory.
MappedRegion`) over the actual frames, so reads and writes through either
side hit the same bytes — the zero-copy property the test suite checks
end to end, including across VM boundaries.

The data view is the simulation's data plane: it is valid as soon as the
object exists. The control plane (page-table state, demand-paging faults,
modeled costs) is what the kernels account separately — e.g. touching a
lazily attached Linux region via ``kernel.touch_pages`` pays the fault
costs even though the view could already read the bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.hw.memory import MappedRegion
from repro.kernels.addrspace import Region
from repro.kernels.process import OSProcess
from repro.xemem.ids import ApId, Permit, SegmentId


@dataclass
class ExportedSegment:
    """An address range exported under a globally unique segid."""

    segid: SegmentId
    proc: OSProcess
    vaddr: int
    npages: int
    permit: Permit
    name: Optional[str] = None
    removed: bool = False
    #: How many grants (apids) other processes currently hold.
    grants_out: int = 0

    @property
    def nbytes(self) -> int:
        return self.npages * 4096

    def view(self) -> MappedRegion:
        """Exporter-side data view over the segment's current frames.

        The exporting process must have populated the pages first (on
        Linux, by touching them or via a served attach's get_user_pages;
        Kitten regions are always populated).
        """
        from repro.kernels.pagetable import PageFault
        from repro.xemem.ids import XememError

        try:
            pfns = self.proc.aspace.table.translate_range(self.vaddr, self.npages)
        except PageFault as fault:
            raise XememError(
                f"segment {self.segid!r} has unpopulated pages (first at "
                f"{fault.vaddr:#x}); touch the region before reading it"
            ) from fault
        return self.proc.kernel.mem.map_region(pfns)


#: Packed per-grant flag bits (the GrantTable flag column).
_GF_LIVE = 0x1
_GF_WRITE = 0x2
_GF_OWNER_LOCAL = 0x4
_GF_RELEASED = 0x8

_MISSING = object()


class ApGrant:
    """Attacher-side record of an ``xpmem_get`` grant.

    A stable view onto one :class:`GrantTable` row: scalar state lives
    in the table's columns and is read through properties, so the same
    object is returned for every lookup of the apid (the attach path
    detects mid-flight invalidation by identity). When the row is
    dropped from the table the view freezes its final field values, so
    holders of a dead grant still read consistent state.
    """

    __slots__ = ("_table", "_row", "apid", "segid", "_frozen")

    def __init__(self, table: "GrantTable", row: int, apid: ApId, segid: SegmentId):
        self._table = table
        self._row = row
        self.apid = apid
        self.segid = segid
        self._frozen = None

    def _detach(self) -> None:
        """Freeze column-backed fields before the table recycles the row."""
        t = self._table
        self._frozen = (t._procs[self._row], int(t._npages[self._row]),
                        int(t._flags[self._row]))
        self._row = -1

    @property
    def proc(self) -> OSProcess:
        if self._row < 0:
            return self._frozen[0]
        return self._table._procs[self._row]

    @property
    def npages(self) -> int:
        if self._row < 0:
            return self._frozen[1]
        return int(self._table._npages[self._row])

    def _flag(self, bit: int) -> bool:
        flags = self._frozen[2] if self._row < 0 else int(self._table._flags[self._row])
        return bool(flags & bit)

    @property
    def write(self) -> bool:
        return self._flag(_GF_WRITE)

    @property
    def owner_is_local(self) -> bool:
        return self._flag(_GF_OWNER_LOCAL)

    @property
    def released(self) -> bool:
        return self._flag(_GF_RELEASED)

    @released.setter
    def released(self, value: bool) -> None:
        if self._row < 0:
            flags = self._frozen[2]
            flags = flags | _GF_RELEASED if value else flags & ~_GF_RELEASED
            self._frozen = (self._frozen[0], self._frozen[1], flags)
        elif value:
            self._table._flags[self._row] |= _GF_RELEASED
        else:
            self._table._flags[self._row] &= 0xFF ^ _GF_RELEASED

    def __repr__(self) -> str:
        return (
            f"ApGrant({self.apid!r}, {self.segid!r}, {self.npages}p, "
            f"write={self.write}, local={self.owner_is_local})"
        )


class GrantTable:
    """Columnar (structure-of-arrays) grant list.

    The dict-of-dataclasses this replaces made every audit sweep a
    python loop over record objects. Here the scalar grant state lives
    in flat columns — apid/segid/npages ``int64`` plus one packed flag
    byte — while identity-bearing references (the owning process, the
    stable :class:`ApGrant` views) stay in object columns. An
    apid → row dict keeps lookups O(1); the audit invariants
    (released-but-registered, per-segid grant balance) become single
    vectorized masks over the columns. Rows are recycled through a
    free list, so capacity tracks the peak live grant count.

    The mapping surface mirrors the dict it replaced (``get``/``in``/
    ``items``/``values``/``len``/``== {}``), so callers and tests are
    unchanged.
    """

    def __init__(self) -> None:
        self._apids = np.empty(0, dtype=np.int64)
        self._segids = np.empty(0, dtype=np.int64)
        self._npages = np.empty(0, dtype=np.int64)
        self._flags = np.zeros(0, dtype=np.uint8)
        self._procs: List[Optional[OSProcess]] = []
        self._views: List[Optional[ApGrant]] = []
        self._index: Dict[int, int] = {}
        self._free: List[int] = []

    # -- row management -------------------------------------------------------

    def _new_row(self) -> int:
        if self._free:
            return self._free.pop()
        used = len(self._procs)
        if used == len(self._apids):
            newcap = max(2 * used, 16)
            for name in ("_apids", "_segids", "_npages"):
                col = np.zeros(newcap, dtype=np.int64)
                col[:used] = getattr(self, name)
                setattr(self, name, col)
            flags = np.zeros(newcap, dtype=np.uint8)
            flags[:used] = self._flags
            self._flags = flags
        self._procs.append(None)
        self._views.append(None)
        return used

    def insert(self, apid: ApId, segid: SegmentId, proc: OSProcess,
               npages: int, write: bool, owner_is_local: bool) -> ApGrant:
        """Register a grant; returns its stable :class:`ApGrant` view."""
        key = int(apid)
        if key in self._index:
            raise ValueError(f"apid {key} already granted")
        row = self._new_row()
        self._apids[row] = key
        self._segids[row] = int(segid)
        self._npages[row] = npages
        self._flags[row] = (
            _GF_LIVE
            | (_GF_WRITE if write else 0)
            | (_GF_OWNER_LOCAL if owner_is_local else 0)
        )
        self._procs[row] = proc
        view = ApGrant(self, row, apid, segid)
        self._views[row] = view
        self._index[key] = row
        return view

    def pop(self, apid, default=None):
        """Drop a grant; its view freezes and the row is recycled."""
        row = self._index.pop(int(apid), None)
        if row is None:
            return default
        view = self._views[row]
        view._detach()
        self._flags[row] = 0
        self._procs[row] = None
        self._views[row] = None
        self._free.append(row)
        return view

    def clear(self) -> None:
        for row in self._index.values():
            self._views[row]._detach()
        self._index.clear()
        self._flags[:] = 0
        self._procs = []
        self._views = []
        self._free = []

    # -- mapping surface ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __bool__(self) -> bool:
        return bool(self._index)

    def __contains__(self, apid) -> bool:
        return int(apid) in self._index

    def __iter__(self):
        return iter(self._index)

    def keys(self):
        return self._index.keys()

    def get(self, apid, default=None):
        row = self._index.get(int(apid))
        return default if row is None else self._views[row]

    def __getitem__(self, apid) -> ApGrant:
        return self._views[self._index[int(apid)]]

    def __delitem__(self, apid) -> None:
        if self.pop(apid, _MISSING) is _MISSING:
            raise KeyError(apid)

    def values(self) -> List[ApGrant]:
        return [self._views[row] for row in self._index.values()]

    def items(self) -> List:
        return [(key, self._views[row]) for key, row in self._index.items()]

    def __eq__(self, other):
        if isinstance(other, GrantTable):
            other = dict(other.items())
        if isinstance(other, dict):
            return dict(self.items()) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"GrantTable({len(self._index)} live, {len(self._procs)} rows)"

    # -- vectorized audit taps ------------------------------------------------

    def released_apids(self) -> np.ndarray:
        """Apids still registered but flagged released (one mask pass)."""
        want = np.uint8(_GF_LIVE | _GF_RELEASED)
        return self._apids[np.flatnonzero((self._flags & want) == want)]

    def counts_by_segid(self, owner_local_only: bool = False) -> Dict[int, int]:
        """Live-grant count per segid — one vectorized unique pass."""
        want = np.uint8(_GF_LIVE | (_GF_OWNER_LOCAL if owner_local_only else 0))
        rows = np.flatnonzero((self._flags & want) == want)
        segids, counts = np.unique(self._segids[rows], return_counts=True)
        return dict(zip(segids.tolist(), counts.tolist()))


class LiveCounts:
    """Columnar apid → live-attachment counter map.

    Same structure-of-arrays treatment as :class:`GrantTable` for the
    attachment refcounts: keys and counts are flat ``int64`` columns
    behind an apid → row dict, so the audit's negative-count sweep is
    one vectorized comparison. The dict surface (``get``/``[...]``/
    ``pop``/``items``/``== {}``) matches the plain dict it replaced —
    including keeping zero-count keys until popped or cleared.
    """

    def __init__(self) -> None:
        self._apids = np.empty(0, dtype=np.int64)
        self._counts = np.zeros(0, dtype=np.int64)
        self._index: Dict[int, int] = {}
        self._free: List[int] = []
        self._used = 0

    def _new_row(self) -> int:
        if self._free:
            return self._free.pop()
        if self._used == len(self._apids):
            newcap = max(2 * self._used, 16)
            apids = np.zeros(newcap, dtype=np.int64)
            counts = np.zeros(newcap, dtype=np.int64)
            apids[: self._used] = self._apids
            counts[: self._used] = self._counts
            self._apids, self._counts = apids, counts
        row = self._used
        self._used += 1
        return row

    def __setitem__(self, apid, count: int) -> None:
        key = int(apid)
        row = self._index.get(key)
        if row is None:
            row = self._new_row()
            self._apids[row] = key
            self._index[key] = row
        self._counts[row] = count

    def __getitem__(self, apid) -> int:
        return int(self._counts[self._index[int(apid)]])

    def get(self, apid, default=None):
        row = self._index.get(int(apid))
        return default if row is None else int(self._counts[row])

    def bump(self, apid, delta: int) -> int:
        """Add ``delta`` to the apid's count (creating it at 0)."""
        key = int(apid)
        row = self._index.get(key)
        if row is None:
            self[key] = delta
            return delta
        self._counts[row] += delta
        return int(self._counts[row])

    def pop(self, apid, default=None):
        row = self._index.pop(int(apid), None)
        if row is None:
            return default
        count = int(self._counts[row])
        self._counts[row] = 0
        self._free.append(row)
        return count

    def clear(self) -> None:
        self._index.clear()
        self._counts[:] = 0
        self._free = []
        self._used = 0

    def __len__(self) -> int:
        return len(self._index)

    def __bool__(self) -> bool:
        return bool(self._index)

    def __contains__(self, apid) -> bool:
        return int(apid) in self._index

    def items(self) -> List:
        return [(key, int(self._counts[row])) for key, row in self._index.items()]

    def __eq__(self, other):
        if isinstance(other, LiveCounts):
            other = dict(other.items())
        if isinstance(other, dict):
            return dict(self.items()) == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"LiveCounts({dict(self.items())!r})"

    def negative_apids(self) -> np.ndarray:
        """Apids whose live count went negative (audit tap; vectorized)."""
        live = np.full(self._used, False)
        live[list(self._index.values())] = True
        return self._apids[: self._used][live & (self._counts[: self._used] < 0)]


@dataclass
class AttachedRegion:
    """A mapped window into another process's exported segment."""

    apid: ApId
    segid: SegmentId
    proc: OSProcess
    vaddr: int
    npages: int
    #: "remote" (cross-enclave eager map), "linux-lazy" (single-OS Linux),
    #: or "smartmap" (single-OS Kitten).
    kind: str
    #: Kernel region backing the mapping (None for SMARTMAP, which maps
    #: nothing — it aliases the donor's whole table).
    region: Optional[Region] = None
    #: PFNs in the *attacher's* physical namespace (guest PFNs inside a
    #: VM); needed for teardown of VM attachments.
    local_pfns: Optional[np.ndarray] = None
    #: The data view (attacher's window onto the shared bytes).
    view: MappedRegion = None
    detached: bool = False
    #: SMARTMAP bookkeeping: the donor process.
    smartmap_donor: Optional[OSProcess] = None

    @property
    def nbytes(self) -> int:
        return self.npages * 4096

    def write(self, offset: int, data: bytes) -> None:
        """Store bytes through the attachment's data view."""
        self._check_live()
        self.view.write(offset, data)

    def read(self, offset: int, length: int) -> bytes:
        """Load bytes through the attachment's data view."""
        self._check_live()
        return self.view.read(offset, length)

    def as_array(self) -> np.ndarray:
        """Gather the whole attached window into one numpy array (copy)."""
        self._check_live()
        return self.view.as_array()

    def _check_live(self) -> None:
        if self.detached:
            raise RuntimeError(f"attachment {self.apid!r} already detached")
